//! # ASaP — Automatic Software Prefetching for Sparse Tensor Computations
//!
//! Meta-crate re-exporting the whole workspace under one roof. This is the
//! crate a downstream user depends on; the individual crates remain usable
//! on their own.
//!
//! The workspace reproduces the ASaP paper (LLVM-HPC 2025):
//!
//! - [`ir`] — a small MLIR-like SSA IR (`scf`/`memref`/`arith` level) with
//!   an interpreter that reports every memory access to a pluggable
//!   [`ir::MemoryModel`].
//! - [`tensor`] — the sparse tensor "dialect" substrate: level types,
//!   formats (COO/CSR/CSC/DCSR/DCSC/CSF) and their segmented
//!   pos/crd/values storage.
//! - [`sparsifier`] — the sparsification transformation: iteration graphs,
//!   segment iterators, and imperative code generation, with the hook
//!   points where indirect accesses materialize.
//! - [`core`] — the paper's contribution: the ASaP prefetch-injection pass
//!   (semantic buffer bounds, innermost- and outer-loop strategies) and
//!   the Ainsworth & Jones baseline pass.
//! - [`sim`] — an execution-driven Gracemont-like memory-hierarchy
//!   simulator with toggleable hardware prefetchers, MSHRs and a DRAM
//!   bandwidth model; stands in for the paper's Alder Lake testbed.
//! - [`matrices`] — synthetic SuiteSparse-like matrix families plus
//!   MatrixMarket I/O.
//! - [`obs`] — workspace-wide observability: scoped spans, a metrics
//!   registry, the per-site prefetch-effectiveness analyzer, and JSONL
//!   trace sinks (see DESIGN.md §10).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`:
//!
//! ```
//! use asap::prelude::*;
//!
//! // Build a small CSR matrix, sparsify SpMV with ASaP prefetching and
//! // check the result against a dense reference.
//! let tri = asap::matrices::gen::banded(16, 3, 7);
//! let csr = SparseTensor::from_coo(&tri.to_coo(), Format::csr());
//! let kernel = KernelSpec::spmv(ValueKind::F64);
//! let compiled = compile(&kernel, csr.format(), &PrefetchStrategy::asap(45))?;
//! let x = vec![1.0f64; 16];
//! let y = run_spmv_f64(&compiled, &csr, &x)?;
//! let yref = tri.dense_spmv(&x);
//! for (a, b) in y.iter().zip(&yref) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! # Ok::<(), asap::AsapError>(())
//! ```
//!
//! Every fallible pipeline stage returns a typed [`AsapError`] instead of
//! panicking; see `DESIGN.md` ("Error handling & fuzzing") for the error
//! taxonomy and the graceful-degradation contract.

pub use asap_core as core;
pub use asap_ir as ir;
pub use asap_ir::AsapError;
pub use asap_matrices as matrices;
pub use asap_obs as obs;
pub use asap_sim as sim;
pub use asap_sparsifier as sparsifier;
pub use asap_tensor as tensor;

/// Commonly used items, for `use asap::prelude::*`.
pub mod prelude {
    pub use asap_core::{compile, run_spmv_f64, CompileWarning, CompiledKernel, PrefetchStrategy};
    pub use asap_ir::{AsapError, Function, MemoryModel};
    pub use asap_matrices::Triplets;
    pub use asap_sim::{GracemontConfig, Machine, PrefetcherConfig};
    pub use asap_sparsifier::KernelSpec;
    pub use asap_tensor::{Format, LevelType, SparseTensor, ValueKind};
}
