//! Lowering verified structured IR into a linear register bytecode.
//!
//! The tree-walking interpreter ([`crate::interpret`]) pays per-op enum
//! dispatch, `Vec<Option<V>>` unwrapping, region recursion and a `Vec`
//! allocation per loop iteration (the `Yield` values). For the figure
//! sweeps that cost dominates wall clock, so this pass flattens a verified
//! [`Function`] into a [`Program`]: straight-line instructions over
//! pre-resolved value slots with jump-threaded control flow, plus fused
//! instructions for the idioms the sparsifier emits: the indirect gather
//! `load b[load crd[j]]`, the multiply–accumulate of the reduction, the
//! loop-counter increment+compare pair, the coordinate load+widen, the
//! distance-offset add+prefetch, the loop-bound clamp
//! (add+compare+select), the indirect prefetch (load+cast+prefetch), and
//! the loop back-edge (retire+copies+step).
//!
//! The contract, enforced by `asap-fuzz`'s four-strategy oracle and the
//! `bytecode_equiv` differential suite, is *exact observational
//! equivalence* with the tree-walker: bit-identical return values and
//! buffer contents, and the identical ordered stream of
//! [`crate::MemoryModel`] calls (loads, stores, prefetches, retires) with
//! the same static [`OpId`]s and addresses. Fusion therefore reduces
//! dispatch, never model calls: a fused multiply–accumulate still issues
//! two `retire_fp(1)` calls, and a fused gather still issues both loads
//! (and the cast's `retire(1)`) in source order.

use crate::interp::V;
use crate::ops::{BinOp, CmpPred, Function, OpId, OpKind, Region, Value};
use crate::types::{Literal, Type};
use std::collections::HashMap;

/// One bytecode instruction. Operands are value *slots* (indices into the
/// flat register file of [`Program::num_slots`] entries); `mem` operands
/// index the pre-resolved buffer-binding table built once per execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `arith.constant` — the literal is pre-converted to a runtime value.
    Const { dst: u32, val: V },
    /// Binary arithmetic (retires one plain or FP instruction).
    Bin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        pc: OpId,
    },
    /// `arith.cmpi`.
    Cmp {
        pred: CmpPred,
        dst: u32,
        lhs: u32,
        rhs: u32,
        pc: OpId,
    },
    /// `arith.select`.
    Select {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
        pc: OpId,
    },
    /// Integer-like conversion.
    Cast {
        dst: u32,
        src: u32,
        to: Type,
        pc: OpId,
    },
    /// `memref.dim`.
    Dim { dst: u32, mem: u16, pc: OpId },
    /// `memref.load` — the demand event is reported before the bounds
    /// check, exactly like the tree-walker.
    Load {
        dst: u32,
        mem: u16,
        idx: u32,
        pc: OpId,
    },
    /// `memref.store`.
    Store {
        mem: u16,
        idx: u32,
        src: u32,
        pc: OpId,
    },
    /// `memref.prefetch` — never faults.
    Prefetch {
        mem: u16,
        idx: u32,
        locality: u8,
        write: bool,
        pc: OpId,
    },
    /// Fused `memref.load` + conversion of the loaded value (the
    /// coordinate-widening idiom). Writes both result slots and issues
    /// the load event and the cast's `retire(1)` in source order.
    LoadCast {
        dst: u32,
        mem: u16,
        idx: u32,
        pc: OpId,
        cast_dst: u32,
        to: Type,
        cast_pc: OpId,
    },
    /// Fused integer add + prefetch of the sum (the distance-offset
    /// prefetch idiom). The add's result slot is still written.
    AddPrefetch {
        op: BinOp,
        add_dst: u32,
        lhs: u32,
        rhs: u32,
        add_pc: OpId,
        mem: u16,
        locality: u8,
        write: bool,
        pc: OpId,
    },
    /// Fused integer add + unsigned compare of the sum + select (the
    /// loop-bound clamp idiom `min(j + d, bound)`). Issues three
    /// `retire(1)` calls and writes all three result slots.
    ClampSelect {
        op: BinOp,
        add_dst: u32,
        add_lhs: u32,
        add_rhs: u32,
        add_pc: OpId,
        pred: CmpPred,
        cmp_dst: u32,
        cmp_rhs: u32,
        cmp_pc: OpId,
        dst: u32,
        if_true: u32,
        if_false: u32,
        pc: OpId,
    },
    /// Fused `load crd[·]` + cast + prefetch of the gathered coordinate
    /// (ASaP's indirect-prefetch idiom). Both loads' slots are written
    /// and the load / `retire(1)` / prefetch calls keep source order.
    GatherPrefetch {
        idx: u32,
        crd_mem: u16,
        crd_dst: u32,
        crd_pc: OpId,
        cast_dst: u32,
        to: Type,
        cast_pc: OpId,
        mem: u16,
        locality: u8,
        write: bool,
        pc: OpId,
    },
    /// Fused loop back-edge: the yield's bookkeeping retire, the
    /// loop-carried register copies (hazard-free by construction — the
    /// lowerer falls back to scratch copies otherwise), the induction
    /// increment, and the re-check of the loop bound (the work
    /// [`Instr::ForHead`] does on entry), jumping straight back into the
    /// body on continue and to `exit` when done.
    LoopBack {
        iv: u32,
        step: u32,
        hi: u32,
        body: u32,
        exit: u32,
        copies: Vec<(u32, u32)>,
        /// The `scf.for` op, for budget-trap locations (matching the
        /// tree-walker, whose fuel trap is located at the loop op).
        pc: OpId,
    },
    /// Fused dot-product step: two independent loads feeding a
    /// multiply–accumulate. Both loads' slots are written, both demand
    /// events and both `retire_fp(1)` calls keep source order.
    DotStep {
        a_dst: u32,
        a_mem: u16,
        a_idx: u32,
        a_pc: OpId,
        b_dst: u32,
        b_mem: u16,
        b_idx: u32,
        b_pc: OpId,
        /// Operand slots of the fused multiply (each is one of the load
        /// destinations; order preserved for IEEE/NaN faithfulness).
        a: u32,
        b: u32,
        mul_dst: u32,
        mul_pc: OpId,
        acc: u32,
        acc_is_rhs: bool,
        dst: u32,
        pc: OpId,
    },
    /// Fused sparse gather: `load crd[j]`, optional widening cast to
    /// `index`, then `load b[·]`. All intermediate slots are still
    /// written and all model calls issued in source order.
    Gather {
        idx: u32,
        crd_mem: u16,
        crd_dst: u32,
        crd_pc: OpId,
        /// `(cast_dst, cast_pc)` when the coordinate needs widening.
        cast: Option<(u32, OpId)>,
        mem: u16,
        dst: u32,
        pc: OpId,
    },
    /// Fused `mulf` + `addf` (the reduction's multiply–accumulate).
    /// Issues `retire_fp(1)` twice and writes both result slots.
    MulAdd {
        a: u32,
        b: u32,
        mul_dst: u32,
        mul_pc: OpId,
        /// The accumulator operand of the `addf`.
        acc: u32,
        /// Whether the product was the *lhs* of the `addf` (operand order
        /// is preserved for IEEE/NaN faithfulness).
        acc_is_rhs: bool,
        dst: u32,
        pc: OpId,
    },
    /// The fully-fused ASaP sparse inner loop (see [`SpmvLoop`]): an
    /// entire `for` over the nonzeros of one row — coordinate gather,
    /// both software prefetches, multiply–accumulate, and back edge —
    /// runs as one instruction with no per-iteration dispatch. Boxed to
    /// keep [`Instr`] small; formed only when the seven-instruction
    /// window matches exactly, with the generic path as fallback.
    SpmvLoop(Box<SpmvLoop>),
    /// Unconditional branch (targets are instruction indices after
    /// patching).
    Jump { target: u32 },
    /// `scf.if`: retire the branch instruction, then jump to
    /// `else_target` when the condition is false.
    IfBr {
        cond: u32,
        else_target: u32,
        pc: OpId,
    },
    /// `scf.for` prologue: validate `lo`/`hi`/`step` (traps `ZeroStep`)
    /// and seed the induction slot. Charges nothing, like the walker.
    ForPrologue {
        lo: u32,
        hi: u32,
        step: u32,
        iv: u32,
        pc: OpId,
    },
    /// Fused loop-counter compare+branch: if `iv < hi` retire the
    /// bookkeeping instruction and fall through, else jump to `exit`.
    /// `pc` is the `scf.for` op, for budget-trap locations.
    ForHead {
        iv: u32,
        hi: u32,
        exit: u32,
        pc: OpId,
    },
    /// Fused loop-counter increment + back-edge.
    ForStep { iv: u32, step: u32, head: u32 },
    /// `scf.condition`: retire, then exit the `while` when false.
    CondBr { cond: u32, exit: u32, pc: OpId },
    /// Bookkeeping retire for a lowered `scf.yield`.
    Retire1,
    /// Register move (block-argument plumbing; no model calls).
    Copy { dst: u32, src: u32 },
    /// `func.return`.
    Return { vals: Vec<u32> },
}

impl Instr {
    /// Dense opcode index for per-opcode profiling; indexes
    /// [`crate::profile::OPCODE_NAMES`].
    pub fn opcode(&self) -> usize {
        match self {
            Instr::Const { .. } => 0,
            Instr::Bin { .. } => 1,
            Instr::Cmp { .. } => 2,
            Instr::Select { .. } => 3,
            Instr::Cast { .. } => 4,
            Instr::Dim { .. } => 5,
            Instr::Load { .. } => 6,
            Instr::Store { .. } => 7,
            Instr::Prefetch { .. } => 8,
            Instr::LoadCast { .. } => 9,
            Instr::AddPrefetch { .. } => 10,
            Instr::ClampSelect { .. } => 11,
            Instr::GatherPrefetch { .. } => 12,
            Instr::LoopBack { .. } => 13,
            Instr::DotStep { .. } => 14,
            Instr::Gather { .. } => 15,
            Instr::MulAdd { .. } => 16,
            Instr::SpmvLoop(_) => 17,
            Instr::Jump { .. } => 18,
            Instr::IfBr { .. } => 19,
            Instr::ForPrologue { .. } => 20,
            Instr::ForHead { .. } => 21,
            Instr::ForStep { .. } => 22,
            Instr::CondBr { .. } => 23,
            Instr::Retire1 => 24,
            Instr::Copy { .. } => 25,
            Instr::Return { .. } => 26,
        }
    }
}

/// Operands of the fused ASaP sparse inner loop, field-for-field the
/// seven instructions it replaces (`ForHead`, `LoadCast`, `AddPrefetch`,
/// `ClampSelect`, `GatherPrefetch`, `DotStep`, `LoopBack`). The executor
/// replays the exact sub-op sequence — same model calls, same slot
/// writes, same trap order — so observational equivalence is preserved;
/// only the per-iteration instruction dispatch disappears. The matcher
/// guarantees both casts widen to `index` and that neither `iv`, `hi`
/// nor `step` is written inside the window.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvLoop {
    pub iv: u32,
    pub hi: u32,
    pub step: u32,
    /// Exit target (label id until patching).
    pub exit: u32,
    // `load crd[j]` + widen to index.
    pub lc_dst: u32,
    pub lc_mem: u16,
    pub lc_idx: u32,
    pub lc_pc: OpId,
    pub lc_cast_dst: u32,
    pub lc_cast_pc: OpId,
    // `prefetch crd[j + d]`.
    pub ap_op: BinOp,
    pub ap_dst: u32,
    pub ap_lhs: u32,
    pub ap_rhs: u32,
    pub ap_add_pc: OpId,
    pub ap_mem: u16,
    pub ap_loc: u8,
    pub ap_write: bool,
    pub ap_pc: OpId,
    // `clamped = min(j + d, bound)`.
    pub cs_op: BinOp,
    pub cs_add_dst: u32,
    pub cs_add_lhs: u32,
    pub cs_add_rhs: u32,
    pub cs_add_pc: OpId,
    pub cs_pred: CmpPred,
    pub cs_cmp_dst: u32,
    pub cs_cmp_rhs: u32,
    pub cs_cmp_pc: OpId,
    pub cs_dst: u32,
    pub cs_if_true: u32,
    pub cs_if_false: u32,
    // `prefetch x[crd[clamped]]`.
    pub gp_idx: u32,
    pub gp_crd_mem: u16,
    pub gp_crd_dst: u32,
    pub gp_crd_pc: OpId,
    pub gp_cast_dst: u32,
    pub gp_cast_pc: OpId,
    pub gp_mem: u16,
    pub gp_loc: u8,
    pub gp_write: bool,
    pub gp_pc: OpId,
    // `acc += vals[j] * x[crd[j]]`.
    pub ds_a_dst: u32,
    pub ds_a_mem: u16,
    pub ds_a_idx: u32,
    pub ds_a_pc: OpId,
    pub ds_b_dst: u32,
    pub ds_b_mem: u16,
    pub ds_b_idx: u32,
    pub ds_b_pc: OpId,
    pub ds_a: u32,
    pub ds_b: u32,
    pub ds_mul_dst: u32,
    pub ds_mul_pc: OpId,
    pub ds_acc: u32,
    pub ds_acc_is_rhs: bool,
    pub ds_dst: u32,
    pub ds_pc: OpId,
    // Loop-carried copies of the back edge.
    pub copies: Vec<(u32, u32)>,
    /// The `scf.for` op this superinstruction replaces, for budget-trap
    /// locations (same as the tree-walker's fuel-trap location).
    pub pc: OpId,
}

impl SpmvLoop {
    /// The strict SpMV dataflow shape: the induction variable feeds the
    /// crd load, both prefetch adds, and the vals load; the widened crd
    /// element indexes the dense vector; the clamp output feeds the
    /// gather prefetch; the dot product accumulates through the single
    /// loop-carried copy. Shared by the VM's typed-slice fast path and
    /// the tier-2 native-kernel matcher — both decline to the generic
    /// path when it does not hold.
    pub fn strict_shape(&self) -> bool {
        use crate::ops::{BinOp, CmpPred};
        self.lc_idx == self.iv
            && self.ap_lhs == self.iv
            && self.cs_add_lhs == self.iv
            && self.ds_a_idx == self.iv
            && self.ds_b_idx == self.lc_cast_dst
            && self.gp_idx == self.cs_dst
            && self.ds_a == self.ds_a_dst
            && self.ds_b == self.ds_b_dst
            && self.cs_if_true == self.cs_add_dst
            && self.cs_if_false == self.cs_cmp_rhs
            && self.ap_op == BinOp::AddI
            && self.cs_op == BinOp::AddI
            && self.cs_pred == CmpPred::Ult
            && self.copies.len() == 1
            && self.copies[0] == (self.ds_acc, self.ds_dst)
    }
}

/// A lowered function, ready for [`crate::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub name: String,
    pub instrs: Vec<Instr>,
    /// Size of the flat register file (SSA values + copy scratch).
    pub num_slots: usize,
    /// Slot of each function parameter, in calling-convention order.
    pub param_slots: Vec<u32>,
    /// For each buffer-binding table entry, the position in the argument
    /// list of the parameter that carries the buffer.
    pub mem_args: Vec<usize>,
}

/// Why a function could not be lowered. Callers fall back to the
/// tree-walker; for sparsifier output lowering always succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A load/store/prefetch/dim memref operand is not a function
    /// parameter, so its buffer binding cannot be pre-resolved.
    IndirectMemref(OpId),
    /// More distinct memref parameters than the binding table can index.
    TooManyBuffers,
    /// Region structure the verifier would have rejected.
    Malformed(&'static str),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::IndirectMemref(op) => {
                write!(f, "{op}: memref operand is not a function parameter")
            }
            LowerError::TooManyBuffers => write!(f, "more than 65536 memref parameters"),
            LowerError::Malformed(m) => write!(f, "malformed region structure: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// How the terminator of the region being lowered transfers control.
enum TermCtx<'a> {
    /// Function body: `return` terminates the program.
    Func,
    /// `scf.for` body: `yield` feeds the iteration arguments and takes
    /// the back edge through the fused increment+compare.
    ForBody {
        iter_args: &'a [Value],
        iv: u32,
        step: u32,
        hi: u32,
        /// Label of the head ([`Instr::ForHead`]) — the hazard fallback's
        /// back-edge target.
        head: u32,
        /// Label just past the head — [`Instr::LoopBack`]'s continue
        /// target (the bound re-check is fused into the back edge).
        body: u32,
        exit: u32,
        /// The `scf.for` op id, threaded into the back edge's budget
        /// charge point.
        pc: OpId,
    },
    /// `scf.while` before-region: `condition` exits or forwards to the
    /// after-region arguments.
    WhileBefore { after_args: &'a [Value], exit: u32 },
    /// `scf.while` after-region: `yield` feeds the before-arguments and
    /// jumps back to the head.
    WhileAfter { before_args: &'a [Value], head: u32 },
    /// `scf.if` arm: `yield` feeds the op results and jumps past the
    /// other arm.
    IfArm { results: &'a [Value], end: u32 },
}

struct Lowerer {
    instrs: Vec<Instr>,
    /// Label id → instruction index (`u32::MAX` until bound). Branch
    /// targets hold label ids during lowering and are patched at the end.
    labels: Vec<u32>,
    mem_of: HashMap<Value, u16>,
    mem_args: Vec<usize>,
    param_pos: HashMap<Value, usize>,
    /// First slot past the SSA values, used by hazardous parallel copies.
    scratch_base: u32,
    scratch_used: u32,
    /// Peephole fusion never reaches across a bound label (a jump could
    /// land between the fused ops).
    fuse_barrier: usize,
}

/// Lower a **verified** function to bytecode. The verifier's guarantees
/// (def-before-use, terminator placement, yield arities) are load-bearing;
/// lowering unverified IR may produce a `Malformed` error but never an
/// unsound program.
pub fn lower(f: &Function) -> Result<Program, LowerError> {
    let mut l = Lowerer {
        instrs: Vec::with_capacity(f.op_count() * 2),
        labels: Vec::new(),
        mem_of: HashMap::new(),
        mem_args: Vec::new(),
        param_pos: f.params.iter().enumerate().map(|(i, &p)| (p, i)).collect(),
        scratch_base: f.num_values(),
        scratch_used: 0,
        fuse_barrier: 0,
    };
    if !l.lower_region(&f.body, &TermCtx::Func)? {
        return Err(LowerError::Malformed("function body lacks a return"));
    }
    // Patch label ids into instruction indices.
    let labels = l.labels;
    let resolve = |t: &mut u32| {
        *t = labels[*t as usize];
        debug_assert_ne!(*t, u32::MAX, "unbound label");
    };
    for i in &mut l.instrs {
        match i {
            Instr::Jump { target } => resolve(target),
            Instr::IfBr { else_target, .. } => resolve(else_target),
            Instr::ForHead { exit, .. } => resolve(exit),
            Instr::ForStep { head, .. } => resolve(head),
            Instr::LoopBack { body, exit, .. } => {
                resolve(body);
                resolve(exit);
            }
            Instr::SpmvLoop(d) => resolve(&mut d.exit),
            Instr::CondBr { exit, .. } => resolve(exit),
            _ => {}
        }
    }
    Ok(Program {
        name: f.name.clone(),
        instrs: l.instrs,
        num_slots: (l.scratch_base + l.scratch_used) as usize,
        param_slots: f.params.iter().map(|p| p.0).collect(),
        mem_args: l.mem_args,
    })
}

impl Lowerer {
    fn new_label(&mut self) -> u32 {
        self.labels.push(u32::MAX);
        (self.labels.len() - 1) as u32
    }

    fn bind(&mut self, label: u32) {
        self.labels[label as usize] = self.instrs.len() as u32;
        self.fuse_barrier = self.instrs.len();
    }

    /// Binding-table index for a memref operand (must be a parameter).
    fn mem_index(&mut self, v: Value, at: OpId) -> Result<u16, LowerError> {
        if let Some(&m) = self.mem_of.get(&v) {
            return Ok(m);
        }
        let pos = *self
            .param_pos
            .get(&v)
            .ok_or(LowerError::IndirectMemref(at))?;
        let m = u16::try_from(self.mem_of.len()).map_err(|_| LowerError::TooManyBuffers)?;
        self.mem_of.insert(v, m);
        self.mem_args.push(pos);
        Ok(m)
    }

    /// Emit a parallel copy `dsts ← srcs`, routing through scratch slots
    /// when a later source would read an already-overwritten destination
    /// (loop-carried block-argument swaps).
    fn parallel_copy(&mut self, dsts: &[Value], srcs: &[Value]) {
        let pairs: Vec<(u32, u32)> = dsts
            .iter()
            .zip(srcs)
            .map(|(d, s)| (d.0, s.0))
            .filter(|(d, s)| d != s)
            .collect();
        let hazard = pairs
            .iter()
            .enumerate()
            .any(|(j, &(_, s))| pairs[..j].iter().any(|&(d, _)| d == s));
        if hazard {
            self.scratch_used = self.scratch_used.max(pairs.len() as u32);
            for (j, &(_, s)) in pairs.iter().enumerate() {
                self.instrs.push(Instr::Copy {
                    dst: self.scratch_base + j as u32,
                    src: s,
                });
            }
            for (j, &(d, _)) in pairs.iter().enumerate() {
                self.instrs.push(Instr::Copy {
                    dst: d,
                    src: self.scratch_base + j as u32,
                });
            }
        } else {
            for (d, s) in pairs {
                self.instrs.push(Instr::Copy { dst: d, src: s });
            }
        }
    }

    /// Fuse a trailing `load` / `cast` pair (the cast consumes the loaded
    /// value) into a [`Instr::LoadCast`]. Safe because branch targets are
    /// still label ids and no label is bound inside the window
    /// (`fuse_barrier`) — the same invariant guards every peephole below.
    fn try_fuse_load_cast(&mut self) {
        let n = self.instrs.len();
        if n < 2 || n - 2 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 2..] {
            [Instr::Load { dst, mem, idx, pc }, Instr::Cast {
                dst: cd,
                src,
                to,
                pc: cp,
            }] if src == dst => Some(Instr::LoadCast {
                dst: *dst,
                mem: *mem,
                idx: *idx,
                pc: *pc,
                cast_dst: *cd,
                to: to.clone(),
                cast_pc: *cp,
            }),
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 2);
            self.instrs.push(g);
        }
    }

    /// Fuse a trailing gather window into a [`Instr::Gather`]: either a
    /// [`Instr::LoadCast`] (formed when the cast was lowered) feeding a
    /// `load b[·]`, or two directly-chained loads.
    fn try_fuse_gather(&mut self) {
        let n = self.instrs.len();
        if n < 2 || n - 2 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 2..] {
            [Instr::LoadCast {
                dst: d1,
                mem: m1,
                idx: i1,
                pc: p1,
                cast_dst: cd,
                to: Type::Index,
                cast_pc: cp,
            }, Instr::Load { dst, mem, idx, pc }]
                if idx == cd =>
            {
                Some(Instr::Gather {
                    idx: *i1,
                    crd_mem: *m1,
                    crd_dst: *d1,
                    crd_pc: *p1,
                    cast: Some((*cd, *cp)),
                    mem: *mem,
                    dst: *dst,
                    pc: *pc,
                })
            }
            [Instr::Load {
                dst: d1,
                mem: m1,
                idx: i1,
                pc: p1,
            }, Instr::Load { dst, mem, idx, pc }]
                if idx == d1 =>
            {
                Some(Instr::Gather {
                    idx: *i1,
                    crd_mem: *m1,
                    crd_dst: *d1,
                    crd_pc: *p1,
                    cast: None,
                    mem: *mem,
                    dst: *dst,
                    pc: *pc,
                })
            }
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 2);
            self.instrs.push(g);
        }
    }

    /// Fuse a trailing prefetch with the instruction that computed its
    /// index: an integer add ([`Instr::AddPrefetch`], the distance-offset
    /// idiom) or a load+cast ([`Instr::GatherPrefetch`], the indirect
    /// prefetch through a clamped coordinate).
    fn try_fuse_prefetch(&mut self) {
        let n = self.instrs.len();
        if n < 2 || n - 2 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 2..] {
            [Instr::Bin {
                op,
                dst,
                lhs,
                rhs,
                pc: bp,
            }, Instr::Prefetch {
                mem,
                idx,
                locality,
                write,
                pc,
            }] if idx == dst && !op.is_float() => Some(Instr::AddPrefetch {
                op: *op,
                add_dst: *dst,
                lhs: *lhs,
                rhs: *rhs,
                add_pc: *bp,
                mem: *mem,
                locality: *locality,
                write: *write,
                pc: *pc,
            }),
            [Instr::LoadCast {
                dst,
                mem: lmem,
                idx,
                pc: lpc,
                cast_dst,
                to,
                cast_pc,
            }, Instr::Prefetch {
                mem,
                idx: pidx,
                locality,
                write,
                pc,
            }] if pidx == cast_dst => Some(Instr::GatherPrefetch {
                idx: *idx,
                crd_mem: *lmem,
                crd_dst: *dst,
                crd_pc: *lpc,
                cast_dst: *cast_dst,
                to: to.clone(),
                cast_pc: *cast_pc,
                mem: *mem,
                locality: *locality,
                write: *write,
                pc: *pc,
            }),
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 2);
            self.instrs.push(g);
        }
    }

    /// Second-stage fusion after [`Instr::MulAdd`] forms: when the two
    /// multiply operands are exactly the destinations of the two
    /// immediately preceding loads, collapse the window into a
    /// [`Instr::DotStep`].
    fn try_fuse_dot_step(&mut self) {
        let n = self.instrs.len();
        if n < 3 || n - 3 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 3..] {
            [Instr::Load {
                dst: d1,
                mem: m1,
                idx: i1,
                pc: p1,
            }, Instr::Load {
                dst: d2,
                mem: m2,
                idx: i2,
                pc: p2,
            }, Instr::MulAdd {
                a,
                b,
                mul_dst,
                mul_pc,
                acc,
                acc_is_rhs,
                dst,
                pc,
            }] if (a == d1 && b == d2) || (a == d2 && b == d1) => Some(Instr::DotStep {
                a_dst: *d1,
                a_mem: *m1,
                a_idx: *i1,
                a_pc: *p1,
                b_dst: *d2,
                b_mem: *m2,
                b_idx: *i2,
                b_pc: *p2,
                a: *a,
                b: *b,
                mul_dst: *mul_dst,
                mul_pc: *mul_pc,
                acc: *acc,
                acc_is_rhs: *acc_is_rhs,
                dst: *dst,
                pc: *pc,
            }),
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 3);
            self.instrs.push(g);
        }
    }

    /// Collapse a whole `for` body into one [`Instr::SpmvLoop`] when the
    /// window starting at the loop head is exactly the seven-instruction
    /// ASaP sparse inner loop. Called right before the exit label binds,
    /// so no later label points into the window; the head and body labels
    /// become unreferenced (the fused loop branches internally).
    fn try_fuse_spmv_loop(&mut self, head_pos: usize) {
        if self.instrs.len() != head_pos + 7 {
            return;
        }
        let fused = match &self.instrs[head_pos..] {
            [Instr::ForHead { iv, hi, exit, pc }, Instr::LoadCast {
                dst: lc_dst,
                mem: lc_mem,
                idx: lc_idx,
                pc: lc_pc,
                cast_dst: lc_cast_dst,
                to: Type::Index,
                cast_pc: lc_cast_pc,
            }, Instr::AddPrefetch {
                op: ap_op,
                add_dst: ap_dst,
                lhs: ap_lhs,
                rhs: ap_rhs,
                add_pc: ap_add_pc,
                mem: ap_mem,
                locality: ap_loc,
                write: ap_write,
                pc: ap_pc,
            }, Instr::ClampSelect {
                op: cs_op,
                add_dst: cs_add_dst,
                add_lhs: cs_add_lhs,
                add_rhs: cs_add_rhs,
                add_pc: cs_add_pc,
                pred: cs_pred,
                cmp_dst: cs_cmp_dst,
                cmp_rhs: cs_cmp_rhs,
                cmp_pc: cs_cmp_pc,
                dst: cs_dst,
                if_true: cs_if_true,
                if_false: cs_if_false,
                pc: _,
            }, Instr::GatherPrefetch {
                idx: gp_idx,
                crd_mem: gp_crd_mem,
                crd_dst: gp_crd_dst,
                crd_pc: gp_crd_pc,
                cast_dst: gp_cast_dst,
                to: Type::Index,
                cast_pc: gp_cast_pc,
                mem: gp_mem,
                locality: gp_loc,
                write: gp_write,
                pc: gp_pc,
            }, Instr::DotStep {
                a_dst: ds_a_dst,
                a_mem: ds_a_mem,
                a_idx: ds_a_idx,
                a_pc: ds_a_pc,
                b_dst: ds_b_dst,
                b_mem: ds_b_mem,
                b_idx: ds_b_idx,
                b_pc: ds_b_pc,
                a: ds_a,
                b: ds_b,
                mul_dst: ds_mul_dst,
                mul_pc: ds_mul_pc,
                acc: ds_acc,
                acc_is_rhs: ds_acc_is_rhs,
                dst: ds_dst,
                pc: ds_pc,
            }, Instr::LoopBack {
                iv: lb_iv,
                step,
                hi: lb_hi,
                body: _,
                exit: lb_exit,
                copies,
                pc: _,
            }] if lb_iv == iv && lb_hi == hi && lb_exit == exit => {
                // The executor re-reads `iv`/`hi`/`step` per iteration,
                // assuming the body leaves them alone — true for SSA
                // results, but verify against the copy destinations too.
                let loop_slots = [*iv, *hi, *step];
                let written = [
                    *lc_dst,
                    *lc_cast_dst,
                    *ap_dst,
                    *cs_add_dst,
                    *cs_cmp_dst,
                    *cs_dst,
                    *gp_crd_dst,
                    *gp_cast_dst,
                    *ds_a_dst,
                    *ds_b_dst,
                    *ds_mul_dst,
                    *ds_dst,
                ];
                if written.iter().any(|w| loop_slots.contains(w))
                    || copies.iter().any(|(d, _)| loop_slots.contains(d))
                {
                    None
                } else {
                    Some(Box::new(SpmvLoop {
                        iv: *iv,
                        hi: *hi,
                        step: *step,
                        exit: *exit,
                        lc_dst: *lc_dst,
                        lc_mem: *lc_mem,
                        lc_idx: *lc_idx,
                        lc_pc: *lc_pc,
                        lc_cast_dst: *lc_cast_dst,
                        lc_cast_pc: *lc_cast_pc,
                        ap_op: *ap_op,
                        ap_dst: *ap_dst,
                        ap_lhs: *ap_lhs,
                        ap_rhs: *ap_rhs,
                        ap_add_pc: *ap_add_pc,
                        ap_mem: *ap_mem,
                        ap_loc: *ap_loc,
                        ap_write: *ap_write,
                        ap_pc: *ap_pc,
                        cs_op: *cs_op,
                        cs_add_dst: *cs_add_dst,
                        cs_add_lhs: *cs_add_lhs,
                        cs_add_rhs: *cs_add_rhs,
                        cs_add_pc: *cs_add_pc,
                        cs_pred: *cs_pred,
                        cs_cmp_dst: *cs_cmp_dst,
                        cs_cmp_rhs: *cs_cmp_rhs,
                        cs_cmp_pc: *cs_cmp_pc,
                        cs_dst: *cs_dst,
                        cs_if_true: *cs_if_true,
                        cs_if_false: *cs_if_false,
                        gp_idx: *gp_idx,
                        gp_crd_mem: *gp_crd_mem,
                        gp_crd_dst: *gp_crd_dst,
                        gp_crd_pc: *gp_crd_pc,
                        gp_cast_dst: *gp_cast_dst,
                        gp_cast_pc: *gp_cast_pc,
                        gp_mem: *gp_mem,
                        gp_loc: *gp_loc,
                        gp_write: *gp_write,
                        gp_pc: *gp_pc,
                        ds_a_dst: *ds_a_dst,
                        ds_a_mem: *ds_a_mem,
                        ds_a_idx: *ds_a_idx,
                        ds_a_pc: *ds_a_pc,
                        ds_b_dst: *ds_b_dst,
                        ds_b_mem: *ds_b_mem,
                        ds_b_idx: *ds_b_idx,
                        ds_b_pc: *ds_b_pc,
                        ds_a: *ds_a,
                        ds_b: *ds_b,
                        ds_mul_dst: *ds_mul_dst,
                        ds_mul_pc: *ds_mul_pc,
                        ds_acc: *ds_acc,
                        ds_acc_is_rhs: *ds_acc_is_rhs,
                        ds_dst: *ds_dst,
                        ds_pc: *ds_pc,
                        copies: copies.clone(),
                        pc: *pc,
                    }))
                }
            }
            _ => None,
        };
        if let Some(b) = fused {
            self.instrs.truncate(head_pos);
            self.instrs.push(Instr::SpmvLoop(b));
        }
    }

    /// Fuse a trailing add / unsigned-compare-of-the-sum / select window
    /// into a [`Instr::ClampSelect`] (the `min(j + d, bound)` clamp).
    fn try_fuse_clamp(&mut self) {
        let n = self.instrs.len();
        if n < 3 || n - 3 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 3..] {
            [Instr::Bin {
                op,
                dst: ad,
                lhs: al,
                rhs: ar,
                pc: ap,
            }, Instr::Cmp {
                pred,
                dst: cd,
                lhs: cl,
                rhs: cr,
                pc: cp,
            }, Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
                pc,
            }] if cl == ad && cond == cd && !op.is_float() => Some(Instr::ClampSelect {
                op: *op,
                add_dst: *ad,
                add_lhs: *al,
                add_rhs: *ar,
                add_pc: *ap,
                pred: *pred,
                cmp_dst: *cd,
                cmp_rhs: *cr,
                cmp_pc: *cp,
                dst: *dst,
                if_true: *if_true,
                if_false: *if_false,
                pc: *pc,
            }),
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 3);
            self.instrs.push(g);
        }
    }

    /// Fuse a trailing `mulf` / `addf` pair into a [`Instr::MulAdd`].
    fn try_fuse_muladd(&mut self) {
        let n = self.instrs.len();
        if n < 2 || n - 2 < self.fuse_barrier {
            return;
        }
        let fused = match &self.instrs[n - 2..] {
            [Instr::Bin {
                op: BinOp::MulF,
                dst: p,
                lhs: a,
                rhs: b,
                pc: mul_pc,
            }, Instr::Bin {
                op: BinOp::AddF,
                dst,
                lhs,
                rhs,
                pc,
            }] if lhs == p || rhs == p => {
                // Preserve operand order: when the product is the lhs,
                // the accumulator is added on the right.
                let (acc, acc_is_rhs) = if lhs == p {
                    (*rhs, true)
                } else {
                    (*lhs, false)
                };
                Some(Instr::MulAdd {
                    a: *a,
                    b: *b,
                    mul_dst: *p,
                    mul_pc: *mul_pc,
                    acc,
                    acc_is_rhs,
                    dst: *dst,
                    pc: *pc,
                })
            }
            _ => None,
        };
        if let Some(g) = fused {
            self.instrs.truncate(n - 2);
            self.instrs.push(g);
            self.try_fuse_dot_step();
        }
    }

    /// Lower one region. Returns whether a terminator was lowered.
    fn lower_region(&mut self, r: &Region, ctx: &TermCtx) -> Result<bool, LowerError> {
        for op in &r.ops {
            let dst = |i: usize| op.results[i].0;
            match &op.kind {
                OpKind::Const(lit) => {
                    let val = match *lit {
                        Literal::Index(x) => V::Index(x),
                        Literal::I64(x) => V::I64(x),
                        Literal::I32(x) => V::I32(x),
                        Literal::I8(x) => V::I8(x),
                        Literal::Bool(x) => V::Bool(x),
                        Literal::F64(x) => V::F64(x),
                    };
                    self.instrs.push(Instr::Const { dst: dst(0), val });
                }
                OpKind::Binary { op: b, lhs, rhs } => {
                    self.instrs.push(Instr::Bin {
                        op: *b,
                        dst: dst(0),
                        lhs: lhs.0,
                        rhs: rhs.0,
                        pc: op.id,
                    });
                    if *b == BinOp::AddF {
                        self.try_fuse_muladd();
                    }
                }
                OpKind::Cmp { pred, lhs, rhs } => self.instrs.push(Instr::Cmp {
                    pred: *pred,
                    dst: dst(0),
                    lhs: lhs.0,
                    rhs: rhs.0,
                    pc: op.id,
                }),
                OpKind::Select {
                    cond,
                    if_true,
                    if_false,
                } => {
                    self.instrs.push(Instr::Select {
                        dst: dst(0),
                        cond: cond.0,
                        if_true: if_true.0,
                        if_false: if_false.0,
                        pc: op.id,
                    });
                    self.try_fuse_clamp();
                }
                OpKind::Cast { value, to } => {
                    self.instrs.push(Instr::Cast {
                        dst: dst(0),
                        src: value.0,
                        to: to.clone(),
                        pc: op.id,
                    });
                    self.try_fuse_load_cast();
                }
                OpKind::Load { mem, index } => {
                    let m = self.mem_index(*mem, op.id)?;
                    self.instrs.push(Instr::Load {
                        dst: dst(0),
                        mem: m,
                        idx: index.0,
                        pc: op.id,
                    });
                    self.try_fuse_gather();
                }
                OpKind::Store { mem, index, value } => {
                    let m = self.mem_index(*mem, op.id)?;
                    self.instrs.push(Instr::Store {
                        mem: m,
                        idx: index.0,
                        src: value.0,
                        pc: op.id,
                    });
                }
                OpKind::Prefetch {
                    mem,
                    index,
                    write,
                    locality,
                } => {
                    let m = self.mem_index(*mem, op.id)?;
                    self.instrs.push(Instr::Prefetch {
                        mem: m,
                        idx: index.0,
                        locality: *locality,
                        write: *write,
                        pc: op.id,
                    });
                    self.try_fuse_prefetch();
                }
                OpKind::Dim { mem } => {
                    let m = self.mem_index(*mem, op.id)?;
                    self.instrs.push(Instr::Dim {
                        dst: dst(0),
                        mem: m,
                        pc: op.id,
                    });
                }
                OpKind::For {
                    lo,
                    hi,
                    step,
                    iv,
                    iter_args,
                    inits,
                    body,
                } => {
                    let head = self.new_label();
                    let body_l = self.new_label();
                    let exit = self.new_label();
                    self.instrs.push(Instr::ForPrologue {
                        lo: lo.0,
                        hi: hi.0,
                        step: step.0,
                        iv: iv.0,
                        pc: op.id,
                    });
                    self.parallel_copy(iter_args, inits);
                    self.bind(head);
                    self.instrs.push(Instr::ForHead {
                        iv: iv.0,
                        hi: hi.0,
                        exit,
                        pc: op.id,
                    });
                    self.bind(body_l);
                    self.lower_region(
                        body,
                        &TermCtx::ForBody {
                            iter_args,
                            iv: iv.0,
                            step: step.0,
                            hi: hi.0,
                            head,
                            body: body_l,
                            exit,
                            pc: op.id,
                        },
                    )?;
                    let head_pos = self.labels[head as usize] as usize;
                    self.try_fuse_spmv_loop(head_pos);
                    self.bind(exit);
                    self.parallel_copy(&op.results, iter_args);
                }
                OpKind::While {
                    inits,
                    before_args,
                    before,
                    after_args,
                    after,
                } => {
                    let head = self.new_label();
                    let exit = self.new_label();
                    let cond_args = match before.ops.last().map(|o| &o.kind) {
                        Some(OpKind::ConditionOp { args, .. }) => args.clone(),
                        _ => {
                            return Err(LowerError::Malformed(
                                "while before-region must end in scf.condition",
                            ))
                        }
                    };
                    self.parallel_copy(before_args, inits);
                    self.bind(head);
                    self.lower_region(before, &TermCtx::WhileBefore { after_args, exit })?;
                    self.lower_region(after, &TermCtx::WhileAfter { before_args, head })?;
                    self.bind(exit);
                    self.parallel_copy(&op.results, &cond_args);
                }
                OpKind::If {
                    cond,
                    then_region,
                    else_region,
                } => {
                    let else_l = self.new_label();
                    let end = self.new_label();
                    self.instrs.push(Instr::IfBr {
                        cond: cond.0,
                        else_target: else_l,
                        pc: op.id,
                    });
                    self.fuse_barrier = self.instrs.len();
                    self.lower_region(
                        then_region,
                        &TermCtx::IfArm {
                            results: &op.results,
                            end,
                        },
                    )?;
                    self.bind(else_l);
                    self.lower_region(
                        else_region,
                        &TermCtx::IfArm {
                            results: &op.results,
                            end,
                        },
                    )?;
                    self.bind(end);
                }
                OpKind::Yield(vs) => {
                    match ctx {
                        TermCtx::ForBody {
                            iter_args,
                            iv,
                            step,
                            hi,
                            head,
                            body,
                            exit,
                            pc,
                        } => {
                            // Hazard-free loop-carried copies fuse with the
                            // bookkeeping retire and the back edge; a swap
                            // hazard falls back to scratch-routed copies.
                            let pairs: Vec<(u32, u32)> = iter_args
                                .iter()
                                .zip(vs)
                                .map(|(d, s)| (d.0, s.0))
                                .filter(|(d, s)| d != s)
                                .collect();
                            let hazard = pairs
                                .iter()
                                .enumerate()
                                .any(|(j, &(_, s))| pairs[..j].iter().any(|&(d, _)| d == s));
                            if hazard {
                                self.instrs.push(Instr::Retire1);
                                self.parallel_copy(iter_args, vs);
                                self.instrs.push(Instr::ForStep {
                                    iv: *iv,
                                    step: *step,
                                    head: *head,
                                });
                            } else {
                                self.instrs.push(Instr::LoopBack {
                                    iv: *iv,
                                    step: *step,
                                    hi: *hi,
                                    body: *body,
                                    exit: *exit,
                                    copies: pairs,
                                    pc: *pc,
                                });
                            }
                        }
                        TermCtx::WhileAfter { before_args, head } => {
                            self.instrs.push(Instr::Retire1);
                            self.parallel_copy(before_args, vs);
                            self.instrs.push(Instr::Jump { target: *head });
                        }
                        TermCtx::IfArm { results, end } => {
                            self.instrs.push(Instr::Retire1);
                            self.parallel_copy(results, vs);
                            self.instrs.push(Instr::Jump { target: *end });
                        }
                        _ => return Err(LowerError::Malformed("yield outside for/while/if")),
                    }
                    return Ok(true);
                }
                OpKind::ConditionOp { cond, args } => match ctx {
                    TermCtx::WhileBefore { after_args, exit } => {
                        self.instrs.push(Instr::CondBr {
                            cond: cond.0,
                            exit: *exit,
                            pc: op.id,
                        });
                        self.fuse_barrier = self.instrs.len();
                        self.parallel_copy(after_args, args);
                        return Ok(true);
                    }
                    _ => {
                        return Err(LowerError::Malformed(
                            "scf.condition outside a while before-region",
                        ))
                    }
                },
                OpKind::Return(vs) => {
                    self.instrs.push(Instr::Return {
                        vals: vs.iter().map(|v| v.0).collect(),
                    });
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::verify::verify;

    #[test]
    fn gather_and_muladd_fuse_in_spmv_shape() {
        // The CSR inner loop shape: load crd, cast, load x, mulf, addf.
        let mut b = FuncBuilder::new("spmv_inner");
        let crd = b.arg(Type::memref(Type::I32));
        let x = b.arg(Type::memref(Type::F64));
        let vals = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        b.for_loop(c0, n, c1, &[zero], |b, j, args| {
            let c = b.load(crd, j);
            let ci = b.to_index(c);
            let xv = b.load(x, ci);
            let av = b.load(vals, j);
            let p = b.mulf(av, xv);
            vec![b.addf(args[0], p)]
        });
        let f = b.finish();
        verify(&f).unwrap();
        let prog = lower(&f).unwrap();
        let gathers = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Gather { .. }))
            .count();
        let muladds = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::MulAdd { .. }))
            .count();
        assert_eq!(gathers, 1, "{:?}", prog.instrs);
        assert_eq!(muladds, 1, "{:?}", prog.instrs);
    }

    #[test]
    fn non_parameter_memref_is_rejected() {
        // A memref forwarded through a loop-carried argument cannot be
        // pre-resolved; lowering must refuse, not mis-compile.
        let mut b = FuncBuilder::new("indirect");
        let m = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let r = b.for_loop(c0, c1, c1, &[m], |_, _, args| vec![args[0]]);
        let v = b.load(r[0], c0);
        let _ = v;
        let f = b.finish();
        assert!(matches!(lower(&f), Err(LowerError::IndirectMemref(_))));
    }

    #[test]
    fn swap_loop_carried_args_use_scratch_copies() {
        // for i { (a, b) = (b, a) } — the yield swaps the carried slots
        // directly, forcing the hazard-aware copy path.
        let mut b = FuncBuilder::new("swap");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let c2 = b.const_index(2);
        let r = b.for_loop(c0, n, c1, &[c1, c2], |_, _, args| vec![args[1], args[0]]);
        b.store(r[0], out, c0);
        let f = b.finish();
        verify(&f).unwrap();
        let prog = lower(&f).unwrap();
        assert!(
            prog.num_slots > f.num_values() as usize,
            "scratch allocated"
        );
    }

    #[test]
    fn all_branch_targets_resolve() {
        let mut b = FuncBuilder::new("nest");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let c2 = b.const_index(2);
        let total = b.for_loop(c0, n, c1, &[c0], |b, i, args| {
            let cond = {
                use crate::ops::CmpPred;
                let r = b.binary(BinOp::RemUI, i, c2);
                b.cmpi(CmpPred::Eq, r, c0)
            };
            let v = b.if_else(cond, &[Type::Index], |_| vec![c1], |_| vec![c0]);
            vec![b.addi(args[0], v[0])]
        });
        b.store(total[0], out, c0);
        let f = b.finish();
        verify(&f).unwrap();
        let prog = lower(&f).unwrap();
        let max = prog.instrs.len() as u32;
        for i in &prog.instrs {
            let t = match i {
                Instr::Jump { target } => *target,
                Instr::IfBr { else_target, .. } => *else_target,
                Instr::ForHead { exit, .. } => *exit,
                Instr::ForStep { head, .. } => *head,
                Instr::LoopBack { body, exit, .. } => (*body).max(*exit),
                Instr::CondBr { exit, .. } => *exit,
                _ => continue,
            };
            assert!(t <= max, "target {t} out of range ({max} instrs)");
        }
    }
}
