//! A closure-based builder for constructing functions.
//!
//! Mirrors MLIR's `OpBuilder` pattern: structured control-flow ops take
//! closures that populate their nested regions, so the lexical structure of
//! the Rust code matches the structure of the generated IR.

use crate::ops::{BinOp, CmpPred, Function, Op, OpId, OpKind, Region, Value};
use crate::types::{Literal, Type};

/// Builds one [`Function`].
pub struct FuncBuilder {
    name: String,
    params: Vec<Value>,
    value_types: Vec<Type>,
    num_ops: u32,
    /// Stack of regions currently being filled; the bottom entry is the
    /// function body.
    stack: Vec<Region>,
}

impl FuncBuilder {
    /// Start building a function with the given symbol name.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        FuncBuilder {
            name: name.into(),
            params: Vec::new(),
            value_types: Vec::new(),
            num_ops: 0,
            stack: vec![Region::new()],
        }
    }

    /// Declare a function parameter. Must be called before any ops are
    /// emitted (parameters come first in the value numbering, like MLIR
    /// block arguments).
    pub fn arg(&mut self, ty: Type) -> Value {
        assert!(
            self.stack.len() == 1 && self.stack[0].ops.is_empty(),
            "declare all parameters before emitting ops"
        );
        let v = self.fresh(ty);
        self.params.push(v);
        v
    }

    fn fresh(&mut self, ty: Type) -> Value {
        let v = Value(self.value_types.len() as u32);
        self.value_types.push(ty);
        v
    }

    fn fresh_op_id(&mut self) -> OpId {
        let id = OpId(self.num_ops);
        self.num_ops += 1;
        id
    }

    fn push(&mut self, kind: OpKind, result_tys: Vec<Type>) -> Vec<Value> {
        let results: Vec<Value> = result_tys.into_iter().map(|t| self.fresh(t)).collect();
        let id = self.fresh_op_id();
        self.stack
            .last_mut()
            .expect("builder region stack is never empty")
            .ops
            .push(Op {
                id,
                kind,
                results: results.clone(),
            });
        results
    }

    fn ty(&self, v: Value) -> &Type {
        &self.value_types[v.index()]
    }

    // ---- constants -------------------------------------------------------

    pub fn constant(&mut self, lit: Literal) -> Value {
        let ty = lit.ty();
        self.push(OpKind::Const(lit), vec![ty])[0]
    }

    pub fn const_index(&mut self, v: usize) -> Value {
        self.constant(Literal::Index(v))
    }

    pub fn const_f64(&mut self, v: f64) -> Value {
        self.constant(Literal::F64(v))
    }

    pub fn const_i8(&mut self, v: i8) -> Value {
        self.constant(Literal::I8(v))
    }

    // ---- arith -----------------------------------------------------------

    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let ty = self.ty(lhs).clone();
        debug_assert_eq!(
            self.ty(lhs),
            self.ty(rhs),
            "binary op operand types must match"
        );
        self.push(OpKind::Binary { op, lhs, rhs }, vec![ty])[0]
    }

    pub fn addi(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::AddI, lhs, rhs)
    }

    pub fn subi(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::SubI, lhs, rhs)
    }

    pub fn muli(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::MulI, lhs, rhs)
    }

    pub fn addf(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::AddF, lhs, rhs)
    }

    pub fn mulf(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::MulF, lhs, rhs)
    }

    pub fn ori(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::OrI, lhs, rhs)
    }

    pub fn andi(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::AndI, lhs, rhs)
    }

    pub fn minui(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::MinUI, lhs, rhs)
    }

    pub fn cmpi(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        self.push(OpKind::Cmp { pred, lhs, rhs }, vec![Type::I1])[0]
    }

    pub fn select(&mut self, cond: Value, if_true: Value, if_false: Value) -> Value {
        let ty = self.ty(if_true).clone();
        self.push(
            OpKind::Select {
                cond,
                if_true,
                if_false,
            },
            vec![ty],
        )[0]
    }

    pub fn cast(&mut self, value: Value, to: Type) -> Value {
        self.push(
            OpKind::Cast {
                value,
                to: to.clone(),
            },
            vec![to],
        )[0]
    }

    /// Cast to `index` only if the value is not already an index. Mirrors
    /// how sparsification materializes `arith.index_cast` only for narrow
    /// coordinate buffers.
    pub fn to_index(&mut self, value: Value) -> Value {
        if *self.ty(value) == Type::Index {
            value
        } else {
            self.cast(value, Type::Index)
        }
    }

    // ---- memref ----------------------------------------------------------

    pub fn load(&mut self, mem: Value, index: Value) -> Value {
        let elem = self
            .ty(mem)
            .elem()
            .expect("load from non-memref value")
            .clone();
        self.push(OpKind::Load { mem, index }, vec![elem])[0]
    }

    pub fn store(&mut self, value: Value, mem: Value, index: Value) {
        self.push(OpKind::Store { mem, index, value }, vec![]);
    }

    pub fn prefetch_read(&mut self, mem: Value, index: Value, locality: u8) {
        self.push(
            OpKind::Prefetch {
                mem,
                index,
                write: false,
                locality,
            },
            vec![],
        );
    }

    pub fn prefetch_write(&mut self, mem: Value, index: Value, locality: u8) {
        self.push(
            OpKind::Prefetch {
                mem,
                index,
                write: true,
                locality,
            },
            vec![],
        );
    }

    pub fn dim(&mut self, mem: Value) -> Value {
        self.push(OpKind::Dim { mem }, vec![Type::Index])[0]
    }

    // ---- scf -------------------------------------------------------------

    /// `scf.for %iv = lo to hi step step iter_args(inits)`.
    ///
    /// The closure receives the builder, the induction variable, and the
    /// iteration arguments, and must return the values to yield (one per
    /// init). Returns the loop results (same arity).
    pub fn for_loop(
        &mut self,
        lo: Value,
        hi: Value,
        step: Value,
        inits: &[Value],
        f: impl FnOnce(&mut FuncBuilder, Value, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let iv = self.fresh(Type::Index);
        let iter_args: Vec<Value> = inits
            .iter()
            .map(|&v| {
                let t = self.ty(v).clone();
                self.fresh(t)
            })
            .collect();
        self.stack.push(Region::new());
        let yields = f(self, iv, &iter_args);
        assert_eq!(
            yields.len(),
            inits.len(),
            "scf.for body must yield one value per iter_arg"
        );
        self.push(OpKind::Yield(yields), vec![]);
        let body = self.stack.pop().expect("region pushed above");
        let result_tys: Vec<Type> = inits.iter().map(|&v| self.ty(v).clone()).collect();
        self.push(
            OpKind::For {
                lo,
                hi,
                step,
                iv,
                iter_args,
                inits: inits.to_vec(),
                body,
            },
            result_tys,
        )
    }

    /// `scf.while` with identical before/after/result signatures (the shape
    /// sparsification emits). `before` returns the continuation condition
    /// plus forwarded args; `after` returns the next iteration's args.
    pub fn while_loop(
        &mut self,
        inits: &[Value],
        before: impl FnOnce(&mut FuncBuilder, &[Value]) -> (Value, Vec<Value>),
        after: impl FnOnce(&mut FuncBuilder, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let arg_tys: Vec<Type> = inits.iter().map(|&v| self.ty(v).clone()).collect();
        let before_args: Vec<Value> = arg_tys.iter().map(|t| self.fresh(t.clone())).collect();

        self.stack.push(Region::new());
        let (cond, fwd) = before(self, &before_args);
        assert_eq!(
            fwd.len(),
            inits.len(),
            "scf.condition must forward one value per init"
        );
        self.push(OpKind::ConditionOp { cond, args: fwd }, vec![]);
        let before_region = self.stack.pop().expect("region pushed above");

        let after_args: Vec<Value> = arg_tys.iter().map(|t| self.fresh(t.clone())).collect();
        self.stack.push(Region::new());
        let yields = after(self, &after_args);
        assert_eq!(
            yields.len(),
            inits.len(),
            "scf.while body must yield one value per init"
        );
        self.push(OpKind::Yield(yields), vec![]);
        let after_region = self.stack.pop().expect("region pushed above");

        self.push(
            OpKind::While {
                inits: inits.to_vec(),
                before_args,
                before: before_region,
                after_args,
                after: after_region,
            },
            arg_tys,
        )
    }

    /// `scf.if` yielding `result_tys`-typed values from both branches.
    pub fn if_else(
        &mut self,
        cond: Value,
        result_tys: &[Type],
        then_f: impl FnOnce(&mut FuncBuilder) -> Vec<Value>,
        else_f: impl FnOnce(&mut FuncBuilder) -> Vec<Value>,
    ) -> Vec<Value> {
        self.stack.push(Region::new());
        let t = then_f(self);
        assert_eq!(t.len(), result_tys.len(), "then branch arity mismatch");
        self.push(OpKind::Yield(t), vec![]);
        let then_region = self.stack.pop().expect("region pushed above");

        self.stack.push(Region::new());
        let e = else_f(self);
        assert_eq!(e.len(), result_tys.len(), "else branch arity mismatch");
        self.push(OpKind::Yield(e), vec![]);
        let else_region = self.stack.pop().expect("region pushed above");

        self.push(
            OpKind::If {
                cond,
                then_region,
                else_region,
            },
            result_tys.to_vec(),
        )
    }

    // ---- finish ----------------------------------------------------------

    /// Terminate the body with `func.return` (no results) and produce the
    /// function.
    pub fn finish(mut self) -> Function {
        self.push(OpKind::Return(vec![]), vec![]);
        assert_eq!(self.stack.len(), 1, "unbalanced region stack at finish");
        Function {
            name: self.name,
            params: self.params,
            body: self.stack.pop().expect("stack has the body region"),
            value_types: self.value_types,
            num_ops: self.num_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_loop() {
        let mut b = FuncBuilder::new("axpy");
        let x = b.arg(Type::memref(Type::F64));
        let y = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let xv = b.load(x, i);
            let yv = b.load(y, i);
            let s = b.addf(xv, yv);
            b.store(s, y, i);
            vec![]
        });
        let f = b.finish();
        assert_eq!(f.params.len(), 3);
        // for + 4 body ops + yield + 2 consts + return
        assert_eq!(f.op_count(), 9);
    }

    #[test]
    fn for_loop_carries_iter_args() {
        let mut b = FuncBuilder::new("sum");
        let x = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        let res = b.for_loop(c0, n, c1, &[zero], |b, i, args| {
            let xv = b.load(x, i);
            vec![b.addf(args[0], xv)]
        });
        assert_eq!(res.len(), 1);
        let f = b.finish();
        assert_eq!(*f.ty(res[0]), Type::F64);
    }

    #[test]
    fn while_loop_signature() {
        let mut b = FuncBuilder::new("count");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let res = b.while_loop(
            &[c0],
            |b, args| {
                let c = b.cmpi(CmpPred::Ult, args[0], n);
                (c, vec![args[0]])
            },
            |b, args| vec![b.addi(args[0], c1)],
        );
        assert_eq!(res.len(), 1);
        let f = b.finish();
        assert_eq!(*f.ty(res[0]), Type::Index);
    }

    #[test]
    fn if_else_results() {
        let mut b = FuncBuilder::new("max0");
        let x = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let cond = b.cmpi(CmpPred::Ugt, x, c0);
        let r = b.if_else(cond, &[Type::Index], |_| vec![x], |_| vec![c0]);
        let f = b.finish();
        assert_eq!(*f.ty(r[0]), Type::Index);
    }

    #[test]
    #[should_panic(expected = "declare all parameters before emitting ops")]
    fn args_after_ops_panic() {
        let mut b = FuncBuilder::new("bad");
        let _ = b.const_index(0);
        let _ = b.arg(Type::Index);
    }

    #[test]
    fn to_index_is_identity_on_index() {
        let mut b = FuncBuilder::new("c");
        let x = b.arg(Type::Index);
        let y = b.arg(Type::I32);
        assert_eq!(b.to_index(x), x);
        let yi = b.to_index(y);
        assert_ne!(yi, y);
        let f = b.finish();
        assert_eq!(*f.ty(yi), Type::Index);
    }
}
