//! A memory model that records the full access trace — the debugging and
//! analysis companion to the timing model in `asap-sim`.
//!
//! Traces are how we validated the prefetch semantics during bring-up:
//! e.g. asserting that every demand gather address was prefetched exactly
//! `distance` iterations earlier, or extracting the address stream that a
//! hardware-prefetcher model sees.

use crate::ops::OpId;
use crate::MemoryModel;

/// One recorded memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    Load {
        pc: OpId,
        addr: u64,
        bytes: u8,
    },
    Store {
        pc: OpId,
        addr: u64,
        bytes: u8,
    },
    Prefetch {
        pc: OpId,
        addr: u64,
        locality: u8,
        write: bool,
    },
}

impl TraceEvent {
    pub fn addr(&self) -> u64 {
        match *self {
            TraceEvent::Load { addr, .. }
            | TraceEvent::Store { addr, .. }
            | TraceEvent::Prefetch { addr, .. } => addr,
        }
    }

    pub fn pc(&self) -> OpId {
        match *self {
            TraceEvent::Load { pc, .. }
            | TraceEvent::Store { pc, .. }
            | TraceEvent::Prefetch { pc, .. } => pc,
        }
    }

    pub fn is_prefetch(&self) -> bool {
        matches!(self, TraceEvent::Prefetch { .. })
    }
}

/// Records every access (and instruction counts) in order.
#[derive(Debug, Default, Clone)]
pub struct TraceModel {
    pub events: Vec<TraceEvent>,
    pub instructions: u64,
    /// Optional cap: stop recording (but keep counting) beyond this many
    /// events, to bound memory on long runs.
    pub max_events: Option<usize>,
    /// Total events seen (recorded or not).
    pub total_events: u64,
}

impl TraceModel {
    pub fn new() -> TraceModel {
        TraceModel::default()
    }

    pub fn with_capacity_limit(max_events: usize) -> TraceModel {
        TraceModel {
            max_events: Some(max_events),
            ..TraceModel::default()
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        self.total_events += 1;
        self.instructions += 1;
        if self.max_events.is_none_or(|m| self.events.len() < m) {
            self.events.push(ev);
        }
    }

    /// Addresses of demand loads issued by a given static op.
    pub fn load_addrs_of(&self, pc: OpId) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Load { pc: p, addr, .. } if *p == pc => Some(*addr),
                _ => None,
            })
            .collect()
    }

    /// Cache lines touched by demand loads that were covered by an
    /// earlier prefetch (any distance).
    pub fn prefetch_coverage(&self) -> f64 {
        use std::collections::HashSet;
        let mut prefetched: HashSet<u64> = HashSet::new();
        let mut covered = 0usize;
        let mut demand = 0usize;
        for e in &self.events {
            match e {
                TraceEvent::Prefetch { addr, .. } => {
                    prefetched.insert(addr / 64);
                }
                TraceEvent::Load { addr, .. } => {
                    demand += 1;
                    if prefetched.contains(&(addr / 64)) {
                        covered += 1;
                    }
                }
                TraceEvent::Store { .. } => {}
            }
        }
        if demand == 0 {
            0.0
        } else {
            covered as f64 / demand as f64
        }
    }
}

impl MemoryModel for TraceModel {
    fn load(&mut self, pc: OpId, addr: u64, bytes: u8) {
        self.push(TraceEvent::Load { pc, addr, bytes });
    }

    fn store(&mut self, pc: OpId, addr: u64, bytes: u8) {
        self.push(TraceEvent::Store { pc, addr, bytes });
    }

    fn prefetch(&mut self, pc: OpId, addr: u64, locality: u8, write: bool) {
        self.push(TraceEvent::Prefetch {
            pc,
            addr,
            locality,
            write,
        });
    }

    fn retire(&mut self, n: u64) {
        self.instructions += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::interp::{interpret, BufferData, Buffers, V};
    use crate::types::Type;

    fn streaming_func() -> crate::Function {
        let mut b = FuncBuilder::new("t");
        let x = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let c4 = b.const_index(4);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let pi = b.addi(i, c4);
            b.prefetch_read(x, pi, 2);
            let v = b.load(x, i);
            b.store(v, x, i);
            vec![]
        });
        b.finish()
    }

    #[test]
    fn records_ordered_events() {
        let f = streaming_func();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![0.0; 16]));
        let mut t = TraceModel::new();
        interpret(&f, &[V::Mem(bx), V::Index(8)], &mut bufs, &mut t).unwrap();
        let pf: Vec<&TraceEvent> = t.events.iter().filter(|e| e.is_prefetch()).collect();
        let lds: Vec<&TraceEvent> = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Load { .. }))
            .collect();
        assert_eq!(pf.len(), 8);
        assert_eq!(lds.len(), 8);
        // Prefetch of iteration i targets addr of load at i+4.
        assert_eq!(pf[0].addr(), lds[4].addr());
    }

    #[test]
    fn coverage_counts_prefetched_lines() {
        let f = streaming_func();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![0.0; 64]));
        let mut t = TraceModel::new();
        interpret(&f, &[V::Mem(bx), V::Index(64)], &mut bufs, &mut t).unwrap();
        // 8 f64 per line, distance 4: the first half-line is uncovered,
        // everything else shares a line with some prefetch.
        assert!(t.prefetch_coverage() > 0.9);
    }

    #[test]
    fn capacity_limit_keeps_counting() {
        let f = streaming_func();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![0.0; 32]));
        let mut t = TraceModel::with_capacity_limit(5);
        interpret(&f, &[V::Mem(bx), V::Index(32)], &mut bufs, &mut t).unwrap();
        assert_eq!(t.events.len(), 5);
        assert_eq!(t.total_events, 3 * 32);
    }

    #[test]
    fn load_addrs_of_filters_by_pc() {
        let f = streaming_func();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![0.0; 8]));
        let mut t = TraceModel::new();
        interpret(&f, &[V::Mem(bx), V::Index(4)], &mut bufs, &mut t).unwrap();
        let load_pc = t
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Load { pc, .. } => Some(*pc),
                _ => None,
            })
            .unwrap();
        let addrs = t.load_addrs_of(load_pc);
        assert_eq!(addrs.len(), 4);
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 8));
    }
}
