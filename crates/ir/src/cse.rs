//! Common-subexpression elimination for pure ops.
//!
//! Sparsification and the prefetch hooks independently materialize
//! constants (`0`, `1`, the prefetch distance) and index arithmetic; CSE
//! merges duplicates within each region scope so instruction counts —
//! which the evaluation's MPKI metric divides by — aren't inflated by
//! codegen artifacts. Runs after LICM so hoisted duplicates meet in the
//! same region.

use crate::ops::{BinOp, CmpPred, Function, OpKind, Region, Value};
use crate::types::{Literal, Type};
use std::collections::HashMap;

/// A hashable key identifying a pure computation.
#[derive(Debug, Clone, PartialEq)]
enum Key {
    Const(Literal),
    Binary(BinOp, Value, Value),
    Cmp(CmpPred, Value, Value),
    Select(Value, Value, Value),
    Cast(Value, Type),
    Dim(Value),
}

// Literal contains f64: implement Eq/Hash via bit patterns.
impl Eq for Key {}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Key::Const(lit) => match *lit {
                Literal::Index(v) => (0u8, v as u64).hash(state),
                Literal::I64(v) => (1u8, v as u64).hash(state),
                Literal::I32(v) => (2u8, v as u64).hash(state),
                Literal::I8(v) => (3u8, v as u64).hash(state),
                Literal::Bool(v) => (4u8, v as u64).hash(state),
                Literal::F64(v) => (5u8, v.to_bits()).hash(state),
            },
            Key::Binary(op, a, b) => (op, a, b).hash(state),
            Key::Cmp(p, a, b) => (p, a, b).hash(state),
            Key::Select(c, a, b) => (c, a, b).hash(state),
            Key::Cast(v, t) => (v, t).hash(state),
            Key::Dim(v) => v.hash(state),
        }
    }
}

fn key_of(kind: &OpKind) -> Option<Key> {
    match kind {
        OpKind::Const(l) => Some(Key::Const(*l)),
        OpKind::Binary { op, lhs, rhs } => {
            // Commutative ops get a canonical operand order.
            let commutative = matches!(
                op,
                BinOp::AddI
                    | BinOp::MulI
                    | BinOp::AndI
                    | BinOp::OrI
                    | BinOp::XorI
                    | BinOp::MinUI
                    | BinOp::MaxUI
                    | BinOp::AddF
                    | BinOp::MulF
            );
            let (a, b) = if commutative && rhs < lhs {
                (*rhs, *lhs)
            } else {
                (*lhs, *rhs)
            };
            Some(Key::Binary(*op, a, b))
        }
        OpKind::Cmp { pred, lhs, rhs } => Some(Key::Cmp(*pred, *lhs, *rhs)),
        OpKind::Select {
            cond,
            if_true,
            if_false,
        } => Some(Key::Select(*cond, *if_true, *if_false)),
        OpKind::Cast { value, to } => Some(Key::Cast(*value, to.clone())),
        OpKind::Dim { mem } => Some(Key::Dim(*mem)),
        _ => None,
    }
}

/// Scoped value-numbering table: inner regions see outer definitions but
/// not vice versa.
struct Scope<'p> {
    parent: Option<&'p Scope<'p>>,
    table: HashMap<Key, Value>,
}

impl<'p> Scope<'p> {
    fn lookup(&self, k: &Key) -> Option<Value> {
        if let Some(&v) = self.table.get(k) {
            return Some(v);
        }
        self.parent.and_then(|p| p.lookup(k))
    }
}

/// Run CSE. Returns the number of ops eliminated. Follow with [`crate::dce`]
/// is unnecessary — replaced ops are removed directly.
pub fn cse(f: &mut Function) -> usize {
    let mut body = std::mem::take(&mut f.body);
    let root = Scope {
        parent: None,
        table: HashMap::new(),
    };
    let mut removed = 0;
    let mut replace: HashMap<Value, Value> = HashMap::new();
    cse_region(&mut body, &root, &mut replace, &mut removed);
    f.body = body;
    removed
}

fn resolve(replace: &HashMap<Value, Value>, v: Value) -> Value {
    let mut cur = v;
    while let Some(&n) = replace.get(&cur) {
        cur = n;
    }
    cur
}

fn cse_region(
    r: &mut Region,
    parent: &Scope<'_>,
    replace: &mut HashMap<Value, Value>,
    removed: &mut usize,
) {
    let mut scope = Scope {
        parent: Some(parent),
        table: HashMap::new(),
    };
    let mut i = 0;
    while i < r.ops.len() {
        // Rewrite operands through accumulated replacements first.
        let operands: Vec<Value> = r.ops[i].kind.operands();
        for v in operands {
            let n = resolve(replace, v);
            if n != v {
                r.ops[i].kind.replace_operand(v, n);
            }
        }
        if let Some(key) = key_of(&r.ops[i].kind) {
            if let Some(existing) = scope.lookup(&key) {
                let dup = r.ops.remove(i);
                replace.insert(dup.results[0], existing);
                *removed += 1;
                continue;
            }
            scope.table.insert(key, r.ops[i].results[0]);
        }
        // Recurse into nested regions with the current scope visible.
        let mut op = r.ops.remove(i);
        for nested in op.kind.regions_mut() {
            cse_region(nested, &scope, replace, removed);
        }
        r.ops.insert(i, op);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::interp::{interpret, BufferData, Buffers, NullModel, V};
    use crate::verify::verify;

    #[test]
    fn merges_duplicate_constants() {
        let mut b = FuncBuilder::new("k");
        let out = b.arg(Type::memref(Type::Index));
        let c1a = b.const_index(1);
        let c1b = b.const_index(1);
        let s = b.addi(c1a, c1b);
        let c0 = b.const_index(0);
        b.store(s, out, c0);
        let mut f = b.finish();
        assert_eq!(cse(&mut f), 1);
        verify(&f).unwrap();
        let mut bufs = Buffers::new();
        let bo = bufs.add(BufferData::Index(vec![0]));
        interpret(&f, &[V::Mem(bo)], &mut bufs, &mut NullModel).unwrap();
        match &bufs.get(bo).data {
            BufferData::Index(v) => assert_eq!(v[0], 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn merges_commutative_binaries() {
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::Index);
        let y = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let a = b.addi(x, y);
        let bb = b.addi(y, x); // same computation, swapped operands
        let s = b.muli(a, bb);
        let c0 = b.const_index(0);
        b.store(s, out, c0);
        let mut f = b.finish();
        assert_eq!(cse(&mut f), 1);
        verify(&f).unwrap();
    }

    #[test]
    fn does_not_merge_noncommutative_swapped() {
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::Index);
        let y = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let a = b.subi(x, y);
        let bb = b.subi(y, x);
        let s = b.addi(a, bb);
        let c0 = b.const_index(0);
        b.store(s, out, c0);
        let mut f = b.finish();
        assert_eq!(cse(&mut f), 0);
    }

    #[test]
    fn inner_region_reuses_outer_def_but_not_reverse() {
        use crate::ops::OpKind;
        let mut b = FuncBuilder::new("k");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let outer = b.addi(n, n); // defined outside the loop
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let inner_dup = b.addi(n, n); // duplicate of `outer`
            let loop_local = b.addi(i, n); // iv-dependent, loop-local
            let s = b.addi(inner_dup, loop_local);
            b.store(s, out, i);
            vec![]
        });
        // A second use of the loop-local key AFTER the loop must NOT be
        // merged with the one inside.
        let after = b.addi(outer, n);
        b.store(after, out, c0);
        let mut f = b.finish();
        let removed = cse(&mut f);
        assert_eq!(removed, 1, "only the (n+n) duplicate merges");
        verify(&f).unwrap();
        // The inner loop no longer contains an addi(n, n).
        let mut found_dup_inside = false;
        f.walk(&mut |op| {
            if let OpKind::For { body, .. } = &op.kind {
                body.walk(&mut |inner| {
                    if let OpKind::Binary { lhs, rhs, .. } = inner.kind {
                        if lhs == n && rhs == n {
                            found_dup_inside = true;
                        }
                    }
                });
            }
        });
        assert!(!found_dup_inside);
    }

    #[test]
    fn cse_shrinks_asap_codegen_and_preserves_results() {
        // The ASaP hook materializes its own constants; CSE after LICM
        // must merge them with the sparsifier's without changing results.
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let c1_dup = b.const_index(1);
            let j = b.addi(i, c1_dup);
            let jm = b.minui(j, n);
            let v = b.load(x, jm);
            b.store(v, out, i);
            vec![]
        });
        let mut f = b.finish();
        let run = |f: &Function| {
            let mut bufs = Buffers::new();
            let bx = bufs.add(BufferData::F64(vec![1.0, 2.0, 3.0, 4.0]));
            let bo = bufs.add(BufferData::F64(vec![0.0; 4]));
            interpret(
                f,
                &[V::Mem(bx), V::Index(3), V::Mem(bo)],
                &mut bufs,
                &mut NullModel,
            )
            .unwrap();
            match &bufs.get(bo).data {
                BufferData::F64(v) => v.clone(),
                _ => unreachable!(),
            }
        };
        let before = run(&f);
        crate::transforms::licm(&mut f);
        let removed = cse(&mut f);
        assert!(removed >= 1, "hoisted duplicate const must merge");
        verify(&f).unwrap();
        assert_eq!(run(&f), before);
    }

    #[test]
    fn loads_are_never_csed() {
        // Loads may alias stores; CSE must leave them alone.
        let mut b = FuncBuilder::new("k");
        let m = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let a = b.load(m, c0);
        b.store(a, m, c0);
        let bb = b.load(m, c0);
        b.store(bb, m, c0);
        let mut f = b.finish();
        assert_eq!(cse(&mut f), 0);
    }
}
