//! Per-opcode execution profiles for the bytecode VM — a flat
//! "flamegraph" per kernel: how many times each [`Instr`](crate::Instr)
//! variant was dispatched, plus a sampled wall-clock attribution.
//!
//! This lives in `asap-ir` (not `asap-obs`) so the VM can fill it in
//! without a dependency edge back to the observability crate; `asap-obs`
//! and the CLI consume the struct. The unprofiled engine entry point
//! ([`crate::execute_budgeted`]) monomorphizes the dispatch loop with
//! profiling compiled out entirely, so the default path pays nothing.
//!
//! Determinism: `dispatch` counts are exact and identical across
//! identical runs; `sampled_ns` is wall-clock and excluded from the
//! determinism contract (see DESIGN.md §10).

use std::time::Instant;

/// Display names for every bytecode opcode, indexed by
/// [`crate::Instr::opcode`].
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "Const",
    "Bin",
    "Cmp",
    "Select",
    "Cast",
    "Dim",
    "Load",
    "Store",
    "Prefetch",
    "LoadCast",
    "AddPrefetch",
    "ClampSelect",
    "GatherPrefetch",
    "LoopBack",
    "DotStep",
    "Gather",
    "MulAdd",
    "SpmvLoop",
    "Jump",
    "IfBr",
    "ForPrologue",
    "ForHead",
    "ForStep",
    "CondBr",
    "Retire1",
    "Copy",
    "Return",
];

/// Number of bytecode opcodes.
pub const NUM_OPCODES: usize = 27;

/// Dispatches between wall-clock samples. Sampling keeps the profiled
/// path cheap (one `Instant::now` per 1024 dispatches) at the cost of
/// attributing each elapsed window to the opcode dispatched at its end.
const SAMPLE_INTERVAL: u64 = 1024;

/// A per-kernel execution profile filled by
/// [`crate::exec::execute_budgeted_profiled`].
#[derive(Debug, Clone)]
pub struct ExecProfile {
    /// Exact dispatch count per opcode.
    pub dispatch: [u64; NUM_OPCODES],
    /// Sampled wall-clock nanoseconds attributed per opcode
    /// (non-deterministic; zero until `SAMPLE_INTERVAL` dispatches ran).
    pub sampled_ns: [u64; NUM_OPCODES],
    total: u64,
    last_sample: Option<Instant>,
}

impl Default for ExecProfile {
    fn default() -> ExecProfile {
        ExecProfile {
            dispatch: [0; NUM_OPCODES],
            sampled_ns: [0; NUM_OPCODES],
            total: 0,
            last_sample: None,
        }
    }
}

impl ExecProfile {
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// Record one dispatch of `opcode`. Called from the VM's dispatch
    /// loop (profiled monomorphization only).
    #[inline]
    pub fn note(&mut self, opcode: usize) {
        self.dispatch[opcode] += 1;
        self.total += 1;
        if self.total.is_multiple_of(SAMPLE_INTERVAL) {
            let now = Instant::now();
            if let Some(prev) = self.last_sample {
                self.sampled_ns[opcode] += now.duration_since(prev).as_nanos() as u64;
            }
            self.last_sample = Some(now);
        }
    }

    /// Total dispatches across every opcode.
    pub fn total_dispatch(&self) -> u64 {
        self.total
    }

    /// Merge another profile (e.g. across repetitions of the same kernel).
    pub fn merge(&mut self, other: &ExecProfile) {
        for i in 0..NUM_OPCODES {
            self.dispatch[i] += other.dispatch[i];
            self.sampled_ns[i] += other.sampled_ns[i];
        }
        self.total += other.total;
    }

    /// Render the flat flamegraph: opcodes by descending dispatch count
    /// (opcode index breaks ties, so identical profiles render
    /// identically), with dispatch share and sampled-time share.
    pub fn render(&self) -> String {
        let mut order: Vec<usize> = (0..NUM_OPCODES).filter(|&i| self.dispatch[i] > 0).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.dispatch[i]), i));
        let total = self.total.max(1) as f64;
        let total_ns: u64 = self.sampled_ns.iter().sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>12} {:>8} {:>10}\n",
            "opcode", "dispatch", "share", "time"
        ));
        for i in order {
            let time = if total_ns == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}%",
                    self.sampled_ns[i] as f64 * 100.0 / total_ns as f64
                )
            };
            out.push_str(&format!(
                "{:<16} {:>12} {:>7.1}% {:>10}\n",
                OPCODE_NAMES[i],
                self.dispatch[i],
                self.dispatch[i] as f64 * 100.0 / total,
                time
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_counts_and_merge() {
        let mut p = ExecProfile::new();
        for _ in 0..10 {
            p.note(0);
        }
        p.note(17);
        assert_eq!(p.dispatch[0], 10);
        assert_eq!(p.dispatch[17], 1);
        assert_eq!(p.total_dispatch(), 11);
        let mut q = ExecProfile::new();
        q.note(0);
        p.merge(&q);
        assert_eq!(p.dispatch[0], 11);
        assert_eq!(p.total_dispatch(), 12);
    }

    #[test]
    fn render_orders_by_count_desc() {
        let mut p = ExecProfile::new();
        p.note(5);
        p.note(2);
        p.note(2);
        let r = p.render();
        let bin_pos = r.find(OPCODE_NAMES[2]).unwrap();
        let dim_pos = r.find(OPCODE_NAMES[5]).unwrap();
        assert!(bin_pos < dim_pos, "higher count first:\n{r}");
        assert!(r.contains("dispatch"));
    }

    #[test]
    fn names_cover_every_opcode() {
        assert_eq!(OPCODE_NAMES.len(), NUM_OPCODES);
        let mut uniq: Vec<&str> = OPCODE_NAMES.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), NUM_OPCODES, "names are distinct");
    }
}
