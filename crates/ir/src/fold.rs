//! Constant folding and algebraic simplification.
//!
//! The sparsifier's size chains start from a literal `1` node count
//! (`crd_buf_sz` recursion), producing `muli(1, dim)` steps; folding them
//! keeps the hoisted prologue minimal. Runs to a fixpoint over:
//!
//! - binary ops with two constant operands → constant;
//! - `x*1`, `1*x`, `x+0`, `0+x`, `x-0`, `x|0`, `x&~0`… identity patterns;
//! - `cmpi` on constants → constant `i1`;
//! - `select` on a constant condition → the taken arm;
//! - casts of constants → constants.

use crate::ops::{BinOp, CmpPred, Function, OpKind, Region, Value};
use crate::types::{Literal, Type};
use std::collections::HashMap;

/// Fold constants; returns the number of ops simplified. Follow with
/// [`crate::dce`] to drop now-unused constants.
pub fn fold(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut consts: HashMap<Value, Literal> = HashMap::new();
        collect_consts(&f.body, &mut consts);
        let mut replace: HashMap<Value, Value> = HashMap::new();
        let mut folded = 0;
        fold_region(&mut f.body, &consts, &mut replace, &mut folded);
        if folded == 0 {
            return total;
        }
        total += folded;
    }
}

fn collect_consts(r: &Region, out: &mut HashMap<Value, Literal>) {
    r.walk(&mut |op| {
        if let OpKind::Const(l) = op.kind {
            out.insert(op.results[0], l);
        }
    });
}

fn as_u64(l: Literal) -> Option<u64> {
    match l {
        Literal::Index(v) => Some(v as u64),
        Literal::I64(v) => Some(v as u64),
        Literal::I32(v) => Some(v as u32 as u64),
        Literal::I8(v) => Some(v as u8 as u64),
        Literal::Bool(v) => Some(v as u64),
        Literal::F64(_) => None,
    }
}

fn lit_like(template: Literal, raw: u64) -> Literal {
    match template {
        Literal::Index(_) => Literal::Index(raw as usize),
        Literal::I64(_) => Literal::I64(raw as i64),
        Literal::I32(_) => Literal::I32(raw as i32),
        Literal::I8(_) => Literal::I8(raw as i8),
        Literal::Bool(_) => Literal::Bool(raw != 0),
        Literal::F64(_) => unreachable!("guarded by as_u64"),
    }
}

fn eval_int(op: BinOp, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        BinOp::AddI => a.wrapping_add(b),
        BinOp::SubI => a.wrapping_sub(b),
        BinOp::MulI => a.wrapping_mul(b),
        BinOp::DivUI => a.checked_div(b)?,
        BinOp::RemUI => a.checked_rem(b)?,
        BinOp::MinUI => a.min(b),
        BinOp::MaxUI => a.max(b),
        BinOp::AndI => a & b,
        BinOp::OrI => a | b,
        BinOp::XorI => a ^ b,
        _ => return None,
    })
}

enum Outcome {
    /// Replace the op's result with an existing value.
    Alias(Value),
    /// Replace the op with a constant.
    Const(Literal),
    Keep,
}

fn simplify(kind: &OpKind, consts: &HashMap<Value, Literal>) -> Outcome {
    match kind {
        OpKind::Binary { op, lhs, rhs } => {
            let (cl, cr) = (consts.get(lhs).copied(), consts.get(rhs).copied());
            // Constant-constant.
            if let (Some(a), Some(b)) = (cl, cr) {
                if let (Some(x), Some(y)) = (as_u64(a), as_u64(b)) {
                    if let Some(z) = eval_int(*op, x, y) {
                        return Outcome::Const(lit_like(a, z));
                    }
                }
            }
            // Identities.
            let is = |c: Option<Literal>, want: u64| c.and_then(as_u64) == Some(want);
            match op {
                BinOp::MulI if is(cl, 1) => Outcome::Alias(*rhs),
                BinOp::MulI if is(cr, 1) => Outcome::Alias(*lhs),
                BinOp::AddI | BinOp::OrI | BinOp::XorI if is(cl, 0) => Outcome::Alias(*rhs),
                BinOp::AddI | BinOp::SubI | BinOp::OrI | BinOp::XorI if is(cr, 0) => {
                    Outcome::Alias(*lhs)
                }
                _ => Outcome::Keep,
            }
        }
        OpKind::Cmp { pred, lhs, rhs } => {
            let (Some(a), Some(b)) = (
                consts.get(lhs).and_then(|&l| as_u64(l)),
                consts.get(rhs).and_then(|&l| as_u64(l)),
            ) else {
                return Outcome::Keep;
            };
            let r = match pred {
                CmpPred::Eq => a == b,
                CmpPred::Ne => a != b,
                CmpPred::Ult => a < b,
                CmpPred::Ule => a <= b,
                CmpPred::Ugt => a > b,
                CmpPred::Uge => a >= b,
            };
            Outcome::Const(Literal::Bool(r))
        }
        OpKind::Select {
            cond,
            if_true,
            if_false,
        } => match consts.get(cond) {
            Some(Literal::Bool(true)) => Outcome::Alias(*if_true),
            Some(Literal::Bool(false)) => Outcome::Alias(*if_false),
            _ => Outcome::Keep,
        },
        OpKind::Cast { value, to } => {
            let Some(raw) = consts.get(value).and_then(|&l| as_u64(l)) else {
                return Outcome::Keep;
            };
            let lit = match to {
                Type::Index => Literal::Index(raw as usize),
                Type::I64 => Literal::I64(raw as i64),
                Type::I32 => Literal::I32(raw as i32),
                Type::I8 => Literal::I8(raw as i8),
                Type::I1 => Literal::Bool(raw != 0),
                _ => return Outcome::Keep,
            };
            Outcome::Const(lit)
        }
        _ => Outcome::Keep,
    }
}

fn fold_region(
    r: &mut Region,
    consts: &HashMap<Value, Literal>,
    replace: &mut HashMap<Value, Value>,
    folded: &mut usize,
) {
    let mut i = 0;
    while i < r.ops.len() {
        for v in r.ops[i].kind.operands() {
            let mut cur = v;
            while let Some(&n) = replace.get(&cur) {
                cur = n;
            }
            if cur != v {
                r.ops[i].kind.replace_operand(v, cur);
            }
        }
        match simplify(&r.ops[i].kind, consts) {
            Outcome::Alias(target) => {
                let dead = r.ops.remove(i);
                replace.insert(dead.results[0], target);
                *folded += 1;
                continue;
            }
            Outcome::Const(lit) => {
                let id = r.ops[i].id;
                let res = r.ops[i].results.clone();
                r.ops[i] = crate::ops::Op {
                    id,
                    kind: OpKind::Const(lit),
                    results: res,
                };
                *folded += 1;
            }
            Outcome::Keep => {}
        }
        let mut op = r.ops.remove(i);
        for nested in op.kind.regions_mut() {
            fold_region(nested, consts, replace, folded);
        }
        r.ops.insert(i, op);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::interp::{interpret, BufferData, Buffers, NullModel, V};
    use crate::verify::verify;
    use crate::{cse, dce};

    fn run_idx(f: &crate::Function, args: &[V], out_id: u32, bufs: &mut Buffers) -> usize {
        interpret(f, args, bufs, &mut NullModel).unwrap();
        match &bufs.get(out_id).data {
            BufferData::Index(v) => v[0],
            _ => unreachable!(),
        }
    }

    #[test]
    fn folds_mul_by_one_from_size_chain() {
        let mut b = FuncBuilder::new("k");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c1 = b.const_index(1);
        let m = b.muli(c1, n); // size-chain root: 1 * dim
        let c0 = b.const_index(0);
        b.store(m, out, c0);
        let mut f = b.finish();
        assert_eq!(fold(&mut f), 1);
        dce(&mut f);
        verify(&f).unwrap();
        let mut bufs = Buffers::new();
        let bo = bufs.add(BufferData::Index(vec![0]));
        assert_eq!(run_idx(&f, &[V::Index(7), V::Mem(bo)], bo, &mut bufs), 7);
    }

    #[test]
    fn folds_constant_arithmetic_chains() {
        let mut b = FuncBuilder::new("k");
        let out = b.arg(Type::memref(Type::Index));
        let c2 = b.const_index(2);
        let c3 = b.const_index(3);
        let s = b.addi(c2, c3); // 5
        let m = b.muli(s, c2); // 10
        let c0 = b.const_index(0);
        b.store(m, out, c0);
        let mut f = b.finish();
        assert!(fold(&mut f) >= 2);
        let mut bufs = Buffers::new();
        let bo = bufs.add(BufferData::Index(vec![0]));
        assert_eq!(run_idx(&f, &[V::Mem(bo)], bo, &mut bufs), 10);
    }

    #[test]
    fn folds_select_on_constant_condition() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::Index);
        let y = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c1 = b.const_index(1);
        let c2 = b.const_index(2);
        let cond = b.cmpi(CmpPred::Ult, c1, c2); // true
        let sel = b.select(cond, x, y);
        let c0 = b.const_index(0);
        b.store(sel, out, c0);
        let mut f = b.finish();
        assert!(fold(&mut f) >= 2, "cmp folds, then select folds");
        let mut bufs = Buffers::new();
        let bo = bufs.add(BufferData::Index(vec![0]));
        assert_eq!(
            run_idx(&f, &[V::Index(11), V::Index(22), V::Mem(bo)], bo, &mut bufs),
            11
        );
    }

    #[test]
    fn does_not_fold_float_arithmetic() {
        let mut b = FuncBuilder::new("k");
        let out = b.arg(Type::memref(Type::F64));
        let a = b.const_f64(0.1);
        let bb = b.const_f64(0.2);
        let s = b.addf(a, bb);
        let c0 = b.const_index(0);
        b.store(s, out, c0);
        let mut f = b.finish();
        assert_eq!(fold(&mut f), 0, "float folding is not value-preserving");
    }

    #[test]
    fn division_by_zero_is_left_alone() {
        use crate::ops::BinOp;
        let mut b = FuncBuilder::new("k");
        let out = b.arg(Type::memref(Type::Index));
        let c1 = b.const_index(1);
        let c0v = b.const_index(0);
        let d = b.binary(BinOp::DivUI, c1, c0v);
        b.store(d, out, c0v);
        let mut f = b.finish();
        assert_eq!(fold(&mut f), 0);
    }

    #[test]
    fn fold_then_cse_shrinks_asap_prologue() {
        // End-to-end: the compiled ASaP kernel's hoisted prologue loses
        // its muli(1, nrows) after folding.
        use crate::ops::OpKind;
        let mut b = FuncBuilder::new("k");
        let pos = b.arg(Type::memref(Type::Index));
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c1 = b.const_index(1);
        let count = b.muli(c1, n);
        let sz = b.load(pos, count);
        let bound = b.subi(sz, c1);
        let c0 = b.const_index(0);
        b.store(bound, out, c0);
        let mut f = b.finish();
        fold(&mut f);
        cse(&mut f);
        dce(&mut f);
        verify(&f).unwrap();
        let mut muls = 0;
        f.walk(&mut |op| {
            if matches!(
                op.kind,
                OpKind::Binary {
                    op: BinOp::MulI,
                    ..
                }
            ) {
                muls += 1;
            }
        });
        assert_eq!(muls, 0, "muli(1, n) must fold away");
        let mut bufs = Buffers::new();
        let bp = bufs.add(BufferData::Index(vec![0, 2, 5]));
        let bo = bufs.add(BufferData::Index(vec![0]));
        assert_eq!(
            run_idx(&f, &[V::Mem(bp), V::Index(2), V::Mem(bo)], bo, &mut bufs),
            4
        );
    }
}
