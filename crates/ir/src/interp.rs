//! An interpreter for the IR that reports every memory access to a
//! pluggable [`MemoryModel`].
//!
//! This is what makes the workspace's "compiler" executable without a real
//! backend: functional correctness is obtained by running the IR directly,
//! and timing is obtained by attaching the `asap-sim` machine model as the
//! memory model. A [`NullModel`] is provided for pure functional runs.

use crate::budget::{Budget, BudgetError, BudgetMeter};
use crate::ops::{BinOp, CmpPred, Function, Op, OpId, OpKind, Region, Value};
use crate::types::{Literal, Type};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V {
    Index(usize),
    I64(i64),
    I32(i32),
    I8(i8),
    Bool(bool),
    F64(f64),
    /// A memref bound to a buffer id in the [`Buffers`] arena.
    Mem(u32),
}

impl V {
    pub(crate) fn mismatch(want: &str, got: V) -> InterpError {
        InterpError::TypeMismatch(format!("expected {want} value, got {got:?}"))
    }

    /// The `index` payload, or a [`InterpError::TypeMismatch`] trap.
    #[inline]
    pub fn as_index(self) -> Result<usize, InterpError> {
        match self {
            V::Index(v) => Ok(v),
            other => Err(Self::mismatch("index", other)),
        }
    }

    #[inline]
    pub fn as_f64(self) -> Result<f64, InterpError> {
        match self {
            V::F64(v) => Ok(v),
            other => Err(Self::mismatch("f64", other)),
        }
    }

    #[inline]
    pub fn as_bool(self) -> Result<bool, InterpError> {
        match self {
            V::Bool(v) => Ok(v),
            other => Err(Self::mismatch("i1", other)),
        }
    }

    #[inline]
    pub fn as_mem(self) -> Result<u32, InterpError> {
        match self {
            V::Mem(v) => Ok(v),
            other => Err(Self::mismatch("memref", other)),
        }
    }

    /// Widen any integer-like value to u64 (for casts and comparisons).
    #[inline]
    pub fn as_u64(self) -> Result<u64, InterpError> {
        match self {
            V::Index(v) => Ok(v as u64),
            V::I64(v) => Ok(v as u64),
            V::I32(v) => Ok(v as u32 as u64),
            V::I8(v) => Ok(v as u8 as u64),
            V::Bool(v) => Ok(v as u64),
            other => Err(Self::mismatch("integer-like", other)),
        }
    }
}

/// Typed storage for one buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    F64(Vec<f64>),
    I64(Vec<i64>),
    I32(Vec<i32>),
    I8(Vec<i8>),
    Index(Vec<usize>),
}

impl BufferData {
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            BufferData::F64(v) => v.len(),
            BufferData::I64(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::I8(v) => v.len(),
            BufferData::Index(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> u8 {
        match self {
            BufferData::F64(_) | BufferData::I64(_) | BufferData::Index(_) => 8,
            BufferData::I32(_) => 4,
            BufferData::I8(_) => 1,
        }
    }

    /// The IR element type of this buffer.
    pub fn elem_type(&self) -> Type {
        match self {
            BufferData::F64(_) => Type::F64,
            BufferData::I64(_) => Type::I64,
            BufferData::I32(_) => Type::I32,
            BufferData::I8(_) => Type::I8,
            BufferData::Index(_) => Type::Index,
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<V> {
        match self {
            BufferData::F64(v) => v.get(i).map(|&x| V::F64(x)),
            BufferData::I64(v) => v.get(i).map(|&x| V::I64(x)),
            BufferData::I32(v) => v.get(i).map(|&x| V::I32(x)),
            BufferData::I8(v) => v.get(i).map(|&x| V::I8(x)),
            BufferData::Index(v) => v.get(i).map(|&x| V::Index(x)),
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, val: V) -> Result<(), InterpError> {
        let oob = |len: usize| InterpError::OutOfBounds { index: i, len };
        match (self, val) {
            (BufferData::F64(v), V::F64(x)) => {
                let len = v.len();
                *v.get_mut(i).ok_or(oob(len))? = x;
            }
            (BufferData::I64(v), V::I64(x)) => {
                let len = v.len();
                *v.get_mut(i).ok_or(oob(len))? = x;
            }
            (BufferData::I32(v), V::I32(x)) => {
                let len = v.len();
                *v.get_mut(i).ok_or(oob(len))? = x;
            }
            (BufferData::I8(v), V::I8(x)) => {
                let len = v.len();
                *v.get_mut(i).ok_or(oob(len))? = x;
            }
            (BufferData::Index(v), V::Index(x)) => {
                let len = v.len();
                *v.get_mut(i).ok_or(oob(len))? = x;
            }
            (b, v) => {
                return Err(InterpError::TypeMismatch(format!(
                    "store of {v:?} into {} buffer",
                    b.elem_type()
                )))
            }
        }
        Ok(())
    }
}

/// One buffer with its assigned virtual base address.
#[derive(Debug, Clone)]
pub struct Buffer {
    pub data: BufferData,
    pub base_addr: u64,
}

/// The buffer arena. Buffers get virtual base addresses from a bump
/// allocator with page alignment and a guard gap, so hardware-prefetcher
/// models see distinct, realistic address streams per buffer.
#[derive(Debug, Clone, Default)]
pub struct Buffers {
    bufs: Vec<Buffer>,
    next_addr: u64,
}

/// Virtual address where the first buffer is placed.
pub const BASE_ADDR: u64 = 0x1000_0000;
/// Alignment of each buffer (a 4 KiB page).
pub const BUF_ALIGN: u64 = 4096;
/// Unmapped guard gap between consecutive buffers.
pub const GUARD_GAP: u64 = 64 * 1024;

impl Buffers {
    pub fn new() -> Buffers {
        Buffers {
            bufs: Vec::new(),
            next_addr: BASE_ADDR,
        }
    }

    /// Add a buffer, returning its id (to be passed as a `V::Mem` argument).
    pub fn add(&mut self, data: BufferData) -> u32 {
        let id = self.bufs.len() as u32;
        let size = data.len() as u64 * data.elem_bytes() as u64;
        let base = self.next_addr;
        self.next_addr = (base + size + GUARD_GAP).div_ceil(BUF_ALIGN) * BUF_ALIGN;
        self.bufs.push(Buffer {
            data,
            base_addr: base,
        });
        id
    }

    // invariant: ids come from `add`, and `interpret` rejects dangling
    // `V::Mem` arguments before execution starts, so the index is in range.
    #[inline]
    pub fn get(&self, id: u32) -> &Buffer {
        &self.bufs[id as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut Buffer {
        &mut self.bufs[id as usize]
    }

    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Total payload bytes bound into this arena (excluding alignment
    /// padding and guard gaps) — what a [`Budget`] bytes ceiling meters.
    pub fn bytes_allocated(&self) -> u64 {
        self.bufs
            .iter()
            .map(|b| b.data.len() as u64 * b.data.elem_bytes() as u64)
            .sum()
    }
}

/// Kinds of memory access reported to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
    /// Software prefetch with its locality hint (0 = non-temporal … 3 = L1).
    Prefetch {
        locality: u8,
        write: bool,
    },
}

/// Observer of the interpreted execution. `asap-sim` implements this to do
/// timing; [`NullModel`] ignores everything.
pub trait MemoryModel {
    /// A demand load of `bytes` at `addr`, issued by static op `pc`.
    fn load(&mut self, pc: OpId, addr: u64, bytes: u8);
    /// A demand store.
    fn store(&mut self, pc: OpId, addr: u64, bytes: u8);
    /// A software prefetch. Never faults; `addr` may be outside any buffer.
    fn prefetch(&mut self, pc: OpId, addr: u64, locality: u8, write: bool);
    /// `n` non-memory instructions retired.
    fn retire(&mut self, n: u64);
    /// `n` floating-point arithmetic instructions retired. Distinguished
    /// so timing models can charge FP latency chains (e.g. a scalarized
    /// reduction's serial `addf` chain); defaults to plain
    /// [`MemoryModel::retire`].
    fn retire_fp(&mut self, n: u64) {
        self.retire(n);
    }
}

/// A memory model that ignores all events (pure functional execution).
#[derive(Debug, Default, Clone)]
pub struct NullModel;

impl MemoryModel for NullModel {
    fn load(&mut self, _: OpId, _: u64, _: u8) {}
    fn store(&mut self, _: OpId, _: u64, _: u8) {}
    fn prefetch(&mut self, _: OpId, _: u64, _: u8, _: bool) {}
    fn retire(&mut self, _: u64) {}
}

/// A memory model that only counts events — useful in tests.
#[derive(Debug, Default, Clone)]
pub struct CountingModel {
    pub loads: u64,
    pub stores: u64,
    pub prefetches: u64,
    pub instructions: u64,
}

impl MemoryModel for CountingModel {
    fn load(&mut self, _: OpId, _: u64, _: u8) {
        self.loads += 1;
        self.instructions += 1;
    }
    fn store(&mut self, _: OpId, _: u64, _: u8) {
        self.stores += 1;
        self.instructions += 1;
    }
    fn prefetch(&mut self, _: OpId, _: u64, _: u8, _: bool) {
        self.prefetches += 1;
        self.instructions += 1;
    }
    fn retire(&mut self, n: u64) {
        self.instructions += n;
    }
}

/// Errors during interpretation. These are traps, not process aborts: a
/// kernel run over corrupt input returns `Err` and the interpreter state
/// is simply dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A demand access fell outside its buffer — the fault ASaP's bounds
    /// logic exists to avoid.
    OutOfBounds {
        index: usize,
        len: usize,
    },
    TypeMismatch(String),
    /// Function argument count or buffer-id mismatch.
    BadArgs(String),
    /// `arith.divui` / `arith.remui` with a zero divisor.
    DivisionByZero,
    /// `scf.for` with step 0 (would never terminate).
    ZeroStep,
    /// A resource budget (fuel, deadline, cancellation) ran out. Both
    /// engines charge the meter at observationally identical points, so
    /// a fuel trap carries the same location in tree-walk and bytecode.
    Budget(BudgetError),
    /// An error located at a specific static op, attached by the
    /// interpreter's region walk. `cause` is never itself an `At`.
    At {
        op: OpId,
        cause: Box<InterpError>,
    },
}

impl InterpError {
    /// Attach the faulting op id. Keeps the innermost location if one was
    /// already attached (the op actually executing when the trap fired).
    pub fn at(self, op: OpId) -> InterpError {
        match self {
            e @ InterpError::At { .. } => e,
            e => InterpError::At {
                op,
                cause: Box::new(e),
            },
        }
    }

    /// The underlying error, with any location wrapper stripped.
    pub fn root(&self) -> &InterpError {
        match self {
            InterpError::At { cause, .. } => cause.root(),
            e => e,
        }
    }

    /// The faulting op, when known.
    pub fn op(&self) -> Option<OpId> {
        match self {
            InterpError::At { op, .. } => Some(*op),
            _ => None,
        }
    }
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfBounds { index, len } => {
                write!(f, "access fault: index {index} out of bounds (len {len})")
            }
            InterpError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            InterpError::BadArgs(m) => write!(f, "bad arguments: {m}"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::ZeroStep => write!(f, "scf.for step must be positive"),
            InterpError::Budget(b) => write!(f, "budget exceeded: {b}"),
            InterpError::At { op, cause } => write!(f, "{op}: {cause}"),
        }
    }
}

impl std::error::Error for InterpError {}

enum Flow {
    Yield(Vec<V>),
    Condition(bool, Vec<V>),
    Return(Vec<V>),
}

/// Run `func` with the given arguments against `bufs`, reporting events to
/// `model`. Returns the values of `func.return`.
///
/// Generic over the model so concrete callers monomorphize the event
/// calls; `&mut dyn MemoryModel` still works (`M = dyn MemoryModel`).
pub fn interpret<M: MemoryModel + ?Sized>(
    func: &Function,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
) -> Result<Vec<V>, InterpError> {
    interpret_budgeted(func, args, bufs, model, &Budget::unlimited())
}

/// [`interpret`] under a resource [`Budget`]: fuel is charged once per
/// loop-iteration entry (`scf.for` body entries and `scf.while`
/// condition evaluations), the deadline/cancellation token is polled
/// every [`BudgetMeter::POLL_INTERVAL`] charges. Exceeding the budget
/// traps with [`InterpError::Budget`] located at the governing loop op —
/// the same observable point at which the bytecode engine traps.
pub fn interpret_budgeted<M: MemoryModel + ?Sized>(
    func: &Function,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
    budget: &Budget,
) -> Result<Vec<V>, InterpError> {
    if args.len() != func.params.len() {
        return Err(InterpError::BadArgs(format!(
            "expected {} arguments, got {}",
            func.params.len(),
            args.len()
        )));
    }
    // Buffer ids only enter the environment through arguments (no op
    // creates a `V::Mem`), so validating them here makes every later
    // `Buffers::get` infallible.
    for (i, a) in args.iter().enumerate() {
        if let V::Mem(id) = a {
            if *id as usize >= bufs.len() {
                return Err(InterpError::BadArgs(format!(
                    "argument {i} references buffer {id}, but only {} exist",
                    bufs.len()
                )));
            }
        }
    }
    let mut env: Vec<Option<V>> = vec![None; func.value_types.len()];
    for (&p, &a) in func.params.iter().zip(args) {
        env[p.index()] = Some(a);
    }
    // Hoist per-access address math: base address and element width per
    // buffer, computed once instead of per load/store/prefetch. Sound
    // because no op allocates buffers mid-run.
    let addrs: Vec<(u64, u8)> = (0..bufs.len() as u32)
        .map(|id| {
            let b = bufs.get(id);
            (b.base_addr, b.data.elem_bytes())
        })
        .collect();
    let mut interp = Interp {
        bufs,
        model,
        addrs,
        meter: budget.meter(),
    };
    match interp.region(&func.body, &mut env)? {
        Flow::Return(vs) => Ok(vs),
        _ => Err(InterpError::TypeMismatch(
            "function body did not end in return".into(),
        )),
    }
}

struct Interp<'a, M: MemoryModel + ?Sized> {
    bufs: &'a mut Buffers,
    model: &'a mut M,
    /// Per-buffer `(base_addr, elem_bytes)`, hoisted out of the access path.
    addrs: Vec<(u64, u8)>,
    /// Per-run resource meter, charged at loop-head entries.
    meter: BudgetMeter,
}

impl<'a, M: MemoryModel + ?Sized> Interp<'a, M> {
    fn get(env: &[Option<V>], v: Value) -> V {
        // invariant: the verifier rejects use-before-def, and every
        // compiled kernel is verified before interpretation.
        env[v.index()].expect("verifier guarantees def-before-use")
    }

    fn region(&mut self, r: &Region, env: &mut Vec<Option<V>>) -> Result<Flow, InterpError> {
        for op in &r.ops {
            // Op-id attachment is deferred to the error path: the hot loop
            // pays no `map_err` closure per retired op.
            match self.op(op, env) {
                Ok(Some(flow)) => return Ok(flow),
                Ok(None) => {}
                Err(e) => return Err(e.at(op.id)),
            }
        }
        unreachable!("verifier guarantees every region ends in a terminator")
    }

    fn addr_of(&self, buf_id: u32, index: usize) -> (u64, u8) {
        let (base, eb) = self.addrs[buf_id as usize];
        (base + index as u64 * eb as u64, eb)
    }

    /// Execute one op. Returns `Some(flow)` when a terminator fires.
    fn op(&mut self, op: &Op, env: &mut Vec<Option<V>>) -> Result<Option<Flow>, InterpError> {
        let g = |env: &Vec<Option<V>>, v: Value| Self::get(env, v);
        match &op.kind {
            OpKind::Const(lit) => {
                self.model.retire(1);
                let v = match *lit {
                    Literal::Index(x) => V::Index(x),
                    Literal::I64(x) => V::I64(x),
                    Literal::I32(x) => V::I32(x),
                    Literal::I8(x) => V::I8(x),
                    Literal::Bool(x) => V::Bool(x),
                    Literal::F64(x) => V::F64(x),
                };
                env[op.results[0].index()] = Some(v);
            }
            OpKind::Binary { op: b, lhs, rhs } => {
                if b.is_float() {
                    self.model.retire_fp(1);
                } else {
                    self.model.retire(1);
                }
                let l = g(env, *lhs);
                let r = g(env, *rhs);
                env[op.results[0].index()] = Some(eval_binary(*b, l, r)?);
            }
            OpKind::Cmp { pred, lhs, rhs } => {
                self.model.retire(1);
                let l = g(env, *lhs).as_u64()?;
                let r = g(env, *rhs).as_u64()?;
                let b = match pred {
                    CmpPred::Eq => l == r,
                    CmpPred::Ne => l != r,
                    CmpPred::Ult => l < r,
                    CmpPred::Ule => l <= r,
                    CmpPred::Ugt => l > r,
                    CmpPred::Uge => l >= r,
                };
                env[op.results[0].index()] = Some(V::Bool(b));
            }
            OpKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.model.retire(1);
                let c = g(env, *cond).as_bool()?;
                env[op.results[0].index()] = Some(if c {
                    g(env, *if_true)
                } else {
                    g(env, *if_false)
                });
            }
            OpKind::Cast { value, to } => {
                self.model.retire(1);
                let raw = g(env, *value).as_u64()?;
                let v = match to {
                    Type::Index => V::Index(raw as usize),
                    Type::I64 => V::I64(raw as i64),
                    Type::I32 => V::I32(raw as i32),
                    Type::I8 => V::I8(raw as i8),
                    Type::I1 => V::Bool(raw != 0),
                    other => {
                        return Err(InterpError::TypeMismatch(format!(
                            "cast to unsupported type {other}"
                        )))
                    }
                };
                env[op.results[0].index()] = Some(v);
            }
            OpKind::Load { mem, index } => {
                let buf_id = g(env, *mem).as_mem()?;
                let i = g(env, *index).as_index()?;
                let (addr, eb) = self.addr_of(buf_id, i);
                self.model.load(op.id, addr, eb);
                let buf = self.bufs.get(buf_id);
                let v = buf.data.get(i).ok_or(InterpError::OutOfBounds {
                    index: i,
                    len: buf.data.len(),
                })?;
                env[op.results[0].index()] = Some(v);
            }
            OpKind::Store { mem, index, value } => {
                let buf_id = g(env, *mem).as_mem()?;
                let i = g(env, *index).as_index()?;
                let v = g(env, *value);
                let (addr, eb) = self.addr_of(buf_id, i);
                self.model.store(op.id, addr, eb);
                self.bufs.get_mut(buf_id).data.set(i, v)?;
            }
            OpKind::Prefetch {
                mem,
                index,
                write,
                locality,
            } => {
                let buf_id = g(env, *mem).as_mem()?;
                let i = g(env, *index).as_index()?;
                // Prefetches never fault: compute the address even if it is
                // out of bounds for the buffer.
                let (addr, _eb) = self.addr_of(buf_id, i);
                self.model.prefetch(op.id, addr, *locality, *write);
            }
            OpKind::Dim { mem } => {
                self.model.retire(1);
                let buf_id = g(env, *mem).as_mem()?;
                env[op.results[0].index()] = Some(V::Index(self.bufs.get(buf_id).data.len()));
            }
            OpKind::For {
                lo,
                hi,
                step,
                iv,
                iter_args,
                inits,
                body,
            } => {
                let lo = g(env, *lo).as_index()?;
                let hi = g(env, *hi).as_index()?;
                let step = g(env, *step).as_index()?;
                if step == 0 {
                    return Err(InterpError::ZeroStep);
                }
                let mut carried: Vec<V> = inits.iter().map(|&v| g(env, v)).collect();
                let mut i = lo;
                while i < hi {
                    // Fuel is charged at the loop head, before the
                    // bookkeeping retire — the same observable point as
                    // the VM's ForHead/LoopBack charge.
                    self.meter.tick().map_err(InterpError::Budget)?;
                    // Loop bookkeeping: induction increment + compare/branch.
                    self.model.retire(1);
                    env[iv.index()] = Some(V::Index(i));
                    for (a, v) in iter_args.iter().zip(&carried) {
                        env[a.index()] = Some(*v);
                    }
                    match self.region(body, env)? {
                        Flow::Yield(vs) => carried = vs,
                        f @ Flow::Return(_) => return Ok(Some(f)),
                        Flow::Condition(..) => unreachable!("verified"),
                    }
                    i += step;
                }
                for (r, v) in op.results.iter().zip(&carried) {
                    env[r.index()] = Some(*v);
                }
            }
            OpKind::While {
                inits,
                before_args,
                before,
                after_args,
                after,
            } => {
                let mut carried: Vec<V> = inits.iter().map(|&v| g(env, v)).collect();
                loop {
                    for (a, v) in before_args.iter().zip(&carried) {
                        env[a.index()] = Some(*v);
                    }
                    match self.region(before, env)? {
                        Flow::Condition(cond, fwd) => {
                            if !cond {
                                for (r, v) in op.results.iter().zip(&fwd) {
                                    env[r.index()] = Some(*v);
                                }
                                break;
                            }
                            for (a, v) in after_args.iter().zip(&fwd) {
                                env[a.index()] = Some(*v);
                            }
                        }
                        f @ Flow::Return(_) => return Ok(Some(f)),
                        Flow::Yield(_) => unreachable!("verified"),
                    }
                    match self.region(after, env)? {
                        Flow::Yield(vs) => carried = vs,
                        f @ Flow::Return(_) => return Ok(Some(f)),
                        Flow::Condition(..) => unreachable!("verified"),
                    }
                }
            }
            OpKind::If {
                cond,
                then_region,
                else_region,
            } => {
                // Branch instruction.
                self.model.retire(1);
                let c = g(env, *cond).as_bool()?;
                let r = if c { then_region } else { else_region };
                match self.region(r, env)? {
                    Flow::Yield(vs) => {
                        for (res, v) in op.results.iter().zip(&vs) {
                            env[res.index()] = Some(*v);
                        }
                    }
                    f @ Flow::Return(_) => return Ok(Some(f)),
                    Flow::Condition(..) => unreachable!("verified"),
                }
            }
            OpKind::Yield(vs) => {
                self.model.retire(1);
                return Ok(Some(Flow::Yield(vs.iter().map(|&v| g(env, v)).collect())));
            }
            OpKind::ConditionOp { cond, args } => {
                // One `scf.while` iteration = one condition evaluation:
                // fuel is charged here (before the retire), matching the
                // VM's CondBr charge point.
                self.meter.tick().map_err(InterpError::Budget)?;
                self.model.retire(1);
                let c = g(env, *cond).as_bool()?;
                return Ok(Some(Flow::Condition(
                    c,
                    args.iter().map(|&v| g(env, v)).collect(),
                )));
            }
            OpKind::Return(vs) => {
                self.model.retire(1);
                return Ok(Some(Flow::Return(vs.iter().map(|&v| g(env, v)).collect())));
            }
        }
        Ok(None)
    }
}

#[inline]
pub(crate) fn eval_binary(b: BinOp, l: V, r: V) -> Result<V, InterpError> {
    use BinOp::*;
    match b {
        AddF | SubF | MulF | DivF => {
            let (x, y) = (l.as_f64()?, r.as_f64()?);
            Ok(V::F64(match b {
                AddF => x + y,
                SubF => x - y,
                MulF => x * y,
                DivF => x / y,
                _ => unreachable!(),
            }))
        }
        _ => {
            let (x, y) = (l.as_u64()?, r.as_u64()?);
            if y == 0 && matches!(b, DivUI | RemUI) {
                return Err(InterpError::DivisionByZero);
            }
            let z = match b {
                AddI => x.wrapping_add(y),
                SubI => x.wrapping_sub(y),
                MulI => x.wrapping_mul(y),
                DivUI => x / y,
                RemUI => x % y,
                MinUI => x.min(y),
                MaxUI => x.max(y),
                AndI => x & y,
                OrI => x | y,
                XorI => x ^ y,
                _ => unreachable!(),
            };
            // Result type follows the lhs operand type.
            Ok(match l {
                V::Index(_) => V::Index(z as usize),
                V::I64(_) => V::I64(z as i64),
                V::I32(_) => V::I32(z as i32),
                V::I8(_) => V::I8(z as i8),
                V::Bool(_) => V::Bool(z != 0),
                // invariant: as_u64 succeeded above, so l is integer-like.
                _ => unreachable!("integer-like lhs"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::verify::verify;

    /// Build and run a dense dot-product kernel, checking the result and
    /// event counts.
    #[test]
    fn dot_product() {
        let mut b = FuncBuilder::new("dot");
        let x = b.arg(Type::memref(Type::F64));
        let y = b.arg(Type::memref(Type::F64));
        let out = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        let acc = b.for_loop(c0, n, c1, &[zero], |b, i, args| {
            let xv = b.load(x, i);
            let yv = b.load(y, i);
            let p = b.mulf(xv, yv);
            vec![b.addf(args[0], p)]
        });
        b.store(acc[0], out, c0);
        let f = b.finish();
        verify(&f).unwrap();

        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![1.0, 2.0, 3.0]));
        let by = bufs.add(BufferData::F64(vec![4.0, 5.0, 6.0]));
        let bo = bufs.add(BufferData::F64(vec![0.0]));
        let mut m = CountingModel::default();
        interpret(
            &f,
            &[V::Mem(bx), V::Mem(by), V::Mem(bo), V::Index(3)],
            &mut bufs,
            &mut m,
        )
        .unwrap();
        match &bufs.get(bo).data {
            BufferData::F64(v) => assert_eq!(v[0], 32.0),
            _ => unreachable!(),
        }
        assert_eq!(m.loads, 6);
        assert_eq!(m.stores, 1);
        assert_eq!(m.prefetches, 0);
        assert!(m.instructions > 6);
    }

    #[test]
    fn while_loop_counts_to_n() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("count");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let r = b.while_loop(
            &[c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0]]),
            |b, args| vec![b.addi(args[0], c1)],
        );
        b.store(r[0], out, c0);
        let f = b.finish();
        verify(&f).unwrap();

        let mut bufs = Buffers::new();
        let bo = bufs.add(BufferData::Index(vec![0]));
        interpret(&f, &[V::Index(7), V::Mem(bo)], &mut bufs, &mut NullModel).unwrap();
        match &bufs.get(bo).data {
            BufferData::Index(v) => assert_eq!(v[0], 7),
            _ => unreachable!(),
        }
    }

    #[test]
    fn out_of_bounds_load_faults() {
        let mut b = FuncBuilder::new("oob");
        let x = b.arg(Type::memref(Type::F64));
        let i = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let v = b.load(x, i);
        b.store(v, out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![1.0, 2.0]));
        let bo = bufs.add(BufferData::F64(vec![0.0]));
        let err = interpret(
            &f,
            &[V::Mem(bx), V::Index(5), V::Mem(bo)],
            &mut bufs,
            &mut NullModel,
        )
        .unwrap_err();
        assert_eq!(*err.root(), InterpError::OutOfBounds { index: 5, len: 2 });
        // The trap is located at the faulting load op.
        assert!(err.op().is_some(), "trap carries an op id: {err}");
    }

    #[test]
    fn prefetch_past_end_does_not_fault() {
        let mut b = FuncBuilder::new("pf");
        let x = b.arg(Type::memref(Type::F64));
        let i = b.arg(Type::Index);
        b.prefetch_read(x, i, 2);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![1.0]));
        let mut m = CountingModel::default();
        interpret(&f, &[V::Mem(bx), V::Index(1000)], &mut bufs, &mut m).unwrap();
        assert_eq!(m.prefetches, 1);
    }

    #[test]
    fn if_else_selects_branch() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("sel");
        let x = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c10 = b.const_index(10);
        let c20 = b.const_index(20);
        let cond = b.cmpi(CmpPred::Ult, x, c10);
        let r = b.if_else(cond, &[Type::Index], |_| vec![c10], |_| vec![c20]);
        b.store(r[0], out, c0);
        let f = b.finish();
        let run = |arg: usize| {
            let mut bufs = Buffers::new();
            let bo = bufs.add(BufferData::Index(vec![0]));
            interpret(&f, &[V::Index(arg), V::Mem(bo)], &mut bufs, &mut NullModel).unwrap();
            match &bufs.get(bo).data {
                BufferData::Index(v) => v[0],
                _ => unreachable!(),
            }
        };
        assert_eq!(run(5), 10);
        assert_eq!(run(15), 20);
    }

    #[test]
    fn buffer_addresses_are_disjoint_and_aligned() {
        let mut bufs = Buffers::new();
        let a = bufs.add(BufferData::F64(vec![0.0; 1000]));
        let b = bufs.add(BufferData::I32(vec![0; 17]));
        let c = bufs.add(BufferData::I8(vec![0; 3]));
        let (ba, bb, bc) = (
            bufs.get(a).base_addr,
            bufs.get(b).base_addr,
            bufs.get(c).base_addr,
        );
        assert_eq!(ba % BUF_ALIGN, 0);
        assert_eq!(bb % BUF_ALIGN, 0);
        assert_eq!(bc % BUF_ALIGN, 0);
        assert!(ba + 8000 + GUARD_GAP <= bb);
        assert!(bb + 68 + GUARD_GAP <= bc);
    }

    #[test]
    fn integer_binops_follow_lhs_type() {
        assert_eq!(
            eval_binary(BinOp::AddI, V::I32(2_000_000_000), V::I32(2_000_000_000)).unwrap(),
            V::I32((4_000_000_000u32) as i32)
        );
        assert_eq!(
            eval_binary(BinOp::MinUI, V::Index(3), V::Index(9)).unwrap(),
            V::Index(3)
        );
        assert_eq!(
            eval_binary(BinOp::OrI, V::I8(1), V::I8(2)).unwrap(),
            V::I8(3)
        );
        assert_eq!(
            eval_binary(BinOp::AndI, V::I8(3), V::I8(2)).unwrap(),
            V::I8(2)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            eval_binary(BinOp::DivUI, V::Index(1), V::Index(0)).unwrap_err(),
            InterpError::DivisionByZero
        );
        assert_eq!(
            eval_binary(BinOp::RemUI, V::I32(7), V::I32(0)).unwrap_err(),
            InterpError::DivisionByZero
        );
        // Float division by zero follows IEEE semantics instead.
        assert_eq!(
            eval_binary(BinOp::DivF, V::F64(1.0), V::F64(0.0)).unwrap(),
            V::F64(f64::INFINITY)
        );
    }

    #[test]
    fn type_mismatch_traps_instead_of_aborting() {
        // Pass an f64 where the loop bound (index) is expected: the `for`
        // bound evaluation must trap, not abort the process.
        let mut b = FuncBuilder::new("tm");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |_, _, _| vec![]);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let err = interpret(&f, &[V::F64(3.5)], &mut bufs, &mut NullModel).unwrap_err();
        assert!(
            matches!(err.root(), InterpError::TypeMismatch(_)),
            "got {err}"
        );
    }

    #[test]
    fn zero_step_loop_traps() {
        let mut b = FuncBuilder::new("zs");
        let n = b.arg(Type::Index);
        let step = b.arg(Type::Index);
        let c0 = b.const_index(0);
        b.for_loop(c0, n, step, &[], |_, _, _| vec![]);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let err =
            interpret(&f, &[V::Index(10), V::Index(0)], &mut bufs, &mut NullModel).unwrap_err();
        assert_eq!(*err.root(), InterpError::ZeroStep);
    }

    #[test]
    fn dangling_buffer_id_is_rejected_up_front() {
        let mut b = FuncBuilder::new("dangling");
        let x = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let v = b.load(x, c0);
        b.store(v, x, c0);
        let f = b.finish();
        let mut bufs = Buffers::new(); // no buffers at all
        let err = interpret(&f, &[V::Mem(7)], &mut bufs, &mut NullModel).unwrap_err();
        assert!(matches!(err, InterpError::BadArgs(_)), "got {err}");
    }

    #[test]
    fn cast_widens_narrow_coordinates() {
        let mut b = FuncBuilder::new("c");
        let crd = b.arg(Type::memref(Type::I32));
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let v = b.load(crd, c0);
        let vi = b.to_index(v);
        b.store(vi, out, c0);
        let f = b.finish();
        verify(&f).unwrap();
        let mut bufs = Buffers::new();
        let bc = bufs.add(BufferData::I32(vec![42]));
        let bo = bufs.add(BufferData::Index(vec![0]));
        interpret(&f, &[V::Mem(bc), V::Mem(bo)], &mut bufs, &mut NullModel).unwrap();
        match &bufs.get(bo).data {
            BufferData::Index(v) => assert_eq!(v[0], 42),
            _ => unreachable!(),
        }
    }

    #[test]
    fn bad_arg_count_is_reported() {
        let mut b = FuncBuilder::new("f");
        let _ = b.arg(Type::Index);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let err = interpret(&f, &[], &mut bufs, &mut NullModel).unwrap_err();
        assert!(matches!(err, InterpError::BadArgs(_)));
    }
}
