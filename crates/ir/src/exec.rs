//! The register VM executing lowered [`Program`]s.
//!
//! [`execute`] is observationally identical to [`crate::interpret`] on the
//! same function and inputs: same return values bit for bit, same buffer
//! contents, same ordered [`MemoryModel`] call stream (including event
//! order around traps — a load's demand event is still reported before
//! its bounds check), and same trap errors with the same op locations.
//! What changes is the cost per retired instruction: values live in a flat
//! slot file without `Option` unwrapping, buffer base addresses and
//! element widths are resolved once per execution instead of per access,
//! control flow is jump-threaded instead of recursive, and loop-carried
//! values move through register copies instead of a `Vec` allocation per
//! iteration. Op-id attachment to trap errors happens only on the error
//! path.

use crate::budget::{Budget, BudgetMeter};
use crate::bytecode::{Instr, Program};
use crate::interp::{eval_binary, Buffers, InterpError, MemoryModel, V};
use crate::profile::ExecProfile;
use crate::types::Type;

/// A pre-resolved buffer binding: everything a memory access needs except
/// the (mutable) element storage itself.
#[derive(Clone, Copy)]
enum MemBinding {
    Buf {
        id: u32,
        base: u64,
        eb: u8,
    },
    /// The argument was not a memref; trap lazily at first use, exactly
    /// like the tree-walker's `as_mem`.
    Bad(V),
}

impl MemBinding {
    #[inline]
    fn resolve(self) -> Result<(u32, u64, u8), InterpError> {
        match self {
            MemBinding::Buf { id, base, eb } => Ok((id, base, eb)),
            MemBinding::Bad(v) => Err(V::mismatch("memref", v)),
        }
    }
}

/// Run a lowered program with the given arguments against `bufs`,
/// reporting events to `model`. The generic parameter allows both
/// monomorphized models and `&mut dyn MemoryModel`.
pub fn execute<M: MemoryModel + ?Sized>(
    prog: &Program,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
) -> Result<Vec<V>, InterpError> {
    execute_budgeted(prog, args, bufs, model, &Budget::unlimited())
}

/// [`execute`] under a resource [`Budget`].
///
/// Fuel is charged once per *entered* loop iteration and once per
/// `scf.while` condition evaluation — the same points, in the same
/// event-stream positions (before the iteration's bookkeeping retire),
/// as [`crate::interpret_budgeted`]. A trap therefore fires at an
/// observationally equivalent point in both engines: same
/// [`InterpError::Budget`] payload, same op location, same
/// [`MemoryModel`] event prefix.
pub fn execute_budgeted<M: MemoryModel + ?Sized>(
    prog: &Program,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
    budget: &Budget,
) -> Result<Vec<V>, InterpError> {
    // PROFILE=false monomorphization: the per-opcode accounting below
    // compiles out entirely, so this path is byte-for-byte the old
    // unprofiled dispatch loop.
    execute_inner::<M, false>(prog, args, bufs, model, budget, &mut ExecProfile::new())
}

/// [`execute_budgeted`] with per-opcode dispatch counts and sampled
/// wall-clock attribution accumulated into `profile` (`asap_cli
/// profile`'s flat flamegraph). Observationally identical to the
/// unprofiled entry point — same results, traps, and model stream.
pub fn execute_budgeted_profiled<M: MemoryModel + ?Sized>(
    prog: &Program,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
    budget: &Budget,
    profile: &mut ExecProfile,
) -> Result<Vec<V>, InterpError> {
    execute_inner::<M, true>(prog, args, bufs, model, budget, profile)
}

// The fused multiply-accumulate arms pick `p + o` vs `o + p` by the
// original operand order: f64 addition is commutative in value but not
// in NaN-payload propagation, and equivalence with the tree-walker is
// bit-exact.
#[allow(clippy::if_same_then_else)]
fn execute_inner<M: MemoryModel + ?Sized, const PROFILE: bool>(
    prog: &Program,
    args: &[V],
    bufs: &mut Buffers,
    model: &mut M,
    budget: &Budget,
    profile: &mut ExecProfile,
) -> Result<Vec<V>, InterpError> {
    let mut meter = budget.meter();
    if args.len() != prog.param_slots.len() {
        return Err(InterpError::BadArgs(format!(
            "expected {} arguments, got {}",
            prog.param_slots.len(),
            args.len()
        )));
    }
    for (i, a) in args.iter().enumerate() {
        if let V::Mem(id) = a {
            if *id as usize >= bufs.len() {
                return Err(InterpError::BadArgs(format!(
                    "argument {i} references buffer {id}, but only {} exist",
                    bufs.len()
                )));
            }
        }
    }
    let mut slots: Vec<V> = vec![V::Index(0); prog.num_slots];
    for (&s, &a) in prog.param_slots.iter().zip(args) {
        slots[s as usize] = a;
    }
    // Resolve the binding table once: base address and element width per
    // memref parameter, instead of a `Buffers::get` + `elem_bytes` per
    // access.
    let mems: Vec<MemBinding> = prog
        .mem_args
        .iter()
        .map(|&pos| match args[pos] {
            V::Mem(id) => {
                let buf = bufs.get(id);
                MemBinding::Buf {
                    id,
                    base: buf.base_addr,
                    eb: buf.data.elem_bytes(),
                }
            }
            other => MemBinding::Bad(other),
        })
        .collect();

    let instrs = &prog.instrs[..];
    let mut ip = 0usize;
    loop {
        let Some(instr) = instrs.get(ip) else {
            return Err(InterpError::TypeMismatch(
                "function body did not end in return".into(),
            ));
        };
        ip += 1;
        if PROFILE {
            profile.note(instr.opcode());
        }
        match instr {
            Instr::Const { dst, val } => {
                model.retire(1);
                slots[*dst as usize] = *val;
            }
            Instr::Bin {
                op,
                dst,
                lhs,
                rhs,
                pc,
            } => {
                if op.is_float() {
                    model.retire_fp(1);
                } else {
                    model.retire(1);
                }
                let l = slots[*lhs as usize];
                let r = slots[*rhs as usize];
                slots[*dst as usize] = eval_binary(*op, l, r).map_err(|e| e.at(*pc))?;
            }
            Instr::Cmp {
                pred,
                dst,
                lhs,
                rhs,
                pc,
            } => {
                model.retire(1);
                let l = slots[*lhs as usize].as_u64().map_err(|e| e.at(*pc))?;
                let r = slots[*rhs as usize].as_u64().map_err(|e| e.at(*pc))?;
                use crate::ops::CmpPred::*;
                let b = match pred {
                    Eq => l == r,
                    Ne => l != r,
                    Ult => l < r,
                    Ule => l <= r,
                    Ugt => l > r,
                    Uge => l >= r,
                };
                slots[*dst as usize] = V::Bool(b);
            }
            Instr::Select {
                dst,
                cond,
                if_true,
                if_false,
                pc,
            } => {
                model.retire(1);
                let c = slots[*cond as usize].as_bool().map_err(|e| e.at(*pc))?;
                let src = if c { *if_true } else { *if_false };
                slots[*dst as usize] = slots[src as usize];
            }
            Instr::Cast { dst, src, to, pc } => {
                model.retire(1);
                slots[*dst as usize] =
                    cast_value(slots[*src as usize], to).map_err(|e| e.at(*pc))?;
            }
            Instr::Dim { dst, mem, pc } => {
                model.retire(1);
                let (id, _, _) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                slots[*dst as usize] = V::Index(bufs.get(id).data.len());
            }
            Instr::Load { dst, mem, idx, pc } => {
                let (id, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = slots[*idx as usize].as_index().map_err(|e| e.at(*pc))?;
                model.load(*pc, base + i as u64 * eb as u64, eb);
                slots[*dst as usize] = load_elem(bufs, id, i).map_err(|e| e.at(*pc))?;
            }
            Instr::Store { mem, idx, src, pc } => {
                let (id, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = slots[*idx as usize].as_index().map_err(|e| e.at(*pc))?;
                let v = slots[*src as usize];
                model.store(*pc, base + i as u64 * eb as u64, eb);
                bufs.get_mut(id).data.set(i, v).map_err(|e| e.at(*pc))?;
            }
            Instr::Prefetch {
                mem,
                idx,
                locality,
                write,
                pc,
            } => {
                let (_, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = slots[*idx as usize].as_index().map_err(|e| e.at(*pc))?;
                model.prefetch(*pc, base + i as u64 * eb as u64, *locality, *write);
            }
            Instr::LoadCast {
                dst,
                mem,
                idx,
                pc,
                cast_dst,
                to,
                cast_pc,
            } => {
                let (id, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = slots[*idx as usize].as_index().map_err(|e| e.at(*pc))?;
                model.load(*pc, base + i as u64 * eb as u64, eb);
                let v = load_elem(bufs, id, i).map_err(|e| e.at(*pc))?;
                slots[*dst as usize] = v;
                model.retire(1);
                slots[*cast_dst as usize] = cast_value(v, to).map_err(|e| e.at(*cast_pc))?;
            }
            Instr::AddPrefetch {
                op,
                add_dst,
                lhs,
                rhs,
                add_pc,
                mem,
                locality,
                write,
                pc,
            } => {
                // Matcher guarantees an integer op, so this retires plain.
                model.retire(1);
                let l = slots[*lhs as usize];
                let r = slots[*rhs as usize];
                let sum = eval_binary(*op, l, r).map_err(|e| e.at(*add_pc))?;
                slots[*add_dst as usize] = sum;
                let (_, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = sum.as_index().map_err(|e| e.at(*pc))?;
                model.prefetch(*pc, base + i as u64 * eb as u64, *locality, *write);
            }
            Instr::ClampSelect {
                op,
                add_dst,
                add_lhs,
                add_rhs,
                add_pc,
                pred,
                cmp_dst,
                cmp_rhs,
                cmp_pc,
                dst,
                if_true,
                if_false,
                // The select condition is the Bool written two sub-ops up,
                // so its `as_bool` cannot trap and the pc goes unused.
                pc: _,
            } => {
                model.retire(1);
                let l = slots[*add_lhs as usize];
                let r = slots[*add_rhs as usize];
                let sum = eval_binary(*op, l, r).map_err(|e| e.at(*add_pc))?;
                slots[*add_dst as usize] = sum;
                model.retire(1);
                let cl = sum.as_u64().map_err(|e| e.at(*cmp_pc))?;
                let cr = slots[*cmp_rhs as usize]
                    .as_u64()
                    .map_err(|e| e.at(*cmp_pc))?;
                use crate::ops::CmpPred::*;
                let b = match pred {
                    Eq => cl == cr,
                    Ne => cl != cr,
                    Ult => cl < cr,
                    Ule => cl <= cr,
                    Ugt => cl > cr,
                    Uge => cl >= cr,
                };
                slots[*cmp_dst as usize] = V::Bool(b);
                model.retire(1);
                let src = if b { *if_true } else { *if_false };
                slots[*dst as usize] = slots[src as usize];
            }
            Instr::GatherPrefetch {
                idx,
                crd_mem,
                crd_dst,
                crd_pc,
                cast_dst,
                to,
                cast_pc,
                mem,
                locality,
                write,
                pc,
            } => {
                let (cid, cbase, ceb) = mems[*crd_mem as usize]
                    .resolve()
                    .map_err(|e| e.at(*crd_pc))?;
                let j = slots[*idx as usize].as_index().map_err(|e| e.at(*crd_pc))?;
                model.load(*crd_pc, cbase + j as u64 * ceb as u64, ceb);
                let cv = load_elem(bufs, cid, j).map_err(|e| e.at(*crd_pc))?;
                slots[*crd_dst as usize] = cv;
                model.retire(1);
                let c = cast_value(cv, to).map_err(|e| e.at(*cast_pc))?;
                slots[*cast_dst as usize] = c;
                let (_, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                let i = c.as_index().map_err(|e| e.at(*pc))?;
                model.prefetch(*pc, base + i as u64 * eb as u64, *locality, *write);
            }
            Instr::LoopBack {
                iv,
                step,
                hi,
                body,
                exit,
                copies,
                pc,
            } => {
                // Yield's bookkeeping retire, then the loop-carried copies.
                model.retire(1);
                for &(d, s) in copies {
                    slots[d as usize] = slots[s as usize];
                }
                // ForStep's increment, then ForHead's bound re-check —
                // same slot reads and trap order as the unfused pair.
                let i = slots[*iv as usize].as_index()?;
                let s = slots[*step as usize].as_index()?;
                let next = i.wrapping_add(s);
                slots[*iv as usize] = V::Index(next);
                let h = slots[*hi as usize].as_index()?;
                if next < h {
                    // Fuel for the next iteration, charged before its
                    // head retire — same point as the tree-walker.
                    meter.tick().map_err(|e| InterpError::Budget(e).at(*pc))?;
                    model.retire(1);
                    ip = *body as usize;
                } else {
                    ip = *exit as usize;
                }
            }
            Instr::DotStep {
                a_dst,
                a_mem,
                a_idx,
                a_pc,
                b_dst,
                b_mem,
                b_idx,
                b_pc,
                a,
                b,
                mul_dst,
                mul_pc,
                acc,
                acc_is_rhs,
                dst,
                pc,
            } => {
                let (id, base, eb) = mems[*a_mem as usize].resolve().map_err(|e| e.at(*a_pc))?;
                let i = slots[*a_idx as usize].as_index().map_err(|e| e.at(*a_pc))?;
                model.load(*a_pc, base + i as u64 * eb as u64, eb);
                slots[*a_dst as usize] = load_elem(bufs, id, i).map_err(|e| e.at(*a_pc))?;
                let (id, base, eb) = mems[*b_mem as usize].resolve().map_err(|e| e.at(*b_pc))?;
                let i = slots[*b_idx as usize].as_index().map_err(|e| e.at(*b_pc))?;
                model.load(*b_pc, base + i as u64 * eb as u64, eb);
                slots[*b_dst as usize] = load_elem(bufs, id, i).map_err(|e| e.at(*b_pc))?;
                model.retire_fp(1);
                let x = slots[*a as usize].as_f64().map_err(|e| e.at(*mul_pc))?;
                let y = slots[*b as usize].as_f64().map_err(|e| e.at(*mul_pc))?;
                let p = x * y;
                slots[*mul_dst as usize] = V::F64(p);
                model.retire_fp(1);
                let o = slots[*acc as usize].as_f64().map_err(|e| e.at(*pc))?;
                let s = if *acc_is_rhs { p + o } else { o + p };
                slots[*dst as usize] = V::F64(s);
            }
            Instr::Gather {
                idx,
                crd_mem,
                crd_dst,
                crd_pc,
                cast,
                mem,
                dst,
                pc,
            } => {
                // First load: the coordinate.
                let (cid, cbase, ceb) = mems[*crd_mem as usize]
                    .resolve()
                    .map_err(|e| e.at(*crd_pc))?;
                let j = slots[*idx as usize].as_index().map_err(|e| e.at(*crd_pc))?;
                model.load(*crd_pc, cbase + j as u64 * ceb as u64, ceb);
                let cv = load_elem(bufs, cid, j).map_err(|e| e.at(*crd_pc))?;
                slots[*crd_dst as usize] = cv;
                // Optional widening cast of the coordinate to `index`.
                let i = match cast {
                    Some((cast_dst, cast_pc)) => {
                        model.retire(1);
                        let raw = cv.as_u64().map_err(|e| e.at(*cast_pc))?;
                        slots[*cast_dst as usize] = V::Index(raw as usize);
                        raw as usize
                    }
                    None => cv.as_index().map_err(|e| e.at(*pc))?,
                };
                // Second load: the gathered element.
                let (id, base, eb) = mems[*mem as usize].resolve().map_err(|e| e.at(*pc))?;
                model.load(*pc, base + i as u64 * eb as u64, eb);
                slots[*dst as usize] = load_elem(bufs, id, i).map_err(|e| e.at(*pc))?;
            }
            Instr::MulAdd {
                a,
                b,
                mul_dst,
                mul_pc,
                acc,
                acc_is_rhs,
                dst,
                pc,
            } => {
                model.retire_fp(1);
                let x = slots[*a as usize].as_f64().map_err(|e| e.at(*mul_pc))?;
                let y = slots[*b as usize].as_f64().map_err(|e| e.at(*mul_pc))?;
                let p = x * y;
                slots[*mul_dst as usize] = V::F64(p);
                model.retire_fp(1);
                let o = slots[*acc as usize].as_f64().map_err(|e| e.at(*pc))?;
                let s = if *acc_is_rhs { p + o } else { o + p };
                slots[*dst as usize] = V::F64(s);
            }
            Instr::SpmvLoop(d) => {
                ip = run_spmv_loop(d, &mut slots, &mems, bufs, model, &mut meter)? as usize;
            }
            Instr::Jump { target } => ip = *target as usize,
            Instr::IfBr {
                cond,
                else_target,
                pc,
            } => {
                model.retire(1);
                if !slots[*cond as usize].as_bool().map_err(|e| e.at(*pc))? {
                    ip = *else_target as usize;
                }
            }
            Instr::ForPrologue {
                lo,
                hi,
                step,
                iv,
                pc,
            } => {
                let l = slots[*lo as usize].as_index().map_err(|e| e.at(*pc))?;
                slots[*hi as usize].as_index().map_err(|e| e.at(*pc))?;
                let s = slots[*step as usize].as_index().map_err(|e| e.at(*pc))?;
                if s == 0 {
                    return Err(InterpError::ZeroStep.at(*pc));
                }
                slots[*iv as usize] = V::Index(l);
            }
            Instr::ForHead { iv, hi, exit, pc } => {
                let i = slots[*iv as usize].as_index()?;
                let h = slots[*hi as usize].as_index()?;
                if i < h {
                    // One fuel unit per entered iteration, charged
                    // before the head retire so a trap leaves the same
                    // event prefix as the tree-walker.
                    meter.tick().map_err(|e| InterpError::Budget(e).at(*pc))?;
                    // Loop bookkeeping: induction increment + compare/branch.
                    model.retire(1);
                } else {
                    ip = *exit as usize;
                }
            }
            Instr::ForStep { iv, step, head } => {
                let i = slots[*iv as usize].as_index()?;
                let s = slots[*step as usize].as_index()?;
                slots[*iv as usize] = V::Index(i.wrapping_add(s));
                ip = *head as usize;
            }
            Instr::CondBr { cond, exit, pc } => {
                // Every `scf.while` condition evaluation costs one fuel
                // unit, matching the tree-walker's ConditionOp charge.
                meter.tick().map_err(|e| InterpError::Budget(e).at(*pc))?;
                model.retire(1);
                if !slots[*cond as usize].as_bool().map_err(|e| e.at(*pc))? {
                    ip = *exit as usize;
                }
            }
            Instr::Retire1 => model.retire(1),
            Instr::Copy { dst, src } => slots[*dst as usize] = slots[*src as usize],
            Instr::Return { vals } => {
                model.retire(1);
                return Ok(vals.iter().map(|&v| slots[v as usize]).collect());
            }
        }
    }
}

/// A borrowed integer-typed buffer for the [`run_spmv_loop`] fast path:
/// one discriminant test per element load instead of a `V` round trip.
/// Conversions mirror `BufferData::get` followed by `V::as_u64` exactly
/// (zero-extension for the narrow types, wrap for `i64`).
#[derive(Clone, Copy)]
enum IntSlice<'a> {
    I64(&'a [i64]),
    I32(&'a [i32]),
    I8(&'a [i8]),
    Ix(&'a [usize]),
}

impl<'a> IntSlice<'a> {
    fn of(data: &'a crate::interp::BufferData) -> Option<IntSlice<'a>> {
        use crate::interp::BufferData as B;
        match data {
            B::I64(v) => Some(IntSlice::I64(v)),
            B::I32(v) => Some(IntSlice::I32(v)),
            B::I8(v) => Some(IntSlice::I8(v)),
            B::Index(v) => Some(IntSlice::Ix(v)),
            B::F64(_) => None,
        }
    }

    #[inline]
    fn get_u64(&self, i: usize) -> Option<u64> {
        match self {
            IntSlice::I64(v) => v.get(i).map(|&x| x as u64),
            IntSlice::I32(v) => v.get(i).map(|&x| x as u32 as u64),
            IntSlice::I8(v) => v.get(i).map(|&x| x as u8 as u64),
            IntSlice::Ix(v) => v.get(i).map(|&x| x as u64),
        }
    }

    fn len(&self) -> usize {
        match self {
            IntSlice::I64(v) => v.len(),
            IntSlice::I32(v) => v.len(),
            IntSlice::I8(v) => v.len(),
            IntSlice::Ix(v) => v.len(),
        }
    }
}

/// Execute one [`SpmvLoop`] superinstruction to completion; returns the
/// ip to resume at (always the loop's exit target).
///
/// Two paths, same observable behavior. The *fast* path runs when every
/// loop-invariant operand is well-typed for the strict SpMV shape — loop
/// values then live in locals and typed slices, and the only traps still
/// possible are out-of-bounds loads, reproduced with the same error, op
/// location, and preceding event stream as the generic path. The
/// *generic* path replays the seven fused sub-ops slot by slot and
/// handles every other shape (and every other trap) exactly like the
/// unfused instruction sequence. Routing between the two only inspects
/// state — no model call, no trap — so the choice is unobservable.
// `p + acc` vs `acc + p` by original operand order — see `execute`.
#[allow(clippy::if_same_then_else)]
fn run_spmv_loop<M: MemoryModel + ?Sized>(
    d: &crate::bytecode::SpmvLoop,
    slots: &mut [V],
    mems: &[MemBinding],
    bufs: &Buffers,
    model: &mut M,
    meter: &mut BudgetMeter,
) -> Result<u32, InterpError> {
    // The strict shape (see [`SpmvLoop::strict_shape`], shared with the
    // tier-2 matcher).
    let strict = d.strict_shape();
    // Loop-invariant operands must already hold the types the strict
    // shape produces, so no per-iteration type check can ever trap.
    let invariants = (|| {
        let dist = slots[d.ap_rhs as usize].as_u64().ok()?;
        let clamp = slots[d.cs_add_rhs as usize].as_u64().ok()?;
        let bound = match slots[d.cs_cmp_rhs as usize] {
            V::Index(b) => b,
            _ => return None,
        };
        let acc = match slots[d.ds_acc as usize] {
            V::F64(a) => a,
            _ => return None,
        };
        let st = match slots[d.step as usize] {
            V::Index(s) => s,
            _ => return None,
        };
        Some((dist, clamp, bound, acc, st))
    })();
    // Buffer bindings: the crd arrays integer-typed, vals and the dense
    // vector f64 — matching what `load_elem` + `as_u64`/`as_f64` accept
    // without trapping.
    let buffers = (|| {
        let (lc_id, lc_base, lc_eb) = mems[d.lc_mem as usize].resolve().ok()?;
        let (_, ap_base, ap_eb) = mems[d.ap_mem as usize].resolve().ok()?;
        let (gc_id, gc_base, gc_eb) = mems[d.gp_crd_mem as usize].resolve().ok()?;
        let (_, gp_base, gp_eb) = mems[d.gp_mem as usize].resolve().ok()?;
        let (a_id, a_base, a_eb) = mems[d.ds_a_mem as usize].resolve().ok()?;
        let (b_id, b_base, b_eb) = mems[d.ds_b_mem as usize].resolve().ok()?;
        let crd = IntSlice::of(&bufs.get(lc_id).data)?;
        let gcrd = IntSlice::of(&bufs.get(gc_id).data)?;
        let vals = match &bufs.get(a_id).data {
            crate::interp::BufferData::F64(v) => &v[..],
            _ => return None,
        };
        let dense = match &bufs.get(b_id).data {
            crate::interp::BufferData::F64(v) => &v[..],
            _ => return None,
        };
        Some((
            (lc_base, lc_eb, crd),
            (ap_base, ap_eb),
            (gc_base, gc_eb, gcrd),
            (gp_base, gp_eb),
            (a_base, a_eb, vals),
            (b_base, b_eb, dense),
        ))
    })();

    if let (true, Some((dist, clamp, bound, mut acc, st)), Some(bufs6)) =
        (strict, invariants, buffers)
    {
        let (
            (lc_base, lc_eb, crd),
            (ap_base, ap_eb),
            (gc_base, gc_eb, gcrd),
            (gp_base, gp_eb),
            (a_base, a_eb, vals),
            (b_base, b_eb, dense),
        ) = bufs6;
        let mut i = slots[d.iv as usize].as_index()?;
        let h = slots[d.hi as usize].as_index()?;
        let oob = |i: usize, len: usize, pc| InterpError::OutOfBounds { index: i, len }.at(pc);
        while i < h {
            // Fuel first: one unit per entered iteration, before any
            // model call, so the fast path traps on the same event
            // prefix as the generic path and the tree-walker. This is
            // the only budget cost on the typed-slice path — a
            // decrement and a branch per iteration.
            meter.tick().map_err(|e| InterpError::Budget(e).at(d.pc))?;
            // ForHead retire, then the five body sub-ops, then the back
            // edge — every model call in the same order and with the
            // same arguments as the generic path below.
            model.retire(1);
            model.load(d.lc_pc, lc_base + i as u64 * lc_eb as u64, lc_eb);
            let Some(j64) = crd.get_u64(i) else {
                return Err(oob(i, crd.len(), d.lc_pc));
            };
            let j = j64 as usize;
            model.retire(1); // crd load retires before the widening cast
            model.retire(1); // prefetch-address add
            let pi = (i as u64).wrapping_add(dist);
            model.prefetch(d.ap_pc, ap_base + pi * ap_eb as u64, d.ap_loc, d.ap_write);
            model.retire(1); // clamp add
            let sum = (i as u64).wrapping_add(clamp);
            model.retire(1); // clamp compare
            let clamped = if sum < bound as u64 {
                sum as usize
            } else {
                bound
            };
            model.retire(1); // clamp select
            model.load(d.gp_crd_pc, gc_base + clamped as u64 * gc_eb as u64, gc_eb);
            let Some(g64) = gcrd.get_u64(clamped) else {
                return Err(oob(clamped, gcrd.len(), d.gp_crd_pc));
            };
            model.retire(1); // gathered-coordinate widening cast
            model.prefetch(d.gp_pc, gp_base + g64 * gp_eb as u64, d.gp_loc, d.gp_write);
            model.load(d.ds_a_pc, a_base + i as u64 * a_eb as u64, a_eb);
            let Some(&av) = vals.get(i) else {
                return Err(oob(i, vals.len(), d.ds_a_pc));
            };
            model.load(d.ds_b_pc, b_base + j as u64 * b_eb as u64, b_eb);
            let Some(&bv) = dense.get(j) else {
                return Err(oob(j, dense.len(), d.ds_b_pc));
            };
            model.retire_fp(1); // multiply
            let p = av * bv;
            model.retire_fp(1); // accumulate
            acc = if d.ds_acc_is_rhs { p + acc } else { acc + p };
            model.retire(1); // back-edge yield
            i = i.wrapping_add(st);
        }
        // Materialize the slots the code after the loop can still read:
        // the accumulator (a loop result) and the loop bookkeeping. The
        // per-iteration intermediates are body-scoped SSA values — the
        // verifier guarantees nothing after the loop references them.
        slots[d.iv as usize] = V::Index(i);
        slots[d.ds_acc as usize] = V::F64(acc);
        slots[d.ds_dst as usize] = V::F64(acc);
        return Ok(d.exit);
    }

    // Generic path: the seven fused sub-ops replayed with identical
    // model calls, slot writes, and trap order; see `SpmvLoop`. The
    // top-of-loop bound check doubles as `ForHead` on entry and as
    // `LoopBack`'s re-check on the back edge.
    loop {
        let i = slots[d.iv as usize].as_index()?;
        let h = slots[d.hi as usize].as_index()?;
        if i >= h {
            return Ok(d.exit);
        }
        meter.tick().map_err(|e| InterpError::Budget(e).at(d.pc))?;
        model.retire(1);
        // load crd[j]; widen to index.
        let (id, base, eb) = mems[d.lc_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.lc_pc))?;
        let j = slots[d.lc_idx as usize]
            .as_index()
            .map_err(|e| e.at(d.lc_pc))?;
        model.load(d.lc_pc, base + j as u64 * eb as u64, eb);
        let cv = load_elem(bufs, id, j).map_err(|e| e.at(d.lc_pc))?;
        slots[d.lc_dst as usize] = cv;
        model.retire(1);
        let raw = cv.as_u64().map_err(|e| e.at(d.lc_cast_pc))?;
        slots[d.lc_cast_dst as usize] = V::Index(raw as usize);
        // prefetch crd[j + d].
        model.retire(1);
        let l = slots[d.ap_lhs as usize];
        let r = slots[d.ap_rhs as usize];
        let sum = eval_binary(d.ap_op, l, r).map_err(|e| e.at(d.ap_add_pc))?;
        slots[d.ap_dst as usize] = sum;
        let (_, base, eb) = mems[d.ap_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.ap_pc))?;
        let pi = sum.as_index().map_err(|e| e.at(d.ap_pc))?;
        model.prefetch(d.ap_pc, base + pi as u64 * eb as u64, d.ap_loc, d.ap_write);
        // clamped = min(j + d, bound).
        model.retire(1);
        let l = slots[d.cs_add_lhs as usize];
        let r = slots[d.cs_add_rhs as usize];
        let sum = eval_binary(d.cs_op, l, r).map_err(|e| e.at(d.cs_add_pc))?;
        slots[d.cs_add_dst as usize] = sum;
        model.retire(1);
        let cl = sum.as_u64().map_err(|e| e.at(d.cs_cmp_pc))?;
        let cr = slots[d.cs_cmp_rhs as usize]
            .as_u64()
            .map_err(|e| e.at(d.cs_cmp_pc))?;
        use crate::ops::CmpPred::*;
        let b = match d.cs_pred {
            Eq => cl == cr,
            Ne => cl != cr,
            Ult => cl < cr,
            Ule => cl <= cr,
            Ugt => cl > cr,
            Uge => cl >= cr,
        };
        slots[d.cs_cmp_dst as usize] = V::Bool(b);
        model.retire(1);
        let src = if b { d.cs_if_true } else { d.cs_if_false };
        slots[d.cs_dst as usize] = slots[src as usize];
        // prefetch x[crd[clamped]].
        let (cid, cbase, ceb) = mems[d.gp_crd_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.gp_crd_pc))?;
        let gj = slots[d.gp_idx as usize]
            .as_index()
            .map_err(|e| e.at(d.gp_crd_pc))?;
        model.load(d.gp_crd_pc, cbase + gj as u64 * ceb as u64, ceb);
        let gcv = load_elem(bufs, cid, gj).map_err(|e| e.at(d.gp_crd_pc))?;
        slots[d.gp_crd_dst as usize] = gcv;
        model.retire(1);
        let graw = gcv.as_u64().map_err(|e| e.at(d.gp_cast_pc))?;
        slots[d.gp_cast_dst as usize] = V::Index(graw as usize);
        let (_, base, eb) = mems[d.gp_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.gp_pc))?;
        model.prefetch(d.gp_pc, base + graw * eb as u64, d.gp_loc, d.gp_write);
        // acc += vals[j] * x[crd[j]].
        let (id, base, eb) = mems[d.ds_a_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.ds_a_pc))?;
        let ai = slots[d.ds_a_idx as usize]
            .as_index()
            .map_err(|e| e.at(d.ds_a_pc))?;
        model.load(d.ds_a_pc, base + ai as u64 * eb as u64, eb);
        slots[d.ds_a_dst as usize] = load_elem(bufs, id, ai).map_err(|e| e.at(d.ds_a_pc))?;
        let (id, base, eb) = mems[d.ds_b_mem as usize]
            .resolve()
            .map_err(|e| e.at(d.ds_b_pc))?;
        let bi = slots[d.ds_b_idx as usize]
            .as_index()
            .map_err(|e| e.at(d.ds_b_pc))?;
        model.load(d.ds_b_pc, base + bi as u64 * eb as u64, eb);
        slots[d.ds_b_dst as usize] = load_elem(bufs, id, bi).map_err(|e| e.at(d.ds_b_pc))?;
        model.retire_fp(1);
        let x = slots[d.ds_a as usize]
            .as_f64()
            .map_err(|e| e.at(d.ds_mul_pc))?;
        let y = slots[d.ds_b as usize]
            .as_f64()
            .map_err(|e| e.at(d.ds_mul_pc))?;
        let p = x * y;
        slots[d.ds_mul_dst as usize] = V::F64(p);
        model.retire_fp(1);
        let o = slots[d.ds_acc as usize]
            .as_f64()
            .map_err(|e| e.at(d.ds_pc))?;
        let s = if d.ds_acc_is_rhs { p + o } else { o + p };
        slots[d.ds_dst as usize] = V::F64(s);
        // Back edge: yield retire, loop-carried copies, step.
        model.retire(1);
        for &(cd, cs) in &d.copies {
            slots[cd as usize] = slots[cs as usize];
        }
        let st = slots[d.step as usize].as_index()?;
        slots[d.iv as usize] = V::Index(i.wrapping_add(st));
    }
}

#[inline]
fn load_elem(bufs: &Buffers, id: u32, i: usize) -> Result<V, InterpError> {
    let data = &bufs.get(id).data;
    data.get(i).ok_or(InterpError::OutOfBounds {
        index: i,
        len: data.len(),
    })
}

#[inline]
fn cast_value(v: V, to: &Type) -> Result<V, InterpError> {
    let raw = v.as_u64()?;
    Ok(match to {
        Type::Index => V::Index(raw as usize),
        Type::I64 => V::I64(raw as i64),
        Type::I32 => V::I32(raw as i32),
        Type::I8 => V::I8(raw as i8),
        Type::I1 => V::Bool(raw != 0),
        other => {
            return Err(InterpError::TypeMismatch(format!(
                "cast to unsupported type {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Resource;
    use crate::builder::FuncBuilder;
    use crate::bytecode::lower;
    use crate::interp::{interpret_budgeted, BufferData, CountingModel, NullModel};
    use crate::trace::TraceModel;
    use crate::verify::verify;
    use crate::Function;

    /// Run a function under both engines on clones of the same buffers and
    /// assert bit-identical results, buffers, and event streams.
    fn assert_equivalent(f: &Function, args: &[V], bufs: &Buffers) {
        let _ = assert_equivalent_budgeted(f, args, bufs, &Budget::unlimited());
    }

    /// [`assert_equivalent`] under an explicit budget: both engines must
    /// agree on success/trap, payload, op location, event stream, retire
    /// count, and final buffer contents.
    fn assert_equivalent_budgeted(
        f: &Function,
        args: &[V],
        bufs: &Buffers,
        budget: &Budget,
    ) -> Result<Vec<V>, InterpError> {
        verify(f).expect("test functions verify");
        let prog = lower(f).expect("test functions lower");
        let mut b1 = bufs.clone();
        let mut b2 = bufs.clone();
        let mut t1 = TraceModel::new();
        let mut t2 = TraceModel::new();
        let r1 = interpret_budgeted(f, args, &mut b1, &mut t1, budget);
        let r2 = execute_budgeted(&prog, args, &mut b2, &mut t2, budget);
        match (&r1, &r2) {
            (Ok(v1), Ok(v2)) => assert_eq!(v1, v2, "return values differ"),
            (Err(e1), Err(e2)) => assert_eq!(e1, e2, "traps differ"),
            _ => panic!("engines disagree on success: {r1:?} vs {r2:?}"),
        }
        assert_eq!(t1.events, t2.events, "event streams differ");
        assert_eq!(t1.instructions, t2.instructions, "retire counts differ");
        for id in 0..bufs.len() as u32 {
            assert_eq!(b1.get(id).data, b2.get(id).data, "buffer {id} differs");
        }
        r2
    }

    #[test]
    fn dot_product_matches_tree_walker() {
        let mut b = FuncBuilder::new("dot");
        let x = b.arg(Type::memref(Type::F64));
        let y = b.arg(Type::memref(Type::F64));
        let out = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        let acc = b.for_loop(c0, n, c1, &[zero], |b, i, args| {
            let xv = b.load(x, i);
            let yv = b.load(y, i);
            let p = b.mulf(xv, yv);
            vec![b.addf(args[0], p)]
        });
        b.store(acc[0], out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let bx = bufs.add(BufferData::F64(vec![1.0, 2.0, 3.0]));
        let by = bufs.add(BufferData::F64(vec![4.0, 5.0, 6.0]));
        let bo = bufs.add(BufferData::F64(vec![0.0]));
        let args = [V::Mem(bx), V::Mem(by), V::Mem(bo), V::Index(3)];
        assert_equivalent(&f, &args, &bufs);

        // And the bytecode run computes the right value.
        let prog = lower(&f).unwrap();
        let mut m = CountingModel::default();
        execute(&prog, &args, &mut bufs, &mut m).unwrap();
        match &bufs.get(bo).data {
            BufferData::F64(v) => assert_eq!(v[0], 32.0),
            _ => unreachable!(),
        }
        assert_eq!(m.loads, 6);
        assert_eq!(m.stores, 1);
    }

    #[test]
    fn gather_shape_matches_including_cast_retire() {
        let mut b = FuncBuilder::new("gather");
        let crd = b.arg(Type::memref(Type::I32));
        let x = b.arg(Type::memref(Type::F64));
        let out = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        let acc = b.for_loop(c0, n, c1, &[zero], |b, j, args| {
            let c = b.load(crd, j);
            let ci = b.to_index(c);
            let xv = b.load(x, ci);
            vec![b.addf(args[0], xv)]
        });
        b.store(acc[0], out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let bc = bufs.add(BufferData::I32(vec![2, 0, 1]));
        let bx = bufs.add(BufferData::F64(vec![10.0, 20.0, 30.0]));
        let bo = bufs.add(BufferData::F64(vec![0.0]));
        assert_equivalent(
            &f,
            &[V::Mem(bc), V::Mem(bx), V::Mem(bo), V::Index(3)],
            &bufs,
        );
    }

    #[test]
    fn while_and_if_shapes_match() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("mix");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let c2 = b.const_index(2);
        let r = b.while_loop(
            &[c0, c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0], args[1]]),
            |b, args| {
                let rem = b.binary(crate::BinOp::RemUI, args[0], c2);
                let is_even = b.cmpi(CmpPred::Eq, rem, c0);
                let inc = b.if_else(is_even, &[Type::Index], |_| vec![c2], |_| vec![c1]);
                vec![b.addi(args[0], c1), b.addi(args[1], inc[0])]
            },
        );
        b.store(r[1], out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let _ = bufs.add(BufferData::Index(vec![0]));
        assert_equivalent(&f, &[V::Index(9), V::Mem(0)], &bufs);
    }

    #[test]
    fn traps_match_tree_walker_with_locations() {
        // Out-of-bounds load: same error, same op id, and the demand event
        // for the faulting load is still reported first.
        let mut b = FuncBuilder::new("oob");
        let x = b.arg(Type::memref(Type::F64));
        let i = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let v = b.load(x, i);
        b.store(v, out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let _ = bufs.add(BufferData::F64(vec![1.0, 2.0]));
        let _ = bufs.add(BufferData::F64(vec![0.0]));
        assert_equivalent(&f, &[V::Mem(0), V::Index(5), V::Mem(1)], &bufs);
    }

    #[test]
    fn zero_step_and_type_mismatch_trap_identically() {
        let mut b = FuncBuilder::new("zs");
        let n = b.arg(Type::Index);
        let step = b.arg(Type::Index);
        let c0 = b.const_index(0);
        b.for_loop(c0, n, step, &[], |_, _, _| vec![]);
        let f = b.finish();
        let bufs = Buffers::new();
        assert_equivalent(&f, &[V::Index(10), V::Index(0)], &bufs);
        assert_equivalent(&f, &[V::F64(1.5), V::Index(1)], &bufs);
    }

    /// A dot-product loop over `n` elements: the canonical fuel consumer.
    fn dot_fn() -> (Function, Buffers) {
        let mut b = FuncBuilder::new("dot");
        let x = b.arg(Type::memref(Type::F64));
        let y = b.arg(Type::memref(Type::F64));
        let out = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let zero = b.const_f64(0.0);
        let acc = b.for_loop(c0, n, c1, &[zero], |b, i, args| {
            let xv = b.load(x, i);
            let yv = b.load(y, i);
            let p = b.mulf(xv, yv);
            vec![b.addf(args[0], p)]
        });
        b.store(acc[0], out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        bufs.add(BufferData::F64(vec![1.0; 64]));
        bufs.add(BufferData::F64(vec![2.0; 64]));
        bufs.add(BufferData::F64(vec![0.0]));
        (f, bufs)
    }

    #[test]
    fn fuel_trap_is_equivalent_in_both_engines() {
        let (f, bufs) = dot_fn();
        let args = [V::Mem(0), V::Mem(1), V::Mem(2), V::Index(64)];
        // 64 iterations, 10 units of fuel: both engines must trap with
        // the identical error (payload + For-op location) after the
        // identical event prefix.
        let err = assert_equivalent_budgeted(&f, &args, &bufs, &Budget::unlimited().with_fuel(10))
            .unwrap_err();
        let root = err.root().clone();
        match root {
            InterpError::Budget(b) => {
                assert_eq!(b.resource, Resource::Fuel);
                assert_eq!(b.spent, 10);
                assert_eq!(b.limit, 10);
            }
            other => panic!("expected a fuel trap, got {other:?}"),
        }
        assert!(err.op().is_some(), "budget trap carries the loop op id");
    }

    #[test]
    fn exact_fuel_completes_in_both_engines() {
        let (f, bufs) = dot_fn();
        let args = [V::Mem(0), V::Mem(1), V::Mem(2), V::Index(64)];
        // One unit per entered iteration, so exactly 64 suffices.
        assert_equivalent_budgeted(&f, &args, &bufs, &Budget::unlimited().with_fuel(64))
            .expect("64 fuel covers 64 iterations");
        // ... and 63 does not.
        assert_equivalent_budgeted(&f, &args, &bufs, &Budget::unlimited().with_fuel(63))
            .unwrap_err();
    }

    #[test]
    fn while_loop_fuel_charges_per_condition_check() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("count");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.while_loop(
            &[c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0]]),
            |b, args| vec![b.addi(args[0], c1)],
        );
        let f = b.finish();
        let bufs = Buffers::new();
        // 8 entered iterations + the final false check = 9 evaluations.
        assert_equivalent_budgeted(&f, &[V::Index(8)], &bufs, &Budget::unlimited().with_fuel(9))
            .expect("9 condition checks fit in 9 fuel");
        assert_equivalent_budgeted(&f, &[V::Index(8)], &bufs, &Budget::unlimited().with_fuel(8))
            .unwrap_err();
    }

    #[test]
    fn cancellation_traps_both_engines_identically() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("count");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.while_loop(
            &[c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0]]),
            |b, args| vec![b.addi(args[0], c1)],
        );
        let f = b.finish();
        let bufs = Buffers::new();
        let budget = Budget::unlimited().with_cancellation();
        budget.cancel();
        // 5001 condition checks cross the poll interval, so the shared
        // token is observed and both engines trap identically.
        let err = assert_equivalent_budgeted(&f, &[V::Index(5000)], &bufs, &budget).unwrap_err();
        match err.root() {
            InterpError::Budget(b) => assert_eq!(b.resource, Resource::Cancelled),
            other => panic!("expected a cancellation trap, got {other:?}"),
        }
    }

    #[test]
    fn profiled_execution_is_observationally_identical() {
        let (f, bufs) = dot_fn();
        let args = [V::Mem(0), V::Mem(1), V::Mem(2), V::Index(64)];
        let prog = lower(&f).unwrap();
        let mut b1 = bufs.clone();
        let mut b2 = bufs.clone();
        let mut t1 = TraceModel::new();
        let mut t2 = TraceModel::new();
        let mut profile = ExecProfile::new();
        let r1 = execute_budgeted(&prog, &args, &mut b1, &mut t1, &Budget::unlimited()).unwrap();
        let r2 = execute_budgeted_profiled(
            &prog,
            &args,
            &mut b2,
            &mut t2,
            &Budget::unlimited(),
            &mut profile,
        )
        .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(t1.events, t2.events);
        assert_eq!(t1.instructions, t2.instructions);
        // Every executed instruction was counted, and dispatch counts are
        // deterministic: a second profiled run produces the same profile.
        assert_eq!(
            profile.total_dispatch(),
            prog_dispatches(&prog, &args, &bufs)
        );
        assert!(profile.total_dispatch() > 64, "the loop body was counted");
        let mut b3 = bufs.clone();
        let mut profile2 = ExecProfile::new();
        execute_budgeted_profiled(
            &prog,
            &args,
            &mut b3,
            &mut NullModel,
            &Budget::unlimited(),
            &mut profile2,
        )
        .unwrap();
        assert_eq!(profile.dispatch, profile2.dispatch);
    }

    /// Re-run profiled and return the dispatch total (helper keeping the
    /// main assertion readable).
    fn prog_dispatches(prog: &Program, args: &[V], bufs: &Buffers) -> u64 {
        let mut b = bufs.clone();
        let mut p = ExecProfile::new();
        execute_budgeted_profiled(
            prog,
            args,
            &mut b,
            &mut NullModel,
            &Budget::unlimited(),
            &mut p,
        )
        .unwrap();
        p.total_dispatch()
    }

    #[test]
    fn bad_args_rejected_up_front() {
        let mut b = FuncBuilder::new("f");
        let _ = b.arg(Type::Index);
        let f = b.finish();
        let prog = lower(&f).unwrap();
        let mut bufs = Buffers::new();
        let err = execute(&prog, &[], &mut bufs, &mut NullModel).unwrap_err();
        assert!(matches!(err, InterpError::BadArgs(_)));
        let err = execute(&prog, &[V::Mem(3)], &mut bufs, &mut NullModel).unwrap_err();
        assert!(matches!(err, InterpError::BadArgs(_)));
    }
}
