//! IR-to-IR transforms: loop-invariant code motion and dead-code
//! elimination.
//!
//! LICM matters to the reproduction: the paper's Figure 5 notes that the
//! bound-computation loads (`Bi_pos[1]`, `Bj_pos[...]`) "are loop-invariant
//! and will be hoisted up", so ASaP's steady-state per-iteration overhead
//! is 3 ALU ops + 1 load + 2 prefetches, not the whole bound chain. Without
//! LICM the measured instruction overhead would be wrong.

use crate::ops::{Function, OpKind, Region, Value};
use std::collections::HashSet;

/// Collect every memref value that is stored through anywhere in the
/// function. Memref values are only ever function parameters (the IR has no
/// ops producing memrefs), so value identity is a sound aliasing check.
fn stored_memrefs(f: &Function) -> HashSet<Value> {
    let mut set = HashSet::new();
    f.walk(&mut |op| {
        if let OpKind::Store { mem, .. } = op.kind {
            set.insert(mem);
        }
    });
    set
}

/// Values defined anywhere inside a region (op results and block args of
/// nested structured ops).
fn defined_in_region(r: &Region, out: &mut HashSet<Value>) {
    r.walk(&mut |op| {
        out.extend(op.results.iter().copied());
        match &op.kind {
            OpKind::For { iv, iter_args, .. } => {
                out.insert(*iv);
                out.extend(iter_args.iter().copied());
            }
            OpKind::While {
                before_args,
                after_args,
                ..
            } => {
                out.extend(before_args.iter().copied());
                out.extend(after_args.iter().copied());
            }
            _ => {}
        }
    });
}

/// Loop-invariant code motion.
///
/// Hoists, out of `scf.for` and `scf.while` loops, ops that are pure
/// (constants, arithmetic, casts, `memref.dim`) or loads from memrefs that
/// are never stored to in this function, when all their operands are
/// defined outside the loop. Loads are speculated: a hoisted load executes
/// even if the loop would have run zero times, which is safe for the
/// position-buffer loads ASaP emits (always in bounds by construction of
/// the storage) — callers generating IR where that is not true should run
/// [`dce`] only.
///
/// Returns the number of ops hoisted.
pub fn licm(f: &mut Function) -> usize {
    let read_only_ok = stored_memrefs(f);
    let mut hoisted = 0;
    licm_region(&mut f.body, &read_only_ok, &mut hoisted);
    hoisted
}

fn is_hoistable_kind(kind: &OpKind, stored: &HashSet<Value>) -> bool {
    match kind {
        OpKind::Const(_)
        | OpKind::Binary { .. }
        | OpKind::Cmp { .. }
        | OpKind::Select { .. }
        | OpKind::Cast { .. }
        | OpKind::Dim { .. } => true,
        OpKind::Load { mem, .. } => !stored.contains(mem),
        _ => false,
    }
}

fn licm_region(r: &mut Region, stored: &HashSet<Value>, hoisted: &mut usize) {
    // Depth-first: hoist within nested loops first so their invariants can
    // bubble further up through this region's loops.
    for op in &mut r.ops {
        for nested in op.kind.regions_mut() {
            licm_region(nested, stored, hoisted);
        }
    }

    let mut i = 0;
    while i < r.ops.len() {
        let is_loop = matches!(r.ops[i].kind, OpKind::For { .. } | OpKind::While { .. });
        if !is_loop {
            i += 1;
            continue;
        }

        // Values defined inside the loop (shrinks as we hoist).
        let mut inside: HashSet<Value> = HashSet::new();
        match &r.ops[i].kind {
            OpKind::For {
                iv,
                iter_args,
                body,
                ..
            } => {
                inside.insert(*iv);
                inside.extend(iter_args.iter().copied());
                defined_in_region(body, &mut inside);
            }
            OpKind::While {
                before_args,
                before,
                after_args,
                after,
                ..
            } => {
                inside.extend(before_args.iter().copied());
                inside.extend(after_args.iter().copied());
                defined_in_region(before, &mut inside);
                defined_in_region(after, &mut inside);
            }
            _ => unreachable!(),
        }

        // Fixpoint: repeatedly move hoistable top-level body ops out.
        loop {
            let mut moved_any = false;
            let regions: Vec<&mut Region> = r.ops[i].kind.regions_mut();
            let mut extracted = Vec::new();
            for body in regions {
                let mut j = 0;
                while j < body.ops.len() {
                    let op = &body.ops[j];
                    let hoist = is_hoistable_kind(&op.kind, stored)
                        && op.kind.operands().iter().all(|v| !inside.contains(v));
                    if hoist {
                        let op = body.ops.remove(j);
                        for res in &op.results {
                            inside.remove(res);
                        }
                        extracted.push(op);
                        moved_any = true;
                    } else {
                        j += 1;
                    }
                }
            }
            let n = extracted.len();
            for (k, op) in extracted.into_iter().enumerate() {
                r.ops.insert(i + k, op);
            }
            *hoisted += n;
            i += n;
            if !moved_any {
                break;
            }
        }
        i += 1;
    }
}

/// Dead-code elimination: removes side-effect-free, region-free ops whose
/// results are all unused. Returns the number of ops removed.
pub fn dce(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashSet<Value> = HashSet::new();
        f.walk(&mut |op| used.extend(op.kind.operands()));
        let before = count_removable(&f.body, &used);
        if before == 0 {
            return removed;
        }
        remove_dead(&mut f.body, &used);
        removed += before;
    }
}

fn is_dead(kind: &OpKind, results: &[Value], used: &HashSet<Value>) -> bool {
    !kind.has_side_effects()
        && kind.regions().is_empty()
        && results.iter().all(|r| !used.contains(r))
        && !results.is_empty()
}

fn count_removable(r: &Region, used: &HashSet<Value>) -> usize {
    let mut n = 0;
    r.walk(&mut |op| {
        if is_dead(&op.kind, &op.results, used) {
            n += 1;
        }
    });
    n
}

fn remove_dead(r: &mut Region, used: &HashSet<Value>) {
    r.ops.retain(|op| !is_dead(&op.kind, &op.results, used));
    for op in &mut r.ops {
        for nested in op.kind.regions_mut() {
            remove_dead(nested, used);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::interp::{interpret, BufferData, Buffers, CountingModel, V};
    use crate::types::Type;
    use crate::verify::verify;

    /// An SpMV-shaped kernel where the inner loop contains a loop-invariant
    /// bound chain: after LICM the chain must sit outside both loops and
    /// the result must be unchanged.
    #[test]
    fn licm_hoists_bound_chain_out_of_loop_nest() {
        let mut b = FuncBuilder::new("k");
        let pos = b.arg(Type::memref(Type::Index));
        let crd = b.arg(Type::memref(Type::Index));
        let c = b.arg(Type::memref(Type::F64));
        let out = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let lo = b.load(pos, i);
            let ip1 = b.addi(i, c1);
            let hi = b.load(pos, ip1);
            b.for_loop(lo, hi, c1, &[], |b, jj, _| {
                // Loop-invariant chain: bound = pos[n] - 1 (pos is read-only).
                let total = b.load(pos, n);
                let bound = b.subi(total, c1);
                let idx = b.minui(jj, bound);
                let j = b.load(crd, idx);
                let v = b.load(c, j);
                b.store(v, out, i);
                vec![]
            });
            vec![]
        });
        let mut f = b.finish();
        verify(&f).unwrap();

        let run = |f: &crate::ops::Function| {
            let mut bufs = Buffers::new();
            let bpos = bufs.add(BufferData::Index(vec![0, 2, 3]));
            let bcrd = bufs.add(BufferData::Index(vec![0, 1, 1]));
            let bc = bufs.add(BufferData::F64(vec![10.0, 20.0]));
            let bout = bufs.add(BufferData::F64(vec![0.0, 0.0]));
            let mut m = CountingModel::default();
            interpret(
                f,
                &[
                    V::Mem(bpos),
                    V::Mem(bcrd),
                    V::Mem(bc),
                    V::Mem(bout),
                    V::Index(2),
                ],
                &mut bufs,
                &mut m,
            )
            .unwrap();
            let out = match &bufs.get(bout).data {
                BufferData::F64(v) => v.clone(),
                _ => unreachable!(),
            };
            (out, m)
        };

        let (before_out, before_m) = run(&f);
        let hoisted = licm(&mut f);
        assert!(
            hoisted >= 2,
            "expected the bound chain to hoist, got {hoisted}"
        );
        verify(&f).unwrap();
        let (after_out, after_m) = run(&f);
        assert_eq!(before_out, after_out);
        // pos[n] was loaded per inner iteration (3×) before; once after.
        assert!(
            after_m.loads < before_m.loads,
            "LICM should reduce dynamic loads: {} -> {}",
            before_m.loads,
            after_m.loads
        );
    }

    #[test]
    fn licm_does_not_hoist_loads_from_written_memrefs() {
        let mut b = FuncBuilder::new("k");
        let a = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            // a[0] is loop-variant because a is stored to below.
            let v = b.load(a, c0);
            b.store(v, a, i);
            vec![]
        });
        let mut f = b.finish();
        let hoisted = licm(&mut f);
        assert_eq!(hoisted, 0);
    }

    #[test]
    fn licm_does_not_hoist_iv_dependent_ops() {
        let mut b = FuncBuilder::new("k");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let x = b.addi(i, c1); // depends on iv
            b.store(x, out, i);
            vec![]
        });
        let mut f = b.finish();
        assert_eq!(licm(&mut f), 0);
    }

    #[test]
    fn licm_hoists_through_two_levels() {
        let mut b = FuncBuilder::new("k");
        let n = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            b.for_loop(c0, n, c1, &[], |b, j, _| {
                let inv = b.addi(n, n); // invariant to both loops
                let s = b.addi(inv, j);
                let si = b.addi(s, i);
                b.store(si, out, j);
                vec![]
            });
            vec![]
        });
        let mut f = b.finish();
        let hoisted = licm(&mut f);
        // `inv` hoists out of inner (1) then outer (1) = counted twice.
        assert_eq!(hoisted, 2);
        verify(&f).unwrap();
        // The invariant add must now be at function body top level.
        let top_kinds: Vec<bool> = f
            .body
            .ops
            .iter()
            .map(|o| matches!(o.kind, OpKind::Binary { .. }))
            .collect();
        assert!(top_kinds.iter().any(|&x| x));
    }

    #[test]
    fn dce_removes_unused_pure_ops() {
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        let _dead1 = b.addi(x, x);
        let _dead2 = b.muli(x, x);
        b.store(x, out, c0);
        let mut f = b.finish();
        let n_before = f.op_count();
        let removed = dce(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.op_count(), n_before - 2);
        verify(&f).unwrap();
    }

    #[test]
    fn dce_keeps_stores_and_prefetches() {
        let mut b = FuncBuilder::new("k");
        let out = b.arg(Type::memref(Type::Index));
        let c0 = b.const_index(0);
        b.prefetch_read(out, c0, 2);
        b.store(c0, out, c0);
        let mut f = b.finish();
        assert_eq!(dce(&mut f), 0);
    }

    #[test]
    fn dce_is_transitive() {
        let mut b = FuncBuilder::new("k");
        let x = b.arg(Type::Index);
        let a = b.addi(x, x); // only used by `bb`
        let _bb = b.muli(a, a); // unused
        let mut f = b.finish();
        assert_eq!(dce(&mut f), 2);
    }
}
