//! # asap-ir — a small MLIR-like SSA IR
//!
//! The executable substrate standing in for MLIR's `arith`/`memref`/`scf`
//! dialects in the ASaP reproduction. It provides:
//!
//! - a region-structured SSA IR ([`Function`], [`Op`], [`Region`]) covering
//!   exactly the op set sparsification emits, including `memref.prefetch`;
//! - a closure-based [`FuncBuilder`];
//! - a [`verify()`] pass checking def-before-use, terminators and types;
//! - an MLIR-flavoured [`print_function`] printer for golden tests;
//! - an [`interpret`]er that executes functions against typed [`Buffers`]
//!   and reports every memory access (with a static-op "PC") to a
//!   pluggable [`MemoryModel`] — the hook `asap-sim` attaches to;
//! - transforms: [`licm`] (needed so ASaP's hoistable bound chain really is
//!   hoisted, as the paper assumes) and [`dce`].

pub mod budget;
pub mod builder;
pub mod bytecode;
pub mod cse;
pub mod diag;
pub mod exec;
pub mod fold;
pub mod interp;
pub mod ops;
pub mod printer;
pub mod profile;
pub mod tier2;
pub mod trace;
pub mod transforms;
pub mod types;
pub mod verify;

pub use budget::{total_polls, Budget, BudgetError, BudgetMeter, CancelToken, Resource};
pub use builder::FuncBuilder;
pub use bytecode::{lower, Instr, LowerError, Program};
pub use cse::cse;
pub use diag::AsapError;
pub use exec::{execute, execute_budgeted, execute_budgeted_profiled};
pub use fold::fold;
pub use interp::{
    interpret, interpret_budgeted, AccessKind, Buffer, BufferData, Buffers, CountingModel,
    InterpError, MemoryModel, NullModel, V,
};
pub use ops::{BinOp, CmpPred, Function, Op, OpId, OpKind, Region, Value};
pub use printer::print_function;
pub use profile::{ExecProfile, NUM_OPCODES, OPCODE_NAMES};
pub use tier2::{SpmmPlan, SpmvPlan, Tier2Plan};
pub use trace::{TraceEvent, TraceModel};
pub use transforms::{dce, licm};
pub use types::{Literal, Type};
pub use verify::{verify, VerifyError};
