//! Structural and type verification.
//!
//! Checks the invariants the interpreter and the transforms rely on:
//! every operand is defined (dominance within the straight-line region
//! model), region terminators have the right kind and arity, and operand
//! types are consistent.

use crate::ops::{Function, Op, OpKind, Region, Value};
use crate::types::Type;
use std::collections::HashSet;

/// A verification failure, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a function, returning the first violated invariant.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let mut defined: HashSet<Value> = f.params.iter().copied().collect();
    for &p in &f.params {
        if p.index() >= f.value_types.len() {
            return Err(VerifyError(format!("param {p} has no recorded type")));
        }
    }
    verify_region(f, &f.body, &mut defined, TerminatorKind::Return)?;
    Ok(())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TerminatorKind {
    Return,
    Yield { arity: usize },
    Condition { arity: usize },
}

fn check_operands(f: &Function, op: &Op, defined: &HashSet<Value>) -> Result<(), VerifyError> {
    for v in op.kind.operands() {
        if !defined.contains(&v) {
            return Err(VerifyError(format!(
                "{}: operand {v} used before definition",
                op.id
            )));
        }
        if v.index() >= f.value_types.len() {
            return Err(VerifyError(format!("{}: operand {v} has no type", op.id)));
        }
    }
    Ok(())
}

fn check_types(f: &Function, op: &Op) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError(format!("{}: {msg}", op.id)));
    match &op.kind {
        OpKind::Binary { op: b, lhs, rhs } => {
            if f.ty(*lhs) != f.ty(*rhs) {
                return err(format!(
                    "binary operand types differ: {} vs {}",
                    f.ty(*lhs),
                    f.ty(*rhs)
                ));
            }
            let want_float = b.is_float();
            if want_float != f.ty(*lhs).is_float() {
                return err(format!("{} applied to {}", b.mnemonic(), f.ty(*lhs)));
            }
        }
        OpKind::Cmp { lhs, rhs, .. } => {
            if f.ty(*lhs) != f.ty(*rhs) {
                return err("cmp operand types differ".into());
            }
            if !f.ty(*lhs).is_int_like() {
                return err("cmpi on non-integer type".into());
            }
        }
        OpKind::Select {
            cond,
            if_true,
            if_false,
        } => {
            if *f.ty(*cond) != Type::I1 {
                return err("select condition must be i1".into());
            }
            if f.ty(*if_true) != f.ty(*if_false) {
                return err("select arms have different types".into());
            }
        }
        OpKind::Load { mem, index } | OpKind::Prefetch { mem, index, .. } => {
            if f.ty(*mem).elem().is_none() {
                return err("memory operand is not a memref".into());
            }
            if *f.ty(*index) != Type::Index {
                return err("memory index must be of index type".into());
            }
        }
        OpKind::Store { mem, index, value } => {
            let Some(elem) = f.ty(*mem).elem() else {
                return err("store target is not a memref".into());
            };
            if *f.ty(*index) != Type::Index {
                return err("store index must be of index type".into());
            }
            if elem != f.ty(*value) {
                return err(format!("store of {} into memref of {}", f.ty(*value), elem));
            }
        }
        OpKind::Dim { mem } if f.ty(*mem).elem().is_none() => {
            return err("dim of non-memref".into());
        }
        OpKind::For {
            lo,
            hi,
            step,
            iter_args,
            inits,
            ..
        } => {
            for (name, v) in [("lo", lo), ("hi", hi), ("step", step)] {
                if *f.ty(*v) != Type::Index {
                    return err(format!("for {name} bound must be index"));
                }
            }
            if iter_args.len() != inits.len() {
                return err("for iter_args/inits arity mismatch".into());
            }
            for (a, i) in iter_args.iter().zip(inits) {
                if f.ty(*a) != f.ty(*i) {
                    return err("for iter_arg/init type mismatch".into());
                }
            }
            if op.results.len() != inits.len() {
                return err("for results/inits arity mismatch".into());
            }
        }
        OpKind::While {
            inits,
            before_args,
            after_args,
            ..
        } => {
            if before_args.len() != inits.len() || after_args.len() != inits.len() {
                return err("while arg arity mismatch".into());
            }
            if op.results.len() != inits.len() {
                return err("while results arity mismatch".into());
            }
        }
        OpKind::If { cond, .. } if *f.ty(*cond) != Type::I1 => {
            return err("if condition must be i1".into());
        }
        _ => {}
    }
    Ok(())
}

fn verify_region(
    f: &Function,
    r: &Region,
    defined: &mut HashSet<Value>,
    term: TerminatorKind,
) -> Result<(), VerifyError> {
    let Some(last) = r.ops.last() else {
        return Err(VerifyError("empty region".into()));
    };
    if !last.kind.is_terminator() {
        return Err(VerifyError(format!(
            "{}: region does not end in a terminator",
            last.id
        )));
    }
    for (i, op) in r.ops.iter().enumerate() {
        if op.kind.is_terminator() && i + 1 != r.ops.len() {
            return Err(VerifyError(format!(
                "{}: terminator in the middle of a region",
                op.id
            )));
        }
        check_operands(f, op, defined)?;
        check_types(f, op)?;
        match &op.kind {
            OpKind::For {
                iv,
                iter_args,
                body,
                ..
            } => {
                defined.insert(*iv);
                defined.extend(iter_args.iter().copied());
                verify_region(
                    f,
                    body,
                    defined,
                    TerminatorKind::Yield {
                        arity: iter_args.len(),
                    },
                )?;
            }
            OpKind::While {
                before_args,
                before,
                after_args,
                after,
                inits,
            } => {
                defined.extend(before_args.iter().copied());
                verify_region(
                    f,
                    before,
                    defined,
                    TerminatorKind::Condition { arity: inits.len() },
                )?;
                defined.extend(after_args.iter().copied());
                verify_region(
                    f,
                    after,
                    defined,
                    TerminatorKind::Yield { arity: inits.len() },
                )?;
            }
            OpKind::If {
                then_region,
                else_region,
                ..
            } => {
                verify_region(
                    f,
                    then_region,
                    defined,
                    TerminatorKind::Yield {
                        arity: op.results.len(),
                    },
                )?;
                verify_region(
                    f,
                    else_region,
                    defined,
                    TerminatorKind::Yield {
                        arity: op.results.len(),
                    },
                )?;
            }
            OpKind::Yield(vs) => match term {
                TerminatorKind::Yield { arity } if vs.len() == arity => {}
                TerminatorKind::Yield { arity } => {
                    return Err(VerifyError(format!(
                        "{}: yield arity {} != expected {arity}",
                        op.id,
                        vs.len()
                    )));
                }
                _ => {
                    return Err(VerifyError(format!(
                        "{}: yield where another terminator was expected",
                        op.id
                    )));
                }
            },
            OpKind::ConditionOp { args, .. } => match term {
                TerminatorKind::Condition { arity } if args.len() == arity => {}
                _ => {
                    return Err(VerifyError(format!(
                        "{}: misplaced or wrong-arity scf.condition",
                        op.id
                    )));
                }
            },
            OpKind::Return(_) if term != TerminatorKind::Return => {
                return Err(VerifyError(format!(
                    "{}: return inside a nested region",
                    op.id
                )));
            }
            _ => {}
        }
        for &res in &op.results {
            if !defined.insert(res) {
                return Err(VerifyError(format!("{}: value {res} redefined", op.id)));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::{BinOp, Op, OpId};
    use crate::types::{Literal, Type};

    #[test]
    fn accepts_wellformed_function() {
        let mut b = FuncBuilder::new("ok");
        let x = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let v = b.load(x, i);
            b.store(v, x, i);
            vec![]
        });
        let f = b.finish();
        assert!(verify(&f).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut b = FuncBuilder::new("bad");
        let _ = b.arg(Type::Index);
        let mut f = b.finish();
        // Inject an op using an undefined value.
        f.value_types.push(Type::Index); // type for value 1
        f.value_types.push(Type::Index); // type for value 2 (never defined)
        let res = Value(1);
        f.body.ops.insert(
            0,
            Op {
                id: OpId(99),
                kind: OpKind::Binary {
                    op: BinOp::AddI,
                    lhs: Value(2),
                    rhs: Value(2),
                },
                results: vec![res],
            },
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_type_mismatch_in_store() {
        let mut b = FuncBuilder::new("bad_store");
        let x = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        let mut f = b.finish();
        // store of an index into an f64 memref
        f.body.ops.insert(
            1,
            Op {
                id: OpId(99),
                kind: OpKind::Store {
                    mem: x,
                    index: c0,
                    value: c0,
                },
                results: vec![],
            },
        );
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("store of index"), "got: {}", err.0);
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut b = FuncBuilder::new("nt");
        let _ = b.arg(Type::Index);
        let mut f = b.finish();
        f.body.ops.pop(); // drop the return
        f.body.ops.push(Op {
            id: OpId(98),
            kind: OpKind::Const(Literal::Index(0)),
            results: vec![Value(1)],
        });
        f.value_types.push(Type::Index);
        assert!(verify(&f).is_err());
    }

    #[test]
    fn rejects_float_binop_on_index() {
        let mut b = FuncBuilder::new("fm");
        let x = b.arg(Type::Index);
        let mut f = b.finish();
        let res = f.fresh_value(Type::Index);
        f.body.ops.insert(
            0,
            Op {
                id: OpId(97),
                kind: OpKind::Binary {
                    op: BinOp::AddF,
                    lhs: x,
                    rhs: x,
                },
                results: vec![res],
            },
        );
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("arith.addf applied to index"));
    }

    #[test]
    fn rejects_non_index_load_index() {
        let mut b = FuncBuilder::new("li");
        let x = b.arg(Type::memref(Type::F64));
        let i = b.arg(Type::I32);
        let mut f = b.finish();
        let res = f.fresh_value(Type::F64);
        f.body.ops.insert(
            0,
            Op {
                id: OpId(96),
                kind: OpKind::Load { mem: x, index: i },
                results: vec![res],
            },
        );
        assert!(verify(&f).is_err());
    }

    #[test]
    fn while_and_if_verify() {
        use crate::ops::CmpPred;
        let mut b = FuncBuilder::new("wi");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let w = b.while_loop(
            &[c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0]]),
            |b, args| vec![b.addi(args[0], c1)],
        );
        let cond = b.cmpi(CmpPred::Eq, w[0], n);
        b.if_else(cond, &[], |_| vec![], |_| vec![]);
        let f = b.finish();
        assert!(verify(&f).is_ok());
    }
}
