//! Resource governance: execution budgets and the per-run meter.
//!
//! A [`Budget`] bounds what one kernel run (or simulation) may consume:
//!
//! - **fuel** — a deterministic step limit, charged once per loop
//!   iteration at the loop head (both engines charge at observationally
//!   identical points, so a fuel trap is part of the engine-equivalence
//!   contract);
//! - **deadline** — a wall-clock bound, polled every
//!   [`BudgetMeter::POLL_INTERVAL`] steps so the hot loop stays cheap;
//! - **bytes** — an allocation ceiling checked when operands are bound
//!   (the interpreter allocates nothing mid-run);
//! - **cancellation** — a shared [`AtomicBool`] token polled alongside
//!   the deadline; anything holding the token (a peer thread, the
//!   simulator's cycle cap, a signal handler) can stop the run.
//!
//! Exceeding any of these yields a typed [`BudgetError`] — never a hang,
//! never a panic. Fuel traps are deterministic and engine-equivalent;
//! deadline and cancellation traps are inherently timing-dependent and
//! are excluded from the differential oracles.
//!
//! The unlimited path is engineered to be near-free: fuel is a single
//! decrement-and-branch against a `u64::MAX` sentinel, and the poll slot
//! is skipped entirely when neither a deadline nor a token is installed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide count of deadline/cancellation poll-slot executions
/// (one per [`BudgetMeter::POLL_INTERVAL`] ticks on any meter). Lives
/// here rather than in the observability crate so the meter stays free
/// of upward dependencies; `asap-obs` mirrors it into its registry.
static POLLS: AtomicU64 = AtomicU64::new(0);

/// Total budget-meter polls since process start (monotonic).
pub fn total_polls() -> u64 {
    POLLS.load(Ordering::Relaxed)
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The fuel (loop-iteration) limit.
    Fuel,
    /// The wall-clock deadline.
    Deadline,
    /// The bytes-allocated ceiling (checked at operand binding).
    Bytes,
    /// The shared cancellation token was set by another party.
    Cancelled,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::Fuel => "fuel",
            Resource::Deadline => "deadline",
            Resource::Bytes => "bytes",
            Resource::Cancelled => "cancelled",
        })
    }
}

/// A typed budget violation. `spent`/`limit` units depend on the
/// resource: steps for fuel, milliseconds for deadlines, bytes for the
/// allocation ceiling, steps-so-far (limit 0) for cancellation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    pub resource: Resource,
    pub spent: u64,
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.resource {
            Resource::Fuel => write!(
                f,
                "fuel exhausted: {} of {} steps used",
                self.spent, self.limit
            ),
            Resource::Deadline => write!(
                f,
                "deadline exceeded: {} ms elapsed (limit {} ms)",
                self.spent, self.limit
            ),
            Resource::Bytes => write!(
                f,
                "allocation ceiling exceeded: {} bytes bound (limit {})",
                self.spent, self.limit
            ),
            Resource::Cancelled => {
                write!(f, "execution cancelled after {} steps", self.spent)
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// A shareable cancellation handle: a thin wrapper over the
/// `Arc<AtomicBool>` the meters poll, with the set/query pair named for
/// intent. Clones share the flag, so a token handed to a serving layer
/// (one per in-flight request) cancels every run metering a [`Budget`]
/// the token was attached to — the disconnect-reaper plumbing
/// `asap-serve` uses to stop work for clients that hung up mid-request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token: every meter polling it traps with
    /// [`Resource::Cancelled`] at its next poll slot.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// The underlying shared flag (for APIs that take the raw `Arc`).
    pub fn as_arc(&self) -> Arc<AtomicBool> {
        self.0.clone()
    }
}

/// Limits for one run. `Clone` shares the cancellation token (when one
/// is installed), so clones handed to peer threads are cancelled
/// together; the numeric limits are independent copies.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    fuel: Option<u64>,
    deadline: Option<Instant>,
    deadline_ms: u64,
    bytes: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// No limits at all — the meter degenerates to a few register ops.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Limit the run to `steps` loop iterations (deterministic).
    pub fn with_fuel(mut self, steps: u64) -> Budget {
        self.fuel = Some(steps);
        self
    }

    /// Set a wall-clock deadline `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Budget {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self.deadline_ms = ms;
        self
    }

    /// Cap the bytes bound into interpreter buffers for one run.
    pub fn with_bytes(mut self, bytes: u64) -> Budget {
        self.bytes = Some(bytes);
        self
    }

    /// Install a fresh cancellation token (replacing any existing one).
    /// Clones made afterwards share it.
    pub fn with_cancellation(mut self) -> Budget {
        self.cancel = Some(Arc::new(AtomicBool::new(false)));
        self
    }

    /// Attach an externally owned cancellation token (e.g. the
    /// simulator's cycle cap, or a token shared across worker threads).
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Attach a shared [`CancelToken`] (the serving layer's per-request
    /// disconnect handle). Equivalent to
    /// `with_cancel_token(token.as_arc())`.
    pub fn with_cancel(self, token: &CancelToken) -> Budget {
        self.with_cancel_token(token.as_arc())
    }

    /// The shared token, when one is installed.
    pub fn cancel_token(&self) -> Option<Arc<AtomicBool>> {
        self.cancel.clone()
    }

    /// Request cancellation: every run metering this budget (or a clone
    /// of it) traps at its next poll. No-op without a token.
    pub fn cancel(&self) {
        if let Some(c) = &self.cancel {
            c.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been set.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// True when no limit of any kind is installed.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none()
            && self.deadline.is_none()
            && self.bytes.is_none()
            && self.cancel.is_none()
    }

    /// The fuel limit, when set.
    pub fn fuel_limit(&self) -> Option<u64> {
        self.fuel
    }

    /// The bytes ceiling, when set.
    pub fn bytes_limit(&self) -> Option<u64> {
        self.bytes
    }

    /// Check `used` bytes against the allocation ceiling. Called by the
    /// pipeline after operand binding (nothing allocates mid-run).
    pub fn check_bytes(&self, used: u64) -> Result<(), BudgetError> {
        match self.bytes {
            Some(limit) if used > limit => Err(BudgetError {
                resource: Resource::Bytes,
                spent: used,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// A fresh per-run meter over this budget's limits.
    pub fn meter(&self) -> BudgetMeter {
        let needs_poll = self.deadline.is_some() || self.cancel.is_some();
        BudgetMeter {
            fuel_left: self.fuel.unwrap_or(u64::MAX),
            fuel_limit: self.fuel.unwrap_or(u64::MAX),
            ticks: 0,
            deadline: self.deadline.map(|d| (d, self.deadline_ms)),
            started: if needs_poll {
                Some(Instant::now())
            } else {
                None
            },
            cancel: self.cancel.clone(),
        }
    }
}

/// Per-run consumption state derived from a [`Budget`]. One meter per
/// engine invocation; both engines charge [`BudgetMeter::tick`] at
/// observationally identical points (loop-head entries), so the tick
/// count — and therefore any fuel trap — is engine-invariant.
#[derive(Debug)]
pub struct BudgetMeter {
    /// Remaining fuel; `u64::MAX` sentinel when unlimited, so the hot
    /// check is one decrement and branch.
    fuel_left: u64,
    fuel_limit: u64,
    ticks: u64,
    deadline: Option<(Instant, u64)>,
    started: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Default for BudgetMeter {
    fn default() -> BudgetMeter {
        BudgetMeter::unlimited()
    }
}

impl BudgetMeter {
    /// Deadline/cancellation poll period, in ticks (a power of two).
    pub const POLL_INTERVAL: u64 = 1024;

    /// A meter with no limits and no poll work — what the unbudgeted
    /// entry points use.
    pub fn unlimited() -> BudgetMeter {
        BudgetMeter {
            fuel_left: u64::MAX,
            fuel_limit: u64::MAX,
            ticks: 0,
            deadline: None,
            started: None,
            cancel: None,
        }
    }

    /// Charge one step (one loop-iteration entry). Errors when fuel runs
    /// out immediately; deadline and cancellation are polled every
    /// [`Self::POLL_INTERVAL`] ticks.
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetError> {
        if self.fuel_left == 0 {
            return Err(BudgetError {
                resource: Resource::Fuel,
                spent: self.fuel_limit,
                limit: self.fuel_limit,
            });
        }
        self.fuel_left -= 1;
        self.ticks += 1;
        if self.ticks & (Self::POLL_INTERVAL - 1) == 0 {
            self.poll()
        } else {
            Ok(())
        }
    }

    /// Charge `n` steps at once — the bulk-metering entry tier-2 kernels
    /// use to enforce fuel at outer-loop granularity. Equivalent to `n`
    /// calls to [`Self::tick`] when `n <= fuel_remaining()`: the caller
    /// must check that first (a fuel shortfall here would trap at the
    /// wrong point relative to per-iteration metering). Deadline and
    /// cancellation are polled once if the bulk charge crosses a
    /// [`Self::POLL_INTERVAL`] boundary.
    #[inline]
    pub fn tick_n(&mut self, n: u64) -> Result<(), BudgetError> {
        if n == 0 {
            return Ok(());
        }
        if self.fuel_left < n {
            return Err(BudgetError {
                resource: Resource::Fuel,
                spent: self.fuel_limit,
                limit: self.fuel_limit,
            });
        }
        self.fuel_left -= n;
        let before = self.ticks;
        self.ticks += n;
        if (before >> Self::POLL_INTERVAL.trailing_zeros())
            != (self.ticks >> Self::POLL_INTERVAL.trailing_zeros())
        {
            self.poll()
        } else {
            Ok(())
        }
    }

    /// Fuel still available (`u64::MAX` when unlimited). Tier-2 kernels
    /// use this to decide between the bulk-metered fast path and the
    /// per-iteration governed path for a row.
    #[inline]
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel_left
    }

    /// Steps charged so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    #[cold]
    fn poll(&self) -> Result<(), BudgetError> {
        POLLS.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Acquire) {
                return Err(BudgetError {
                    resource: Resource::Cancelled,
                    spent: self.ticks,
                    limit: 0,
                });
            }
        }
        if let Some((d, ms)) = self.deadline {
            if Instant::now() >= d {
                let spent = self
                    .started
                    .map(|s| s.elapsed().as_millis() as u64)
                    .unwrap_or(ms);
                return Err(BudgetError {
                    resource: Resource::Deadline,
                    spent,
                    limit: ms,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..100_000 {
            m.tick().unwrap();
        }
        assert_eq!(m.ticks(), 100_000);
    }

    #[test]
    fn fuel_trips_exactly_at_the_limit() {
        let mut m = Budget::unlimited().with_fuel(10).meter();
        for _ in 0..10 {
            m.tick().unwrap();
        }
        let e = m.tick().unwrap_err();
        assert_eq!(
            e,
            BudgetError {
                resource: Resource::Fuel,
                spent: 10,
                limit: 10
            }
        );
        // Still trapped on every further tick (no wraparound).
        assert!(m.tick().is_err());
    }

    #[test]
    fn bulk_ticks_match_single_ticks() {
        let mut a = Budget::unlimited().with_fuel(100).meter();
        let mut b = Budget::unlimited().with_fuel(100).meter();
        for _ in 0..60 {
            a.tick().unwrap();
        }
        assert_eq!(b.fuel_remaining(), 100);
        b.tick_n(60).unwrap();
        assert_eq!(a.ticks(), b.ticks());
        assert_eq!(a.fuel_remaining(), b.fuel_remaining());
        // An over-large bulk charge traps with the same payload a
        // per-iteration trap would carry (spent == limit).
        let e = b.tick_n(41).unwrap_err();
        assert_eq!(
            e,
            BudgetError {
                resource: Resource::Fuel,
                spent: 100,
                limit: 100
            }
        );
        // ...and charges nothing.
        assert_eq!(b.fuel_remaining(), 40);
        b.tick_n(40).unwrap();
        assert_eq!(b.fuel_remaining(), 0);
    }

    #[test]
    fn bulk_ticks_poll_on_interval_crossing() {
        let before = total_polls();
        let mut m = Budget::unlimited().with_cancellation().meter();
        m.tick_n(BudgetMeter::POLL_INTERVAL / 2).unwrap();
        m.tick_n(BudgetMeter::POLL_INTERVAL / 2).unwrap(); // crosses
        assert!(total_polls() > before);
        // A fired token is observed at the next boundary crossing.
        let b = Budget::unlimited().with_cancellation();
        let mut m = b.meter();
        b.cancel();
        let e = m.tick_n(2 * BudgetMeter::POLL_INTERVAL).unwrap_err();
        assert_eq!(e.resource, Resource::Cancelled);
    }

    #[test]
    fn zero_fuel_trips_on_first_tick() {
        let mut m = Budget::unlimited().with_fuel(0).meter();
        let e = m.tick().unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert_eq!((e.spent, e.limit), (0, 0));
    }

    #[test]
    fn expired_deadline_trips_at_the_poll_boundary() {
        let mut m = Budget::unlimited().with_deadline_ms(0).meter();
        let mut trapped = None;
        for i in 1..=2 * BudgetMeter::POLL_INTERVAL {
            if let Err(e) = m.tick() {
                trapped = Some((i, e));
                break;
            }
        }
        let (at, e) = trapped.expect("an already-expired deadline must trap");
        assert_eq!(at, BudgetMeter::POLL_INTERVAL, "polled on the boundary");
        assert_eq!(e.resource, Resource::Deadline);
        assert_eq!(e.limit, 0);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited().with_cancellation();
        let peer = b.clone();
        let mut m = peer.meter();
        m.tick().unwrap();
        b.cancel();
        assert!(peer.is_cancelled());
        let mut trapped = None;
        for _ in 0..2 * BudgetMeter::POLL_INTERVAL {
            if let Err(e) = m.tick() {
                trapped = Some(e);
                break;
            }
        }
        let e = trapped.expect("cancellation must trap within one poll interval");
        assert_eq!(e.resource, Resource::Cancelled);
    }

    #[test]
    fn poll_counter_is_monotonic_across_meters() {
        let before = total_polls();
        let mut m = Budget::unlimited().with_cancellation().meter();
        for _ in 0..3 * BudgetMeter::POLL_INTERVAL {
            m.tick().unwrap();
        }
        // ≥, not ==: other tests poll concurrently.
        assert!(total_polls() >= before + 3);
    }

    #[test]
    fn cancel_token_wrapper_trips_meters_on_attached_budgets() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let budget = Budget::unlimited().with_cancel(&token);
        let mut m = budget.meter();
        m.tick().unwrap();
        // A clone of the token fires the shared flag.
        let peer = token.clone();
        peer.cancel();
        assert!(token.is_cancelled());
        assert!(budget.is_cancelled());
        let mut trapped = None;
        for _ in 0..2 * BudgetMeter::POLL_INTERVAL {
            if let Err(e) = m.tick() {
                trapped = Some(e);
                break;
            }
        }
        let e = trapped.expect("fired token must trap within one poll interval");
        assert_eq!(e.resource, Resource::Cancelled);
    }

    #[test]
    fn bytes_ceiling_is_checked_eagerly() {
        let b = Budget::unlimited().with_bytes(1000);
        assert!(b.check_bytes(1000).is_ok());
        let e = b.check_bytes(1001).unwrap_err();
        assert_eq!(e.resource, Resource::Bytes);
        assert_eq!((e.spent, e.limit), (1001, 1000));
        assert!(Budget::unlimited().check_bytes(u64::MAX).is_ok());
    }

    #[test]
    fn errors_display_their_units() {
        let fuel = BudgetError {
            resource: Resource::Fuel,
            spent: 5,
            limit: 5,
        };
        assert_eq!(fuel.to_string(), "fuel exhausted: 5 of 5 steps used");
        let dl = BudgetError {
            resource: Resource::Deadline,
            spent: 12,
            limit: 10,
        };
        assert!(dl.to_string().contains("deadline exceeded"));
    }
}
