//! Types and literal values for the IR.
//!
//! The type system mirrors the subset of MLIR types that the sparse tensor
//! dialect's sparsification output uses: `index`, fixed-width integers,
//! `f64`, `i1`, and dynamically-sized 1-D memrefs (`memref<?xT>`).

use std::fmt;

/// An IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Platform-sized index type (lowered to 64-bit here).
    Index,
    /// 64-bit signless integer.
    I64,
    /// 32-bit signless integer (used for narrow coordinate buffers).
    I32,
    /// 8-bit signless integer (used for binary-matrix values).
    I8,
    /// 1-bit boolean.
    I1,
    /// 64-bit IEEE float.
    F64,
    /// Dynamically-sized 1-D buffer of the element type (`memref<?xT>`).
    MemRef(Box<Type>),
}

impl Type {
    /// Convenience constructor for `memref<?xT>`.
    pub fn memref(elem: Type) -> Type {
        Type::MemRef(Box::new(elem))
    }

    /// Element type of a memref type; `None` for scalar types.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::MemRef(e) => Some(e),
            _ => None,
        }
    }

    /// Whether this is an integer-like scalar (including `index` and `i1`).
    pub fn is_int_like(&self) -> bool {
        matches!(
            self,
            Type::Index | Type::I64 | Type::I32 | Type::I8 | Type::I1
        )
    }

    /// Whether this is a float scalar.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F64)
    }

    /// Size in bytes of a scalar of this type as stored in a buffer.
    ///
    /// `index` is stored as 8 bytes; `i1` as 1 byte. Panics on memref types,
    /// which have no fixed element size of their own.
    pub fn byte_width(&self) -> u8 {
        match self {
            Type::Index | Type::I64 | Type::F64 => 8,
            Type::I32 => 4,
            Type::I8 | Type::I1 => 1,
            Type::MemRef(_) => panic!("memref has no scalar byte width"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Index => write!(f, "index"),
            Type::I64 => write!(f, "i64"),
            Type::I32 => write!(f, "i32"),
            Type::I8 => write!(f, "i8"),
            Type::I1 => write!(f, "i1"),
            Type::F64 => write!(f, "f64"),
            Type::MemRef(e) => write!(f, "memref<?x{e}>"),
        }
    }
}

/// A compile-time literal, the payload of a constant op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    Index(usize),
    I64(i64),
    I32(i32),
    I8(i8),
    Bool(bool),
    F64(f64),
}

impl Literal {
    /// The type of this literal.
    pub fn ty(&self) -> Type {
        match self {
            Literal::Index(_) => Type::Index,
            Literal::I64(_) => Type::I64,
            Literal::I32(_) => Type::I32,
            Literal::I8(_) => Type::I8,
            Literal::Bool(_) => Type::I1,
            Literal::F64(_) => Type::F64,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Index(v) => write!(f, "{v}"),
            Literal::I64(v) => write!(f, "{v}"),
            Literal::I32(v) => write!(f, "{v}"),
            Literal::I8(v) => write!(f, "{v}"),
            Literal::Bool(v) => write!(f, "{v}"),
            Literal::F64(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_elem_roundtrip() {
        let t = Type::memref(Type::F64);
        assert_eq!(t.elem(), Some(&Type::F64));
        assert_eq!(Type::Index.elem(), None);
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Type::Index.byte_width(), 8);
        assert_eq!(Type::F64.byte_width(), 8);
        assert_eq!(Type::I64.byte_width(), 8);
        assert_eq!(Type::I32.byte_width(), 4);
        assert_eq!(Type::I8.byte_width(), 1);
        assert_eq!(Type::I1.byte_width(), 1);
    }

    #[test]
    #[should_panic(expected = "memref has no scalar byte width")]
    fn memref_byte_width_panics() {
        let _ = Type::memref(Type::F64).byte_width();
    }

    #[test]
    fn literal_types() {
        assert_eq!(Literal::Index(3).ty(), Type::Index);
        assert_eq!(Literal::F64(1.5).ty(), Type::F64);
        assert_eq!(Literal::Bool(true).ty(), Type::I1);
        assert_eq!(Literal::I32(-1).ty(), Type::I32);
        assert_eq!(Literal::I8(7).ty(), Type::I8);
        assert_eq!(Literal::I64(9).ty(), Type::I64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::memref(Type::I32).to_string(), "memref<?xi32>");
        assert_eq!(Literal::F64(2.0).to_string(), "2.0");
        assert_eq!(Literal::Index(5).to_string(), "5");
    }

    #[test]
    fn int_float_classification() {
        assert!(Type::Index.is_int_like());
        assert!(Type::I1.is_int_like());
        assert!(!Type::F64.is_int_like());
        assert!(Type::F64.is_float());
        assert!(!Type::memref(Type::F64).is_int_like());
    }
}
