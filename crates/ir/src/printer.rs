//! Textual printer producing MLIR-flavoured output.
//!
//! Used for golden tests (the codegen shapes of the paper's Figures 3, 5
//! and 9) and for debugging. There is deliberately no parser: the IR is
//! always constructed programmatically.

use crate::ops::{Function, Op, OpKind, Region, Value};
use std::fmt::Write;

/// Render a function as MLIR-flavoured text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let mut p = Printer {
        f,
        out: &mut out,
        indent: 0,
    };
    p.function();
    out
}

struct Printer<'a> {
    f: &'a Function,
    out: &'a mut String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn function(&mut self) {
        let params: Vec<String> = self
            .f
            .params
            .iter()
            .map(|&v| format!("{v}: {}", self.f.ty(v)))
            .collect();
        let _ = writeln!(self.out, "func @{}({}) {{", self.f.name, params.join(", "));
        self.indent += 1;
        self.region(&self.f.body);
        self.indent -= 1;
        let _ = writeln!(self.out, "}}");
    }

    fn region(&mut self, r: &Region) {
        for op in &r.ops {
            self.op(op);
        }
    }

    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn results_prefix(&self, op: &Op) -> String {
        if op.results.is_empty() {
            String::new()
        } else {
            let rs: Vec<String> = op.results.iter().map(|v| v.to_string()).collect();
            format!("{} = ", rs.join(", "))
        }
    }

    fn vals(vs: &[Value]) -> String {
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn op(&mut self, op: &Op) {
        self.line_start();
        let pre = self.results_prefix(op);
        match &op.kind {
            OpKind::Const(lit) => {
                let _ = writeln!(self.out, "{pre}arith.constant {lit} : {}", lit.ty());
            }
            OpKind::Binary { op: b, lhs, rhs } => {
                let ty = self.f.ty(*lhs);
                let _ = writeln!(self.out, "{pre}{} {lhs}, {rhs} : {ty}", b.mnemonic());
            }
            OpKind::Cmp { pred, lhs, rhs } => {
                let ty = self.f.ty(*lhs);
                let _ = writeln!(
                    self.out,
                    "{pre}arith.cmpi {}, {lhs}, {rhs} : {ty}",
                    pred.mnemonic()
                );
            }
            OpKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                let ty = self.f.ty(*if_true);
                let _ = writeln!(
                    self.out,
                    "{pre}arith.select {cond}, {if_true}, {if_false} : {ty}"
                );
            }
            OpKind::Cast { value, to } => {
                let from = self.f.ty(*value);
                let _ = writeln!(self.out, "{pre}arith.index_cast {value} : {from} to {to}");
            }
            OpKind::Load { mem, index } => {
                let ty = self.f.ty(*mem);
                let _ = writeln!(self.out, "{pre}memref.load {mem}[{index}] : {ty}");
            }
            OpKind::Store { mem, index, value } => {
                let ty = self.f.ty(*mem);
                let _ = writeln!(self.out, "memref.store {value}, {mem}[{index}] : {ty}");
            }
            OpKind::Prefetch {
                mem,
                index,
                write,
                locality,
            } => {
                let rw = if *write { "write" } else { "read" };
                let _ = writeln!(
                    self.out,
                    "memref.prefetch {mem}[{index}], {rw}, locality<{locality}>, data"
                );
            }
            OpKind::Dim { mem } => {
                let ty = self.f.ty(*mem);
                let _ = writeln!(self.out, "{pre}memref.dim {mem} : {ty}");
            }
            OpKind::For {
                lo,
                hi,
                step,
                iv,
                iter_args,
                inits,
                body,
            } => {
                let mut head = format!("{pre}scf.for {iv} = {lo} to {hi} step {step}");
                if !iter_args.is_empty() {
                    let pairs: Vec<String> = iter_args
                        .iter()
                        .zip(inits)
                        .map(|(a, i)| format!("{a} = {i}"))
                        .collect();
                    let _ = write!(head, " iter_args({})", pairs.join(", "));
                }
                let _ = writeln!(self.out, "{head} {{");
                self.indent += 1;
                self.region(body);
                self.indent -= 1;
                self.line_start();
                let _ = writeln!(self.out, "}}");
            }
            OpKind::While {
                inits,
                before_args,
                before,
                after_args,
                after,
            } => {
                let pairs: Vec<String> = before_args
                    .iter()
                    .zip(inits)
                    .map(|(a, i)| format!("{a} = {i}"))
                    .collect();
                let _ = writeln!(self.out, "{pre}scf.while ({}) {{", pairs.join(", "));
                self.indent += 1;
                self.region(before);
                self.indent -= 1;
                self.line_start();
                let _ = writeln!(self.out, "}} do ({}) {{", Self::vals(after_args));
                self.indent += 1;
                self.region(after);
                self.indent -= 1;
                self.line_start();
                let _ = writeln!(self.out, "}}");
            }
            OpKind::If {
                cond,
                then_region,
                else_region,
            } => {
                let _ = writeln!(self.out, "{pre}scf.if {cond} {{");
                self.indent += 1;
                self.region(then_region);
                self.indent -= 1;
                self.line_start();
                let _ = writeln!(self.out, "}} else {{");
                self.indent += 1;
                self.region(else_region);
                self.indent -= 1;
                self.line_start();
                let _ = writeln!(self.out, "}}");
            }
            OpKind::Yield(vs) => {
                let _ = writeln!(self.out, "scf.yield {}", Self::vals(vs));
            }
            OpKind::ConditionOp { cond, args } => {
                let _ = writeln!(self.out, "scf.condition({cond}) {}", Self::vals(args));
            }
            OpKind::Return(vs) => {
                let _ = writeln!(self.out, "func.return {}", Self::vals(vs));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ops::CmpPred;
    use crate::types::Type;

    #[test]
    fn prints_loop_nest() {
        let mut b = FuncBuilder::new("t");
        let x = b.arg(Type::memref(Type::F64));
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, i, _| {
            let v = b.load(x, i);
            b.store(v, x, i);
            vec![]
        });
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("func @t(%0: memref<?xf64>, %1: index)"));
        assert!(text.contains("scf.for %4 = %2 to %1 step %3 {"));
        assert!(text.contains("memref.load %0[%4]"));
        assert!(text.contains("memref.store %5, %0[%4]"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn prints_prefetch_with_locality() {
        let mut b = FuncBuilder::new("p");
        let x = b.arg(Type::memref(Type::F64));
        let c0 = b.const_index(0);
        b.prefetch_read(x, c0, 2);
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("memref.prefetch %0[%1], read, locality<2>, data"));
    }

    #[test]
    fn prints_while_and_condition() {
        let mut b = FuncBuilder::new("w");
        let n = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.while_loop(
            &[c0],
            |b, args| (b.cmpi(CmpPred::Ult, args[0], n), vec![args[0]]),
            |b, args| vec![b.addi(args[0], c1)],
        );
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("scf.while"));
        assert!(text.contains("scf.condition"));
        assert!(text.contains("} do ("));
    }

    #[test]
    fn prints_if_with_results() {
        let mut b = FuncBuilder::new("i");
        let x = b.arg(Type::Index);
        let c0 = b.const_index(0);
        let cond = b.cmpi(CmpPred::Ugt, x, c0);
        b.if_else(cond, &[Type::Index], |_| vec![x], |_| vec![c0]);
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("scf.if"));
        assert!(text.contains("} else {"));
    }
}
