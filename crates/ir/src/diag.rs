//! Workspace-wide typed diagnostics.
//!
//! Every fallible stage of the pipeline — MatrixMarket parsing, kernel
//! specification, sparsification codegen, tensor storage construction,
//! post-pass IR verification, operand binding, and interpretation —
//! reports an [`AsapError`] instead of panicking or returning a bare
//! `String`. Each variant is one stage, so callers can match on *where*
//! a failure happened (e.g. the bench sweep reports parse errors per
//! matrix, and `asap-core`'s graceful-degradation path falls back to the
//! baseline kernel only on codegen/verify failures).
//!
//! The error carries location data where the stage has any: parse errors
//! carry a 1-based line number, interpreter traps carry the static op id
//! of the faulting op (see [`InterpError::At`](crate::interp::InterpError)).

use crate::budget::{BudgetError, Resource};
use crate::interp::InterpError;
use crate::ops::OpId;
use crate::verify::VerifyError;
use std::fmt;

/// A typed pipeline error: which stage failed, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum AsapError {
    /// Input text could not be parsed. `line` is 1-based.
    Parse { line: usize, message: String },
    /// The kernel specification is self-inconsistent.
    Spec { message: String },
    /// Sparsification / code generation rejected the (spec, format,
    /// width) combination.
    Codegen { message: String },
    /// The generated or transformed IR failed verification.
    Verify { message: String },
    /// Tensor storage construction or invariant checking failed.
    Storage { message: String },
    /// Runtime operands do not match the compiled kernel (wrong arity,
    /// shape, or value kind).
    Binding { message: String },
    /// The interpreter trapped (out-of-bounds demand access, type
    /// mismatch, division by zero, ...). Carries the faulting op id when
    /// known.
    Interp { error: InterpError },
    /// A differential oracle found diverging results.
    Mismatch { message: String },
    /// An OS-level I/O failure (file system, not format).
    Io { message: String },
    /// Malformed JSON input (the serving layer's request bodies, the
    /// checkpoint journal's resume path). Carries a byte offset into the
    /// rejected text when the parser knows one.
    Json { offset: usize, message: String },
    /// A resource budget (fuel, wall-clock deadline, allocation ceiling,
    /// or cancellation) was exceeded. `loc` is the governing loop op when
    /// the trap fired inside a run; `None` for binding-time ceilings.
    /// This is governance, not failure: a budget trap is the expected,
    /// typed outcome of running hostile input under limits.
    BudgetExceeded {
        resource: Resource,
        spent: u64,
        limit: u64,
        loc: Option<OpId>,
    },
}

impl AsapError {
    pub fn parse(line: usize, message: impl Into<String>) -> AsapError {
        AsapError::Parse {
            line,
            message: message.into(),
        }
    }

    pub fn spec(message: impl Into<String>) -> AsapError {
        AsapError::Spec {
            message: message.into(),
        }
    }

    pub fn codegen(message: impl Into<String>) -> AsapError {
        AsapError::Codegen {
            message: message.into(),
        }
    }

    pub fn verify(message: impl Into<String>) -> AsapError {
        AsapError::Verify {
            message: message.into(),
        }
    }

    pub fn storage(message: impl Into<String>) -> AsapError {
        AsapError::Storage {
            message: message.into(),
        }
    }

    pub fn binding(message: impl Into<String>) -> AsapError {
        AsapError::Binding {
            message: message.into(),
        }
    }

    pub fn mismatch(message: impl Into<String>) -> AsapError {
        AsapError::Mismatch {
            message: message.into(),
        }
    }

    pub fn io(message: impl Into<String>) -> AsapError {
        AsapError::Io {
            message: message.into(),
        }
    }

    pub fn json(offset: usize, message: impl Into<String>) -> AsapError {
        AsapError::Json {
            offset,
            message: message.into(),
        }
    }

    pub fn budget(e: BudgetError, loc: Option<OpId>) -> AsapError {
        AsapError::BudgetExceeded {
            resource: e.resource,
            spent: e.spent,
            limit: e.limit,
            loc,
        }
    }

    /// The violation as a [`BudgetError`], when this is a budget trap.
    /// The chaos-mode fuzz oracle uses this to assert every strategy
    /// degrades to the same `(resource, spent, limit)` triple.
    pub fn budget_violation(&self) -> Option<BudgetError> {
        match self {
            AsapError::BudgetExceeded {
                resource,
                spent,
                limit,
                ..
            } => Some(BudgetError {
                resource: *resource,
                spent: *spent,
                limit: *limit,
            }),
            _ => None,
        }
    }

    /// Short stable kind tag, for reports and skip summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            AsapError::Parse { .. } => "parse",
            AsapError::Spec { .. } => "spec",
            AsapError::Codegen { .. } => "codegen",
            AsapError::Verify { .. } => "verify",
            AsapError::Storage { .. } => "storage",
            AsapError::Binding { .. } => "binding",
            AsapError::Interp { .. } => "interp",
            AsapError::Mismatch { .. } => "mismatch",
            AsapError::Io { .. } => "io",
            AsapError::Json { .. } => "json",
            AsapError::BudgetExceeded { .. } => "budget",
        }
    }
}

impl fmt::Display for AsapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsapError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            AsapError::Spec { message } => write!(f, "invalid kernel spec: {message}"),
            AsapError::Codegen { message } => write!(f, "codegen error: {message}"),
            AsapError::Verify { message } => write!(f, "IR verification error: {message}"),
            AsapError::Storage { message } => write!(f, "storage error: {message}"),
            AsapError::Binding { message } => write!(f, "operand binding error: {message}"),
            AsapError::Interp { error } => write!(f, "interpreter trap: {error}"),
            AsapError::Mismatch { message } => write!(f, "result mismatch: {message}"),
            AsapError::Io { message } => write!(f, "io error: {message}"),
            AsapError::Json { offset, message } => {
                write!(f, "json error at byte {offset}: {message}")
            }
            AsapError::BudgetExceeded {
                resource,
                spent,
                limit,
                loc,
            } => {
                let b = BudgetError {
                    resource: *resource,
                    spent: *spent,
                    limit: *limit,
                };
                match loc {
                    Some(op) => write!(f, "budget exceeded at {op}: {b}"),
                    None => write!(f, "budget exceeded: {b}"),
                }
            }
        }
    }
}

impl std::error::Error for AsapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsapError::Interp { error } => Some(error),
            _ => None,
        }
    }
}

impl From<InterpError> for AsapError {
    fn from(error: InterpError) -> AsapError {
        // Budget traps surface as the dedicated variant so callers (the
        // bench harness, chaos fuzzing, CI smoke) can distinguish
        // governed termination from genuine interpreter faults.
        if let InterpError::Budget(b) = error.root() {
            return AsapError::budget(b.clone(), error.op());
        }
        AsapError::Interp { error }
    }
}

impl From<BudgetError> for AsapError {
    fn from(e: BudgetError) -> AsapError {
        AsapError::budget(e, None)
    }
}

impl From<VerifyError> for AsapError {
    fn from(e: VerifyError) -> AsapError {
        AsapError::Verify { message: e.0 }
    }
}

impl From<std::io::Error> for AsapError {
    fn from(e: std::io::Error) -> AsapError {
        AsapError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_location() {
        let e = AsapError::parse(17, "bad size line");
        assert_eq!(e.to_string(), "parse error at line 17: bad size line");
        assert_eq!(e.kind(), "parse");

        let e: AsapError = InterpError::OutOfBounds { index: 9, len: 4 }.into();
        assert!(e.to_string().contains("index 9 out of bounds"));
        assert_eq!(e.kind(), "interp");
    }

    #[test]
    fn json_error_carries_offset_and_kind() {
        let e = AsapError::json(12, "expected ':' after object key");
        assert_eq!(e.kind(), "json");
        assert_eq!(
            e.to_string(),
            "json error at byte 12: expected ':' after object key"
        );
    }

    #[test]
    fn verify_error_converts() {
        let e: AsapError = VerifyError("op3: operand %5 used before definition".into()).into();
        assert_eq!(e.kind(), "verify");
        assert!(e.to_string().contains("op3"));
    }

    #[test]
    fn interp_source_is_chained() {
        use std::error::Error;
        let e: AsapError = InterpError::DivisionByZero.into();
        assert!(e.source().is_some());
    }
}
