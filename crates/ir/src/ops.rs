//! Operations, regions and functions.
//!
//! The IR is a tree: a [`Function`] owns a body [`Region`]; structured
//! control-flow ops (`scf.for`, `scf.while`, `scf.if`) own nested regions.
//! Values are function-scoped SSA ids; ops that define region-local block
//! arguments (loop induction variables, iteration arguments) allocate them
//! from the same id space.

use crate::types::{Literal, Type};
use std::fmt;

/// An SSA value id, scoped to one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

impl Value {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A static op id: unique per op *instance* in a function. The interpreter
/// reports it as the "program counter" of memory accesses so PC-indexed
/// hardware prefetchers (e.g. the L1 IPP) can be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Integer and float binary arithmetic ops (`arith` dialect subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    AddI,
    SubI,
    MulI,
    DivUI,
    RemUI,
    MinUI,
    MaxUI,
    AndI,
    OrI,
    XorI,
    AddF,
    SubF,
    MulF,
    DivF,
}

impl BinOp {
    /// Whether the op operates on (and produces) float values.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::AddF | BinOp::SubF | BinOp::MulF | BinOp::DivF)
    }

    /// MLIR-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::AddI => "arith.addi",
            BinOp::SubI => "arith.subi",
            BinOp::MulI => "arith.muli",
            BinOp::DivUI => "arith.divui",
            BinOp::RemUI => "arith.remui",
            BinOp::MinUI => "arith.minui",
            BinOp::MaxUI => "arith.maxui",
            BinOp::AndI => "arith.andi",
            BinOp::OrI => "arith.ori",
            BinOp::XorI => "arith.xori",
            BinOp::AddF => "arith.addf",
            BinOp::SubF => "arith.subf",
            BinOp::MulF => "arith.mulf",
            BinOp::DivF => "arith.divf",
        }
    }
}

/// Integer comparison predicates (unsigned and signed subsets we need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl CmpPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
        }
    }
}

/// A straight-line list of ops (a single-block region, as produced by the
/// sparsifier's structured control flow).
#[derive(Debug, Clone, Default)]
pub struct Region {
    pub ops: Vec<Op>,
}

impl Region {
    pub fn new() -> Region {
        Region { ops: Vec::new() }
    }

    /// Walk every op in this region and nested regions, depth-first,
    /// pre-order.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Op)) {
        for op in &self.ops {
            f(op);
            for r in op.kind.regions() {
                r.walk(f);
            }
        }
    }

    /// Total number of ops in this region including nested regions.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

/// One operation: a kind plus the values it defines as results.
#[derive(Debug, Clone)]
pub struct Op {
    pub id: OpId,
    pub kind: OpKind,
    pub results: Vec<Value>,
}

/// The different operations, mirroring MLIR's `arith`/`memref`/`scf` subset
/// that sparsification emits.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// `arith.constant`.
    Const(Literal),
    /// Binary arithmetic.
    Binary { op: BinOp, lhs: Value, rhs: Value },
    /// `arith.cmpi`.
    Cmp {
        pred: CmpPred,
        lhs: Value,
        rhs: Value,
    },
    /// `arith.select`.
    Select {
        cond: Value,
        if_true: Value,
        if_false: Value,
    },
    /// `arith.index_cast` / `arith.extui` / `arith.trunci` (value-preserving
    /// conversion between integer-like scalar types).
    Cast { value: Value, to: Type },
    /// `memref.load %mem[%index]`.
    Load { mem: Value, index: Value },
    /// `memref.store %value, %mem[%index]`.
    Store {
        mem: Value,
        index: Value,
        value: Value,
    },
    /// `memref.prefetch %mem[%index], read|write, locality<l>, data`.
    ///
    /// Never faults: the index may point past the end of the buffer, in
    /// which case the access still produces an address (the line after the
    /// buffer) exactly like a hardware prefetch instruction would.
    Prefetch {
        mem: Value,
        index: Value,
        write: bool,
        locality: u8,
    },
    /// `memref.dim %mem` — runtime length of the buffer. Provided for
    /// completeness/testing; ASaP itself derives bounds from position
    /// buffers because allocation sites are not visible to the pass.
    Dim { mem: Value },
    /// `scf.for %iv = %lo to %hi step %step iter_args(...)`.
    For {
        lo: Value,
        hi: Value,
        step: Value,
        /// Block argument: induction variable.
        iv: Value,
        /// Block arguments: loop-carried values.
        iter_args: Vec<Value>,
        /// Initial values for `iter_args` (defined outside).
        inits: Vec<Value>,
        body: Region,
    },
    /// `scf.while`: `before` computes the condition (terminated by
    /// [`OpKind::ConditionOp`]); `after` is the loop body (terminated by
    /// [`OpKind::Yield`]).
    While {
        inits: Vec<Value>,
        before_args: Vec<Value>,
        before: Region,
        after_args: Vec<Value>,
        after: Region,
    },
    /// `scf.if` with optional results (both regions yield the same arity).
    If {
        cond: Value,
        then_region: Region,
        else_region: Region,
    },
    /// `scf.yield` — terminator of for/if/while-after regions.
    Yield(Vec<Value>),
    /// `scf.condition` — terminator of while-before regions; forwards
    /// `args` to the after-region / results when `cond` is true.
    ConditionOp { cond: Value, args: Vec<Value> },
    /// `func.return`.
    Return(Vec<Value>),
}

impl OpKind {
    /// Nested regions of this op, if any.
    pub fn regions(&self) -> Vec<&Region> {
        match self {
            OpKind::For { body, .. } => vec![body],
            OpKind::While { before, after, .. } => vec![before, after],
            OpKind::If {
                then_region,
                else_region,
                ..
            } => vec![then_region, else_region],
            _ => vec![],
        }
    }

    /// Mutable nested regions.
    pub fn regions_mut(&mut self) -> Vec<&mut Region> {
        match self {
            OpKind::For { body, .. } => vec![body],
            OpKind::While { before, after, .. } => vec![before, after],
            OpKind::If {
                then_region,
                else_region,
                ..
            } => vec![then_region, else_region],
            _ => vec![],
        }
    }

    /// Values this op reads (not including values read inside nested
    /// regions).
    pub fn operands(&self) -> Vec<Value> {
        match self {
            OpKind::Const(_) => vec![],
            OpKind::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            OpKind::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            OpKind::Select {
                cond,
                if_true,
                if_false,
            } => vec![*cond, *if_true, *if_false],
            OpKind::Cast { value, .. } => vec![*value],
            OpKind::Load { mem, index } => vec![*mem, *index],
            OpKind::Store { mem, index, value } => vec![*mem, *index, *value],
            OpKind::Prefetch { mem, index, .. } => vec![*mem, *index],
            OpKind::Dim { mem } => vec![*mem],
            OpKind::For {
                lo,
                hi,
                step,
                inits,
                ..
            } => {
                let mut v = vec![*lo, *hi, *step];
                v.extend_from_slice(inits);
                v
            }
            OpKind::While { inits, .. } => inits.clone(),
            OpKind::If { cond, .. } => vec![*cond],
            OpKind::Yield(vs) => vs.clone(),
            OpKind::ConditionOp { cond, args } => {
                let mut v = vec![*cond];
                v.extend_from_slice(args);
                v
            }
            OpKind::Return(vs) => vs.clone(),
        }
    }

    /// Replace every operand occurrence of `from` with `to` (shallow: does
    /// not descend into nested regions).
    pub fn replace_operand(&mut self, from: Value, to: Value) {
        let r = |v: &mut Value| {
            if *v == from {
                *v = to;
            }
        };
        match self {
            OpKind::Const(_) => {}
            OpKind::Binary { lhs, rhs, .. } | OpKind::Cmp { lhs, rhs, .. } => {
                r(lhs);
                r(rhs);
            }
            OpKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                r(cond);
                r(if_true);
                r(if_false);
            }
            OpKind::Cast { value, .. } => r(value),
            OpKind::Load { mem, index } => {
                r(mem);
                r(index);
            }
            OpKind::Store { mem, index, value } => {
                r(mem);
                r(index);
                r(value);
            }
            OpKind::Prefetch { mem, index, .. } => {
                r(mem);
                r(index);
            }
            OpKind::Dim { mem } => r(mem),
            OpKind::For {
                lo,
                hi,
                step,
                inits,
                ..
            } => {
                r(lo);
                r(hi);
                r(step);
                inits.iter_mut().for_each(r);
            }
            OpKind::While { inits, .. } => inits.iter_mut().for_each(r),
            OpKind::If { cond, .. } => r(cond),
            OpKind::Yield(vs) | OpKind::Return(vs) => vs.iter_mut().for_each(r),
            OpKind::ConditionOp { cond, args } => {
                r(cond);
                args.iter_mut().for_each(r);
            }
        }
    }

    /// Whether the op has side effects on memory (and therefore must not be
    /// removed or reordered freely).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            OpKind::Store { .. }
                | OpKind::Prefetch { .. }
                | OpKind::Yield(_)
                | OpKind::ConditionOp { .. }
                | OpKind::Return(_)
        ) || !self.regions().is_empty()
    }

    /// Whether this is a region terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            OpKind::Yield(_) | OpKind::ConditionOp { .. } | OpKind::Return(_)
        )
    }
}

/// A function: typed parameters plus a body region ending in `Return`.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Parameter values, in order. Their types live in `value_types`.
    pub params: Vec<Value>,
    pub body: Region,
    /// Type of every value, indexed by `Value::index()`.
    pub value_types: Vec<Type>,
    /// Number of distinct static ops allocated (for fresh `OpId`s).
    pub num_ops: u32,
}

impl Function {
    /// Type of a value.
    pub fn ty(&self, v: Value) -> &Type {
        &self.value_types[v.index()]
    }

    /// Number of SSA values allocated.
    pub fn num_values(&self) -> u32 {
        self.value_types.len() as u32
    }

    /// Allocate a fresh value of the given type (used by transforms that
    /// create ops).
    pub fn fresh_value(&mut self, ty: Type) -> Value {
        let v = Value(self.value_types.len() as u32);
        self.value_types.push(ty);
        v
    }

    /// Allocate a fresh static op id.
    pub fn fresh_op_id(&mut self) -> OpId {
        let id = OpId(self.num_ops);
        self.num_ops += 1;
        id
    }

    /// Walk all ops in the function.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Op)) {
        self.body.walk(f);
    }

    /// Count ops of the whole function.
    pub fn op_count(&self) -> usize {
        self.body.op_count()
    }

    /// Count prefetch ops — handy for tests asserting a pass's effect.
    pub fn prefetch_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |op| {
            if matches!(op.kind, OpKind::Prefetch { .. }) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_op(id: u32, kind: OpKind) -> Op {
        Op {
            id: OpId(id),
            kind,
            results: vec![],
        }
    }

    #[test]
    fn operands_and_replace() {
        let mut k = OpKind::Binary {
            op: BinOp::AddI,
            lhs: Value(1),
            rhs: Value(2),
        };
        assert_eq!(k.operands(), vec![Value(1), Value(2)]);
        k.replace_operand(Value(2), Value(9));
        assert_eq!(k.operands(), vec![Value(1), Value(9)]);
    }

    #[test]
    fn store_has_side_effects_load_does_not() {
        let st = OpKind::Store {
            mem: Value(0),
            index: Value(1),
            value: Value(2),
        };
        let ld = OpKind::Load {
            mem: Value(0),
            index: Value(1),
        };
        assert!(st.has_side_effects());
        assert!(!ld.has_side_effects());
    }

    #[test]
    fn walk_descends_into_regions() {
        let inner = Region {
            ops: vec![dummy_op(2, OpKind::Yield(vec![]))],
        };
        let for_op = dummy_op(
            1,
            OpKind::For {
                lo: Value(0),
                hi: Value(1),
                step: Value(2),
                iv: Value(3),
                iter_args: vec![],
                inits: vec![],
                body: inner,
            },
        );
        let region = Region { ops: vec![for_op] };
        let mut seen = vec![];
        region.walk(&mut |op| seen.push(op.id.0));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(region.op_count(), 2);
    }

    #[test]
    fn for_operands_include_bounds_and_inits() {
        let k = OpKind::For {
            lo: Value(0),
            hi: Value(1),
            step: Value(2),
            iv: Value(3),
            iter_args: vec![Value(4)],
            inits: vec![Value(5)],
            body: Region::new(),
        };
        assert_eq!(k.operands(), vec![Value(0), Value(1), Value(2), Value(5)]);
    }

    #[test]
    fn terminators() {
        assert!(OpKind::Yield(vec![]).is_terminator());
        assert!(OpKind::Return(vec![]).is_terminator());
        assert!(OpKind::ConditionOp {
            cond: Value(0),
            args: vec![]
        }
        .is_terminator());
        assert!(!OpKind::Const(Literal::Index(0)).is_terminator());
    }

    #[test]
    fn binop_classification_and_mnemonics() {
        assert!(BinOp::AddF.is_float());
        assert!(!BinOp::AddI.is_float());
        assert_eq!(BinOp::MulF.mnemonic(), "arith.mulf");
        assert_eq!(CmpPred::Ult.mnemonic(), "ult");
    }
}
