//! Tier-2 execution: runtime-specialized native kernels.
//!
//! The third execution tier, above the tree-walker (reference) and the
//! register-bytecode VM. At compile time, [`Tier2Plan::from_program`]
//! inspects a lowered [`Program`] for the exact instruction skeleton the
//! sparsifier + LICM/fold/CSE/DCE + lowerer pipeline emits for ASaP CSR
//! SpMV (the [`crate::bytecode::SpmvLoop`] superinstruction) and for the three-deep ASaP
//! CSR SpMM loop nest. On a match it extracts a *plan*: buffer/argument
//! positions, the ASaP-chosen prefetch distances (resolved from the
//! constant pool), and every op location a trap could be attributed to.
//! At run time the plan dispatches through a generic-template table —
//! one monomorphized Rust loop per (pos index type × crd index type)
//! pair — so the hot loop is direct typed-slice arithmetic with explicit
//! hardware prefetch hints at the baked-in distances and zero
//! per-iteration dispatch.
//!
//! # Observational contract (and the one documented exemption)
//!
//! Tier-2 is bit-exact and error-exact with the other engines:
//!
//! - **outputs** are bit-identical (float accumulation replays the
//!   lowered operand order, including `acc_is_rhs`);
//! - **typed errors** are identical: out-of-bounds traps carry the same
//!   index, length, and op location as the VM, and fuel traps the same
//!   `spent == limit` payload at the same loop op;
//! - **the demand/prefetch event stream is exempt by design**: a native
//!   kernel has no [`crate::MemoryModel`] hook — its memory traffic is
//!   real, not simulated. Callers that need the event stream (the
//!   simulator, trace capture) must use the VM or the tree-walker; the
//!   pipeline's `Auto` engine does exactly that.
//!
//! # Budget enforcement at outer-loop granularity
//!
//! Fuel is metered per *row*: on row entry the plan charges the outer
//! iteration, then bulk-charges the row's inner-iteration count via
//! [`crate::BudgetMeter::tick_n`] **only when the remaining fuel covers it** —
//! in that case no fuel trap can occur mid-row and the hot loop runs
//! unmetered. Otherwise the row runs on a governed per-iteration path
//! that replays the VM's exact trap order (bounds checks before fuel at
//! the same points), so a fuel trap surfaces at the identical iteration
//! and op location as the VM's. Deadline/cancellation polls ride the
//! same tick stream (timing-dependent, excluded from the oracles).

use crate::budget::Budget;
use crate::bytecode::{Instr, Program};
use crate::interp::{BufferData, Buffers, InterpError, V};
use crate::ops::{BinOp, CmpPred, OpId};
use std::collections::HashMap;

/// A runtime specialization extracted from a lowered [`Program`].
/// `None` from [`Tier2Plan::from_program`] means "shape not recognized —
/// run the VM"; it is never an error.
#[derive(Debug, Clone, PartialEq)]
pub enum Tier2Plan {
    /// ASaP CSR SpMV: `y[i] += Σ vals[j]·x[crd[j]]` with the two
    /// software-prefetch streams.
    Spmv(SpmvPlan),
    /// ASaP CSR SpMM: `Out[i,k] += Σ vals[j]·C[crd[j],k]` with the
    /// outer-loop prefetch streams.
    Spmm(SpmmPlan),
}

impl Tier2Plan {
    /// Recognize a lowered program. Purely structural: every slot, mem
    /// binding, and constant is checked against the exact skeleton the
    /// pipeline emits, so a match guarantees the native kernel computes
    /// the same function (traps included) as the bytecode.
    pub fn from_program(prog: &Program) -> Option<Tier2Plan> {
        if let Some(p) = match_spmv(prog).or_else(|| match_spmv_unfused(prog)) {
            return Some(Tier2Plan::Spmv(p));
        }
        match_spmm(prog).map(Tier2Plan::Spmm)
    }

    /// Kernel label for stats and display.
    pub fn label(&self) -> &'static str {
        match self {
            Tier2Plan::Spmv(_) => "spmv",
            Tier2Plan::Spmm(_) => "spmm",
        }
    }

    /// The specialization key: kernel × baked prefetch distances. The
    /// index-width leg of the triple is resolved per run by the template
    /// table (the buffer types select the monomorphized loop).
    pub fn key(&self) -> String {
        match self {
            Tier2Plan::Spmv(p) => format!("spmv:d{}:c{}", p.dist_x, p.dist_crd),
            Tier2Plan::Spmm(p) => format!("spmm:d{}:c{}", p.dist_x, p.dist_crd),
        }
    }

    /// Execute the plan against bound arguments and buffers. The
    /// signature mirrors [`crate::execute_budgeted`] minus the model —
    /// see the module docs for the trace exemption.
    pub fn run(
        &self,
        args: &[V],
        bufs: &mut Buffers,
        budget: &Budget,
    ) -> Result<Vec<V>, InterpError> {
        match self {
            Tier2Plan::Spmv(p) => run_spmv(p, args, bufs, budget),
            Tier2Plan::Spmm(p) => run_spmm(p, args, bufs, budget),
        }
    }
}

/// Extracted SpMV specialization: argument positions, baked distances,
/// and the op locations every possible trap is attributed to.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvPlan {
    /// Argument positions (indices into the `args` slice).
    pub nrows_arg: usize,
    pub pos_arg: usize,
    pub y_arg: usize,
    pub crd_arg: usize,
    pub x_arg: usize,
    pub vals_arg: usize,
    /// Clamp distance for the gathered `x` stream (the paper's *d*).
    pub dist_x: usize,
    /// Distance of the sequential `crd` stream prefetch (2·*d*).
    pub dist_crd: usize,
    /// Whether the accumulator was the rhs of the fused `addf`.
    pub acc_is_rhs: bool,
    // Trap locations (op ids of the source function).
    pre_pos_pc: OpId,
    outer_pc: OpId,
    y_pc: OpId,
    pos_lo_pc: OpId,
    pos_hi_pc: OpId,
    inner_pc: OpId,
    lc_pc: OpId,
    gp_crd_pc: OpId,
    ds_a_pc: OpId,
    ds_b_pc: OpId,
}

/// Extracted SpMM specialization (three-deep loop nest).
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmPlan {
    pub nrows_arg: usize,
    pub k_arg: usize,
    pub pos_arg: usize,
    pub crd_arg: usize,
    pub c_arg: usize,
    pub vals_arg: usize,
    pub out_arg: usize,
    pub dist_x: usize,
    pub dist_crd: usize,
    pre_pos_pc: OpId,
    outer_pc: OpId,
    pos_lo_pc: OpId,
    pos_hi_pc: OpId,
    mid_pc: OpId,
    crd_pc: OpId,
    gp_crd_pc: OpId,
    vals_pc: OpId,
    inner_pc: OpId,
    c_pc: OpId,
    out_pc: OpId,
}

/// The prelude every matched program starts with: index constants, the
/// hoisted `pos[nrows]` load, and the `bound = nnz - 1` subtract, ending
/// at the outer `ForPrologue`.
struct Prelude {
    /// Constant pool: slot → index literal.
    consts: HashMap<u32, usize>,
    /// `(mem, idx_slot, value_slot, load_pc)` of the hoisted pos load.
    /// The value slot is the cast result for u32-width kernels and the
    /// load destination itself for index-width kernels.
    pre_load: Option<(u16, u32, u32, OpId)>,
    /// `(dst, lhs)` of the `subi` bound computation.
    bound: Option<(u32, u32)>,
    /// Instruction index of the outer `ForPrologue`.
    p: usize,
}

fn scan_prelude(prog: &Program) -> Option<Prelude> {
    let mut pre = Prelude {
        consts: HashMap::new(),
        pre_load: None,
        bound: None,
        p: 0,
    };
    for (i, ins) in prog.instrs.iter().enumerate() {
        match ins {
            Instr::Const {
                dst,
                val: V::Index(k),
            } => {
                pre.consts.insert(*dst, *k);
            }
            Instr::LoadCast {
                mem,
                idx,
                pc,
                cast_dst,
                ..
            } if pre.pre_load.is_none() => {
                pre.pre_load = Some((*mem, *idx, *cast_dst, *pc));
            }
            Instr::Load { dst, mem, idx, pc } if pre.pre_load.is_none() => {
                pre.pre_load = Some((*mem, *idx, *dst, *pc));
            }
            Instr::Bin {
                op: BinOp::SubI,
                dst,
                lhs,
                rhs,
                ..
            } if pre.bound.is_none() && pre.consts.get(rhs) == Some(&1) => {
                pre.bound = Some((*dst, *lhs));
            }
            Instr::ForPrologue { .. } => {
                pre.p = i;
                return Some(pre);
            }
            _ => return None,
        }
    }
    None
}

/// Argument position of the parameter held in `slot`, if it is one.
fn arg_of(prog: &Program, slot: u32) -> Option<usize> {
    prog.param_slots.iter().position(|&s| s == slot)
}

/// Argument position backing buffer-binding-table entry `mem`.
fn mem_arg(prog: &Program, mem: u16) -> Option<usize> {
    prog.mem_args.get(mem as usize).copied()
}

/// A pos/crd element load with or without the widening cast, as
/// `(mem, idx_slot, value_slot, load_pc)`. U32-width kernels lower the
/// index loads to `LoadCast` (the cast result carries the value);
/// index-width kernels load it directly and the destination is the
/// value slot.
fn load_like(ins: &Instr) -> Option<(u16, u32, u32, OpId)> {
    match ins {
        Instr::Load { dst, mem, idx, pc } => Some((*mem, *idx, *dst, *pc)),
        Instr::LoadCast {
            mem,
            idx,
            pc,
            cast_dst,
            ..
        } => Some((*mem, *idx, *cast_dst, *pc)),
        _ => None,
    }
}

fn match_spmv(prog: &Program) -> Option<SpmvPlan> {
    let pre = scan_prelude(prog)?;
    let ins = &prog.instrs;
    let p = pre.p;
    if ins.len() != p + 13 {
        return None;
    }
    let (pre_mem, pre_idx, pre_cast, pre_pos_pc) = pre.pre_load?;
    let (bound_slot, bound_lhs) = pre.bound?;
    if bound_lhs != pre_cast {
        return None;
    }
    let one = |s: &u32| pre.consts.get(s) == Some(&1);
    let zero = |s: &u32| pre.consts.get(s) == Some(&0);

    let Instr::ForPrologue {
        lo,
        hi,
        step,
        iv,
        pc: _,
    } = &ins[p]
    else {
        return None;
    };
    if !zero(lo) || !one(step) {
        return None;
    }
    let nrows_arg = arg_of(prog, *hi)?;
    // The hoisted load is pos[nrows].
    if pre_idx != *hi {
        return None;
    }
    let Instr::ForHead {
        iv: h_iv,
        hi: h_hi,
        exit,
        pc: outer_pc,
    } = &ins[p + 1]
    else {
        return None;
    };
    if h_iv != iv || h_hi != hi || *exit as usize != p + 12 {
        return None;
    }
    let Instr::Load {
        dst: acc0,
        mem: y_mem,
        idx: y_idx,
        pc: y_pc,
    } = &ins[p + 2]
    else {
        return None;
    };
    if y_idx != iv {
        return None;
    }
    let Instr::LoadCast {
        mem: lo_mem,
        idx: lo_idx,
        pc: pos_lo_pc,
        cast_dst: lo_slot,
        ..
    } = &ins[p + 3]
    else {
        return None;
    };
    if lo_mem != &pre_mem || lo_idx != iv {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddI,
        dst: ip1,
        lhs: a_lhs,
        rhs: a_rhs,
        ..
    } = &ins[p + 4]
    else {
        return None;
    };
    if a_lhs != iv || !one(a_rhs) {
        return None;
    }
    let Instr::LoadCast {
        mem: hi_mem,
        idx: hi_idx,
        pc: pos_hi_pc,
        cast_dst: hi_slot,
        ..
    } = &ins[p + 5]
    else {
        return None;
    };
    if hi_mem != &pre_mem || hi_idx != ip1 {
        return None;
    }
    let Instr::ForPrologue {
        lo: i_lo,
        hi: i_hi,
        step: i_step,
        iv: jv,
        pc: _,
    } = &ins[p + 6]
    else {
        return None;
    };
    if i_lo != lo_slot || i_hi != hi_slot || !one(i_step) {
        return None;
    }
    let Instr::Copy {
        dst: acc_in,
        src: acc_src,
    } = &ins[p + 7]
    else {
        return None;
    };
    if acc_src != acc0 {
        return None;
    }
    let Instr::SpmvLoop(d) = &ins[p + 8] else {
        return None;
    };
    if !d.strict_shape() {
        return None;
    }
    if d.iv != *jv
        || d.hi != *hi_slot
        || !one(&d.step)
        || d.exit as usize != p + 9
        || d.ds_acc != *acc_in
        || d.cs_cmp_rhs != bound_slot
    {
        return None;
    }
    // One coordinate stream feeds the crd load, its prefetch, and the
    // clamp gather; the gather prefetch targets the dense vector.
    if d.lc_mem != d.ap_mem || d.lc_mem != d.gp_crd_mem || d.ds_b_mem != d.gp_mem {
        return None;
    }
    let dist_crd = *pre.consts.get(&d.ap_rhs)?;
    let dist_x = *pre.consts.get(&d.cs_add_rhs)?;
    let Instr::Copy {
        dst: res,
        src: res_src,
    } = &ins[p + 9]
    else {
        return None;
    };
    if res_src != &d.ds_acc {
        return None;
    }
    let Instr::Store {
        mem: st_mem,
        idx: st_idx,
        src: st_src,
        pc: _,
    } = &ins[p + 10]
    else {
        return None;
    };
    if st_mem != y_mem || st_idx != iv || st_src != res {
        return None;
    }
    let Instr::LoopBack {
        iv: b_iv,
        step: b_step,
        hi: b_hi,
        body,
        exit: b_exit,
        copies,
        pc: b_pc,
    } = &ins[p + 11]
    else {
        return None;
    };
    if b_iv != iv
        || b_step != step
        || b_hi != hi
        || *body as usize != p + 2
        || *b_exit as usize != p + 12
        || !copies.is_empty()
        || b_pc != outer_pc
    {
        return None;
    }
    let Instr::Return { vals } = &ins[p + 12] else {
        return None;
    };
    if !vals.is_empty() {
        return None;
    }
    Some(SpmvPlan {
        nrows_arg,
        pos_arg: mem_arg(prog, pre_mem)?,
        y_arg: mem_arg(prog, *y_mem)?,
        crd_arg: mem_arg(prog, d.lc_mem)?,
        x_arg: mem_arg(prog, d.ds_b_mem)?,
        vals_arg: mem_arg(prog, d.ds_a_mem)?,
        dist_x,
        dist_crd,
        acc_is_rhs: d.ds_acc_is_rhs,
        pre_pos_pc,
        outer_pc: *outer_pc,
        y_pc: *y_pc,
        pos_lo_pc: *pos_lo_pc,
        pos_hi_pc: *pos_hi_pc,
        inner_pc: d.pc,
        lc_pc: d.lc_pc,
        gp_crd_pc: d.gp_crd_pc,
        ds_a_pc: d.ds_a_pc,
        ds_b_pc: d.ds_b_pc,
    })
}

/// The index-width SpMV skeleton. Without the u32→index casts the
/// superinstruction fuser leaves the inner loop as the explicit
/// `ForHead` / `Load` / `AddPrefetch` / `ClampSelect` / `Load` /
/// `Prefetch` / `DotStep` / `LoopBack` sequence, so the recognizer
/// walks that shape instead of `SpmvLoop`. The VM charges one fuel
/// unit per entered iteration at the loop-head pc in both forms, so
/// the extracted plan traps identically either way.
fn match_spmv_unfused(prog: &Program) -> Option<SpmvPlan> {
    let pre = scan_prelude(prog)?;
    let ins = &prog.instrs;
    let p = pre.p;
    if ins.len() != p + 20 {
        return None;
    }
    let (pre_mem, pre_idx, pre_val, pre_pos_pc) = pre.pre_load?;
    let (bound_slot, bound_lhs) = pre.bound?;
    if bound_lhs != pre_val {
        return None;
    }
    let one = |s: &u32| pre.consts.get(s) == Some(&1);
    let zero = |s: &u32| pre.consts.get(s) == Some(&0);

    let Instr::ForPrologue {
        lo,
        hi,
        step,
        iv,
        pc: _,
    } = &ins[p]
    else {
        return None;
    };
    if !zero(lo) || !one(step) || pre_idx != *hi {
        return None;
    }
    let nrows_arg = arg_of(prog, *hi)?;
    let Instr::ForHead {
        iv: h_iv,
        hi: h_hi,
        exit,
        pc: outer_pc,
    } = &ins[p + 1]
    else {
        return None;
    };
    if h_iv != iv || h_hi != hi || *exit as usize != p + 19 {
        return None;
    }
    let Instr::Load {
        dst: acc0,
        mem: y_mem,
        idx: y_idx,
        pc: y_pc,
    } = &ins[p + 2]
    else {
        return None;
    };
    if y_idx != iv {
        return None;
    }
    let (lo_mem, lo_idx, lo_slot, pos_lo_pc) = load_like(&ins[p + 3])?;
    if lo_mem != pre_mem || lo_idx != *iv {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddI,
        dst: ip1,
        lhs: a_lhs,
        rhs: a_rhs,
        ..
    } = &ins[p + 4]
    else {
        return None;
    };
    if a_lhs != iv || !one(a_rhs) {
        return None;
    }
    let (hi_mem, hi_idx, hi_slot, pos_hi_pc) = load_like(&ins[p + 5])?;
    if hi_mem != pre_mem || hi_idx != *ip1 {
        return None;
    }
    let Instr::ForPrologue {
        lo: i_lo,
        hi: i_hi,
        step: i_step,
        iv: jv,
        pc: _,
    } = &ins[p + 6]
    else {
        return None;
    };
    if *i_lo != lo_slot || *i_hi != hi_slot || !one(i_step) {
        return None;
    }
    let Instr::Copy {
        dst: acc_in,
        src: acc_src,
    } = &ins[p + 7]
    else {
        return None;
    };
    if acc_src != acc0 {
        return None;
    }
    let Instr::ForHead {
        iv: ih_iv,
        hi: ih_hi,
        exit: i_exit,
        pc: inner_pc,
    } = &ins[p + 8]
    else {
        return None;
    };
    if ih_iv != jv || *ih_hi != hi_slot || *i_exit as usize != p + 16 {
        return None;
    }
    let (crd_mem, c_idx, col, lc_pc) = load_like(&ins[p + 9])?;
    if c_idx != *jv {
        return None;
    }
    let Instr::AddPrefetch {
        op: BinOp::AddI,
        lhs: ap_lhs,
        rhs: ap_rhs,
        mem: ap_mem,
        write: false,
        ..
    } = &ins[p + 10]
    else {
        return None;
    };
    if ap_lhs != jv || *ap_mem != crd_mem {
        return None;
    }
    let dist_crd = *pre.consts.get(ap_rhs)?;
    let Instr::ClampSelect {
        op: BinOp::AddI,
        add_dst,
        add_lhs,
        add_rhs,
        pred: CmpPred::Ult,
        cmp_rhs,
        dst: clamped,
        if_true,
        if_false,
        ..
    } = &ins[p + 11]
    else {
        return None;
    };
    if add_lhs != jv || cmp_rhs != &bound_slot || if_true != add_dst || if_false != cmp_rhs {
        return None;
    }
    let dist_x = *pre.consts.get(add_rhs)?;
    let (g_mem, g_idx, g_col, gp_crd_pc) = load_like(&ins[p + 12])?;
    if g_mem != crd_mem || g_idx != *clamped {
        return None;
    }
    let Instr::Prefetch {
        mem: pf_mem,
        idx: pf_idx,
        write: false,
        ..
    } = &ins[p + 13]
    else {
        return None;
    };
    if *pf_idx != g_col {
        return None;
    }
    let Instr::DotStep {
        a_dst,
        a_mem: vals_mem,
        a_idx,
        a_pc: ds_a_pc,
        b_dst,
        b_mem: x_mem,
        b_idx,
        b_pc: ds_b_pc,
        a,
        b,
        mul_dst: _,
        mul_pc: _,
        acc,
        acc_is_rhs,
        dst: ds_dst,
        pc: _,
    } = &ins[p + 14]
    else {
        return None;
    };
    // The prefetch targets the dense vector the dot step gathers from,
    // and the gathered index is the coordinate loaded this iteration.
    if a_idx != jv || *b_idx != col || a != a_dst || b != b_dst || acc != acc_in || x_mem != pf_mem
    {
        return None;
    }
    let Instr::LoopBack {
        iv: ib_iv,
        step: ib_step,
        hi: ib_hi,
        body: ib_body,
        exit: ib_exit,
        copies: ib_copies,
        pc: ib_pc,
    } = &ins[p + 15]
    else {
        return None;
    };
    if ib_iv != jv
        || !one(ib_step)
        || *ib_hi != hi_slot
        || *ib_body as usize != p + 9
        || *ib_exit as usize != p + 16
        || ib_copies.as_slice() != [(*acc_in, *ds_dst)]
        || ib_pc != inner_pc
    {
        return None;
    }
    let Instr::Copy {
        dst: res,
        src: res_src,
    } = &ins[p + 16]
    else {
        return None;
    };
    if res_src != acc_in {
        return None;
    }
    let Instr::Store {
        mem: st_mem,
        idx: st_idx,
        src: st_src,
        pc: _,
    } = &ins[p + 17]
    else {
        return None;
    };
    if st_mem != y_mem || st_idx != iv || st_src != res {
        return None;
    }
    let Instr::LoopBack {
        iv: b_iv,
        step: b_step,
        hi: b_hi,
        body,
        exit: b_exit,
        copies,
        pc: b_pc,
    } = &ins[p + 18]
    else {
        return None;
    };
    if b_iv != iv
        || b_step != step
        || b_hi != hi
        || *body as usize != p + 2
        || *b_exit as usize != p + 19
        || !copies.is_empty()
        || b_pc != outer_pc
    {
        return None;
    }
    let Instr::Return { vals } = &ins[p + 19] else {
        return None;
    };
    if !vals.is_empty() {
        return None;
    }
    Some(SpmvPlan {
        nrows_arg,
        pos_arg: mem_arg(prog, pre_mem)?,
        y_arg: mem_arg(prog, *y_mem)?,
        crd_arg: mem_arg(prog, crd_mem)?,
        x_arg: mem_arg(prog, *x_mem)?,
        vals_arg: mem_arg(prog, *vals_mem)?,
        dist_x,
        dist_crd,
        acc_is_rhs: *acc_is_rhs,
        pre_pos_pc,
        outer_pc: *outer_pc,
        y_pc: *y_pc,
        pos_lo_pc,
        pos_hi_pc,
        inner_pc: *inner_pc,
        lc_pc,
        gp_crd_pc,
        ds_a_pc: *ds_a_pc,
        ds_b_pc: *ds_b_pc,
    })
}

fn match_spmm(prog: &Program) -> Option<SpmmPlan> {
    let pre = scan_prelude(prog)?;
    let ins = &prog.instrs;
    let p = pre.p;
    if ins.len() != p + 28 {
        return None;
    }
    let (pre_mem, pre_idx, pre_cast, pre_pos_pc) = pre.pre_load?;
    let (bound_slot, bound_lhs) = pre.bound?;
    if bound_lhs != pre_cast {
        return None;
    }
    let one = |s: &u32| pre.consts.get(s) == Some(&1);
    let zero = |s: &u32| pre.consts.get(s) == Some(&0);

    let Instr::ForPrologue {
        lo, hi, step, iv, ..
    } = &ins[p]
    else {
        return None;
    };
    if !zero(lo) || !one(step) || pre_idx != *hi {
        return None;
    }
    let nrows_arg = arg_of(prog, *hi)?;
    let Instr::ForHead {
        iv: h_iv,
        hi: h_hi,
        exit,
        pc: outer_pc,
    } = &ins[p + 1]
    else {
        return None;
    };
    if h_iv != iv || h_hi != hi || *exit as usize != p + 27 {
        return None;
    }
    let (lo_mem, lo_idx, lo_slot, pos_lo_pc) = load_like(&ins[p + 2])?;
    if lo_mem != pre_mem || lo_idx != *iv {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddI,
        dst: ip1,
        lhs: a_lhs,
        rhs: a_rhs,
        ..
    } = &ins[p + 3]
    else {
        return None;
    };
    if a_lhs != iv || !one(a_rhs) {
        return None;
    }
    let (hi_mem, hi_idx, hi_slot, pos_hi_pc) = load_like(&ins[p + 4])?;
    if hi_mem != pre_mem || hi_idx != *ip1 {
        return None;
    }
    let Instr::Bin {
        op: BinOp::MulI,
        dst: rowbase,
        lhs: rb_lhs,
        rhs: k_slot,
        ..
    } = &ins[p + 5]
    else {
        return None;
    };
    if rb_lhs != iv {
        return None;
    }
    let k_arg = arg_of(prog, *k_slot)?;
    let Instr::ForPrologue {
        lo: m_lo,
        hi: m_hi,
        step: m_step,
        iv: jv,
        ..
    } = &ins[p + 6]
    else {
        return None;
    };
    if *m_lo != lo_slot || *m_hi != hi_slot || !one(m_step) {
        return None;
    }
    let Instr::ForHead {
        iv: mh_iv,
        hi: mh_hi,
        exit: m_exit,
        pc: mid_pc,
    } = &ins[p + 7]
    else {
        return None;
    };
    if mh_iv != jv || *mh_hi != hi_slot || *m_exit as usize != p + 26 {
        return None;
    }
    let (crd_mem, c_idx, col, crd_pc) = load_like(&ins[p + 8])?;
    if c_idx != *jv {
        return None;
    }
    let Instr::AddPrefetch {
        op: BinOp::AddI,
        lhs: ap_lhs,
        rhs: ap_rhs,
        mem: ap_mem,
        write: false,
        ..
    } = &ins[p + 9]
    else {
        return None;
    };
    if ap_lhs != jv || *ap_mem != crd_mem {
        return None;
    }
    let dist_crd = *pre.consts.get(ap_rhs)?;
    let Instr::ClampSelect {
        op: BinOp::AddI,
        add_dst,
        add_lhs,
        add_rhs,
        pred: CmpPred::Ult,
        cmp_rhs,
        dst: clamped,
        if_true,
        if_false,
        ..
    } = &ins[p + 10]
    else {
        return None;
    };
    if add_lhs != jv || cmp_rhs != &bound_slot || if_true != add_dst || if_false != cmp_rhs {
        return None;
    }
    let dist_x = *pre.consts.get(add_rhs)?;
    let (g_mem, g_idx, g_col, gp_crd_pc) = load_like(&ins[p + 11])?;
    if g_mem != crd_mem || g_idx != *clamped {
        return None;
    }
    let Instr::AddPrefetch {
        op: BinOp::MulI,
        lhs: gp_lhs,
        rhs: gp_rhs,
        mem: c_mem,
        write: false,
        ..
    } = &ins[p + 12]
    else {
        return None;
    };
    if *gp_lhs != g_col || gp_rhs != k_slot {
        return None;
    }
    let Instr::Load {
        dst: a_slot,
        mem: vals_mem,
        idx: v_idx,
        pc: vals_pc,
    } = &ins[p + 13]
    else {
        return None;
    };
    if v_idx != jv {
        return None;
    }
    let Instr::Bin {
        op: BinOp::MulI,
        dst: cbase,
        lhs: cb_lhs,
        rhs: cb_rhs,
        ..
    } = &ins[p + 14]
    else {
        return None;
    };
    if *cb_lhs != col || cb_rhs != k_slot {
        return None;
    }
    let Instr::ForPrologue {
        lo: k_lo,
        hi: k_hi,
        step: k_step,
        iv: kv,
        ..
    } = &ins[p + 15]
    else {
        return None;
    };
    if !zero(k_lo) || k_hi != k_slot || !one(k_step) {
        return None;
    }
    let Instr::ForHead {
        iv: kh_iv,
        hi: kh_hi,
        exit: k_exit,
        pc: inner_pc,
    } = &ins[p + 16]
    else {
        return None;
    };
    if kh_iv != kv || kh_hi != k_slot || *k_exit as usize != p + 25 {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddI,
        dst: cidx,
        lhs: ci_lhs,
        rhs: ci_rhs,
        ..
    } = &ins[p + 17]
    else {
        return None;
    };
    if ci_lhs != cbase || ci_rhs != kv {
        return None;
    }
    let Instr::Load {
        dst: c_val,
        mem: c_mem2,
        idx: c_idx2,
        pc: c_pc,
    } = &ins[p + 18]
    else {
        return None;
    };
    if c_mem2 != c_mem || c_idx2 != cidx {
        return None;
    }
    let Instr::Bin {
        op: BinOp::MulF,
        dst: prod,
        lhs: p_lhs,
        rhs: p_rhs,
        ..
    } = &ins[p + 19]
    else {
        return None;
    };
    if p_lhs != a_slot || p_rhs != c_val {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddI,
        dst: oidx,
        lhs: o_lhs,
        rhs: o_rhs,
        ..
    } = &ins[p + 20]
    else {
        return None;
    };
    if o_lhs != rowbase || o_rhs != kv {
        return None;
    }
    let Instr::Load {
        dst: o_val,
        mem: out_mem,
        idx: ol_idx,
        pc: out_pc,
    } = &ins[p + 21]
    else {
        return None;
    };
    if ol_idx != oidx {
        return None;
    }
    let Instr::Bin {
        op: BinOp::AddF,
        dst: sum,
        lhs: s_lhs,
        rhs: s_rhs,
        ..
    } = &ins[p + 22]
    else {
        return None;
    };
    // `Out[..] + product` — the lowered operand order the native loop
    // replays for bit-exactness.
    if s_lhs != o_val || s_rhs != prod {
        return None;
    }
    let Instr::Store {
        mem: st_mem,
        idx: st_idx,
        src: st_src,
        ..
    } = &ins[p + 23]
    else {
        return None;
    };
    if st_mem != out_mem || st_idx != oidx || st_src != sum {
        return None;
    }
    let Instr::LoopBack {
        iv: kb_iv,
        body: kb_body,
        exit: kb_exit,
        copies: kb_copies,
        pc: kb_pc,
        ..
    } = &ins[p + 24]
    else {
        return None;
    };
    if kb_iv != kv
        || *kb_body as usize != p + 17
        || *kb_exit as usize != p + 25
        || !kb_copies.is_empty()
        || kb_pc != inner_pc
    {
        return None;
    }
    let Instr::LoopBack {
        iv: mb_iv,
        body: mb_body,
        exit: mb_exit,
        copies: mb_copies,
        pc: mb_pc,
        ..
    } = &ins[p + 25]
    else {
        return None;
    };
    if mb_iv != jv
        || *mb_body as usize != p + 8
        || *mb_exit as usize != p + 26
        || !mb_copies.is_empty()
        || mb_pc != mid_pc
    {
        return None;
    }
    let Instr::LoopBack {
        iv: ob_iv,
        body: ob_body,
        exit: ob_exit,
        copies: ob_copies,
        pc: ob_pc,
        ..
    } = &ins[p + 26]
    else {
        return None;
    };
    if ob_iv != iv
        || *ob_body as usize != p + 2
        || *ob_exit as usize != p + 27
        || !ob_copies.is_empty()
        || ob_pc != outer_pc
    {
        return None;
    }
    let Instr::Return { vals } = &ins[p + 27] else {
        return None;
    };
    if !vals.is_empty() {
        return None;
    }
    Some(SpmmPlan {
        nrows_arg,
        k_arg,
        pos_arg: mem_arg(prog, pre_mem)?,
        crd_arg: mem_arg(prog, crd_mem)?,
        c_arg: mem_arg(prog, *c_mem)?,
        vals_arg: mem_arg(prog, *vals_mem)?,
        out_arg: mem_arg(prog, *out_mem)?,
        dist_x,
        dist_crd,
        pre_pos_pc,
        outer_pc: *outer_pc,
        pos_lo_pc,
        pos_hi_pc,
        mid_pc: *mid_pc,
        crd_pc,
        gp_crd_pc,
        vals_pc: *vals_pc,
        inner_pc: *inner_pc,
        c_pc: *c_pc,
        out_pc: *out_pc,
    })
}

// ---------------------------------------------------------------------
// Runtime: the generic-template kernel table.
// ---------------------------------------------------------------------

/// An index element the specialized loops are monomorphized over.
/// `zext` mirrors the VM's `as_u64` widening (zero-extension for the
/// narrow signed storage types).
trait IdxElem: Copy {
    fn zext(self) -> u64;
}

impl IdxElem for i64 {
    #[inline(always)]
    fn zext(self) -> u64 {
        self as u64
    }
}
impl IdxElem for i32 {
    #[inline(always)]
    fn zext(self) -> u64 {
        self as u32 as u64
    }
}
impl IdxElem for i8 {
    #[inline(always)]
    fn zext(self) -> u64 {
        self as u8 as u64
    }
}
impl IdxElem for usize {
    #[inline(always)]
    fn zext(self) -> u64 {
        self as u64
    }
}

/// Issue a best-effort read prefetch for `base[i]`. Never faults: the
/// address is computed with wrapping pointer arithmetic and prefetch
/// instructions are architecturally allowed to target unmapped memory.
/// Compiles to `prefetcht1` on x86-64 (matching the IR's locality-2
/// hint) and to nothing elsewhere.
#[inline(always)]
fn prefetch_read<T>(base: &[T], i: usize) {
    // The only `unsafe` in the workspace (the serve/obs/fuzz crates
    // carry `#![forbid(unsafe_code)]`); the invariants it rests on are
    // spelled out below and cross-checked in debug builds.
    debug_assert!(
        std::mem::size_of::<T>() > 0,
        "prefetch of a ZST slice is meaningless (every element is one address)"
    );
    debug_assert!(
        i.checked_mul(std::mem::size_of::<T>()).is_some(),
        "prefetch offset {i} * {} overflows the address computation",
        std::mem::size_of::<T>()
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` never dereferences its argument — it is a
    // hint to the cache hierarchy, and the ISA defines PREFETCHh as
    // non-faulting for any address, mapped or not (Intel SDM vol. 2B:
    // "does not cause page faults"). The address itself is computed
    // with `wrapping_add`, which is defined for any offset (unlike
    // `add`, it carries no in-bounds provenance obligation), so an `i`
    // past `base.len()` — which the ASaP distance schedule produces
    // near the end of every row by design — yields at worst a useless
    // hint, never UB and never a fault. No reference is formed and no
    // memory is read or written.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T1};
        let p = base.as_ptr().wrapping_add(i) as *const i8;
        _mm_prefetch::<_MM_HINT_T1>(p);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (base, i);
    }
}

#[inline]
fn oob(index: usize, len: usize, pc: OpId) -> InterpError {
    InterpError::OutOfBounds { index, len }.at(pc)
}

#[inline]
fn fuel(e: crate::budget::BudgetError, pc: OpId) -> InterpError {
    InterpError::Budget(e).at(pc)
}

/// The `args` slice is shorter than the plan's highest argument
/// position — mirrors the VM's argument-count check.
fn bad_args(pos: usize, got: usize) -> InterpError {
    InterpError::BadArgs(format!(
        "tier-2 plan expects at least {} arguments, got {got}",
        pos + 1
    ))
}

/// Resolve `args[pos]` to its buffer id, trapping like the VM's lazy
/// `MemBinding::Bad` (a type mismatch at the first use site).
fn mem_id(args: &[V], pos: usize, pc: OpId) -> Result<u32, InterpError> {
    match args.get(pos) {
        Some(V::Mem(id)) => Ok(*id),
        Some(v) => Err(V::mismatch("memref", *v).at(pc)),
        None => Err(bad_args(pos, args.len())),
    }
}

/// Borrow an f64 slice, trapping on a differently-typed buffer.
fn f64_slice<'a>(bufs: &'a Buffers, id: u32, what: &str) -> Result<&'a [f64], InterpError> {
    match &bufs.get(id).data {
        BufferData::F64(v) => Ok(&v[..]),
        other => Err(InterpError::TypeMismatch(format!(
            "tier-2 {what} buffer must be f64, got {}",
            other.elem_type()
        ))),
    }
}

/// Expand a two-way typed dispatch over the (pos, crd) buffer types —
/// the 16-entry generic-template table. Each arm monomorphizes the
/// kernel body for one index-width pair, so the selected loop carries no
/// per-element dispatch at all.
macro_rules! dispatch2 {
    ($pos:expr, $crd:expr, |$pv:ident, $cv:ident| $body:expr) => {
        match ($pos, $crd) {
            (BufferData::I64($pv), BufferData::I64($cv)) => $body,
            (BufferData::I64($pv), BufferData::I32($cv)) => $body,
            (BufferData::I64($pv), BufferData::I8($cv)) => $body,
            (BufferData::I64($pv), BufferData::Index($cv)) => $body,
            (BufferData::I32($pv), BufferData::I64($cv)) => $body,
            (BufferData::I32($pv), BufferData::I32($cv)) => $body,
            (BufferData::I32($pv), BufferData::I8($cv)) => $body,
            (BufferData::I32($pv), BufferData::Index($cv)) => $body,
            (BufferData::I8($pv), BufferData::I64($cv)) => $body,
            (BufferData::I8($pv), BufferData::I32($cv)) => $body,
            (BufferData::I8($pv), BufferData::I8($cv)) => $body,
            (BufferData::I8($pv), BufferData::Index($cv)) => $body,
            (BufferData::Index($pv), BufferData::I64($cv)) => $body,
            (BufferData::Index($pv), BufferData::I32($cv)) => $body,
            (BufferData::Index($pv), BufferData::I8($cv)) => $body,
            (BufferData::Index($pv), BufferData::Index($cv)) => $body,
            _ => unreachable!("f64 coordinate buffers rejected above"),
        }
    };
}

/// Run the SpMV plan. `y` is temporarily taken out of the arena so the
/// output can be written through a typed slice while the read-only
/// operands stay borrowed; it is restored before returning on every
/// path, success or trap.
fn run_spmv(
    plan: &SpmvPlan,
    args: &[V],
    bufs: &mut Buffers,
    budget: &Budget,
) -> Result<Vec<V>, InterpError> {
    let nrows = match args.get(plan.nrows_arg) {
        Some(v) => v.as_index().map_err(|e| e.at(plan.pre_pos_pc))?,
        None => return Err(bad_args(plan.nrows_arg, args.len())),
    };
    let pos_id = mem_id(args, plan.pos_arg, plan.pre_pos_pc)?;
    let y_id = mem_id(args, plan.y_arg, plan.y_pc)?;
    let crd_id = mem_id(args, plan.crd_arg, plan.lc_pc)?;
    let x_id = mem_id(args, plan.x_arg, plan.ds_b_pc)?;
    let vals_id = mem_id(args, plan.vals_arg, plan.ds_a_pc)?;
    if [pos_id, crd_id, x_id, vals_id].contains(&y_id) {
        return Err(InterpError::TypeMismatch(
            "tier-2 output buffer aliases an input".into(),
        ));
    }
    // Take the output out of the arena (restored below, on every path).
    let taken = std::mem::replace(&mut bufs.get_mut(y_id).data, BufferData::F64(Vec::new()));
    let BufferData::F64(mut y) = taken else {
        let t = taken.elem_type();
        bufs.get_mut(y_id).data = taken;
        return Err(InterpError::TypeMismatch(format!(
            "tier-2 output buffer must be f64, got {t}"
        )));
    };
    let result = (|| -> Result<(), InterpError> {
        let vals = f64_slice(bufs, vals_id, "vals")?;
        let x = f64_slice(bufs, x_id, "x")?;
        match (&bufs.get(pos_id).data, &bufs.get(crd_id).data) {
            (BufferData::F64(_), _) | (_, BufferData::F64(_)) => Err(InterpError::TypeMismatch(
                "tier-2 coordinate buffers must be integer-typed".into(),
            )),
            (pos, crd) => dispatch2!(pos, crd, |pv, cv| spmv_rows(
                plan, nrows, pv, cv, vals, x, &mut y, budget
            )),
        }
    })();
    bufs.get_mut(y_id).data = BufferData::F64(y);
    result.map(|()| Vec::new())
}

/// The monomorphized SpMV kernel: one specialization per (pos, crd)
/// index-type pair, selected by [`dispatch2!`].
// `p + acc` vs `acc + p` replays the original `addf` operand order:
// f64 addition is commutative in value but not in NaN-payload
// propagation, and equivalence with the interpreters is bit-exact.
#[allow(clippy::too_many_arguments, clippy::if_same_then_else)]
fn spmv_rows<P: IdxElem, C: IdxElem>(
    plan: &SpmvPlan,
    nrows: usize,
    pos: &[P],
    crd: &[C],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
    budget: &Budget,
) -> Result<(), InterpError> {
    // Hoisted bound chain: `bound = pos[nrows] - 1`, trap-equivalent to
    // the VM's prelude `LoadCast` + `SubI`.
    let nnz = pos
        .get(nrows)
        .ok_or_else(|| oob(nrows, pos.len(), plan.pre_pos_pc))?
        .zext() as usize;
    let bound = nnz.wrapping_sub(1);
    let mut meter = budget.meter();
    for i in 0..nrows {
        // Outer loop entry: one fuel unit, trap at the outer `scf.for`.
        meter.tick().map_err(|e| fuel(e, plan.outer_pc))?;
        let acc0 = *y.get(i).ok_or_else(|| oob(i, y.len(), plan.y_pc))?;
        let lo = pos
            .get(i)
            .ok_or_else(|| oob(i, pos.len(), plan.pos_lo_pc))?
            .zext() as usize;
        let ip1 = i.wrapping_add(1);
        let hi = pos
            .get(ip1)
            .ok_or_else(|| oob(ip1, pos.len(), plan.pos_hi_pc))?
            .zext() as usize;
        let t = hi.saturating_sub(lo) as u64;
        let mut acc = acc0;
        // Row dispatch: bulk-meter and run the unchecked hot loop only
        // when (a) the remaining fuel covers every inner iteration (no
        // mid-row fuel trap possible) and (b) the coordinate and value
        // streams are in bounds for the whole row (the clamp guarantees
        // `clamped <= bound`). Otherwise the governed path replays the
        // VM's per-iteration metering and trap order exactly.
        if t > 0
            && meter.fuel_remaining() >= t
            && hi <= crd.len()
            && hi <= vals.len()
            && bound < crd.len()
        {
            meter.tick_n(t).map_err(|e| fuel(e, plan.inner_pc))?;
            for j in lo..hi {
                let col = crd[j].zext() as usize;
                prefetch_read(crd, j.wrapping_add(plan.dist_crd));
                let sum = j.wrapping_add(plan.dist_x);
                let clamped = if sum < bound { sum } else { bound };
                let g = crd[clamped].zext() as usize;
                prefetch_read(x, g);
                let av = vals[j];
                let xv = *x.get(col).ok_or_else(|| oob(col, x.len(), plan.ds_b_pc))?;
                let p = av * xv;
                acc = if plan.acc_is_rhs { p + acc } else { acc + p };
            }
        } else {
            let mut j = lo;
            while j < hi {
                meter.tick().map_err(|e| fuel(e, plan.inner_pc))?;
                let col = crd
                    .get(j)
                    .ok_or_else(|| oob(j, crd.len(), plan.lc_pc))?
                    .zext() as usize;
                prefetch_read(crd, j.wrapping_add(plan.dist_crd));
                let sum = j.wrapping_add(plan.dist_x);
                let clamped = if sum < bound { sum } else { bound };
                let g = crd
                    .get(clamped)
                    .ok_or_else(|| oob(clamped, crd.len(), plan.gp_crd_pc))?
                    .zext() as usize;
                prefetch_read(x, g);
                let av = *vals
                    .get(j)
                    .ok_or_else(|| oob(j, vals.len(), plan.ds_a_pc))?;
                let xv = *x.get(col).ok_or_else(|| oob(col, x.len(), plan.ds_b_pc))?;
                let p = av * xv;
                acc = if plan.acc_is_rhs { p + acc } else { acc + p };
                j = j.wrapping_add(1);
            }
        }
        // `y[i]` was bounds-checked by the row's initial load.
        y[i] = acc;
    }
    Ok(())
}

/// Run the SpMM plan (same structure as [`run_spmv`]; the dense output
/// matrix is taken out of the arena for the duration).
fn run_spmm(
    plan: &SpmmPlan,
    args: &[V],
    bufs: &mut Buffers,
    budget: &Budget,
) -> Result<Vec<V>, InterpError> {
    let nrows = match args.get(plan.nrows_arg) {
        Some(v) => v.as_index().map_err(|e| e.at(plan.pre_pos_pc))?,
        None => return Err(bad_args(plan.nrows_arg, args.len())),
    };
    let k = match args.get(plan.k_arg) {
        Some(v) => v.as_index().map_err(|e| e.at(plan.inner_pc))?,
        None => return Err(bad_args(plan.k_arg, args.len())),
    };
    let pos_id = mem_id(args, plan.pos_arg, plan.pre_pos_pc)?;
    let crd_id = mem_id(args, plan.crd_arg, plan.crd_pc)?;
    let c_id = mem_id(args, plan.c_arg, plan.c_pc)?;
    let vals_id = mem_id(args, plan.vals_arg, plan.vals_pc)?;
    let out_id = mem_id(args, plan.out_arg, plan.out_pc)?;
    if [pos_id, crd_id, c_id, vals_id].contains(&out_id) {
        return Err(InterpError::TypeMismatch(
            "tier-2 output buffer aliases an input".into(),
        ));
    }
    let taken = std::mem::replace(&mut bufs.get_mut(out_id).data, BufferData::F64(Vec::new()));
    let BufferData::F64(mut out) = taken else {
        let t = taken.elem_type();
        bufs.get_mut(out_id).data = taken;
        return Err(InterpError::TypeMismatch(format!(
            "tier-2 output buffer must be f64, got {t}"
        )));
    };
    let result = (|| -> Result<(), InterpError> {
        let vals = f64_slice(bufs, vals_id, "vals")?;
        let cmat = f64_slice(bufs, c_id, "dense")?;
        match (&bufs.get(pos_id).data, &bufs.get(crd_id).data) {
            (BufferData::F64(_), _) | (_, BufferData::F64(_)) => Err(InterpError::TypeMismatch(
                "tier-2 coordinate buffers must be integer-typed".into(),
            )),
            (pos, crd) => dispatch2!(pos, crd, |pv, cv| spmm_rows(
                plan, nrows, k, pv, cv, vals, cmat, &mut out, budget
            )),
        }
    })();
    bufs.get_mut(out_id).data = BufferData::F64(out);
    result.map(|()| Vec::new())
}

/// The monomorphized SpMM kernel.
#[allow(clippy::too_many_arguments)]
fn spmm_rows<P: IdxElem, C: IdxElem>(
    plan: &SpmmPlan,
    nrows: usize,
    k: usize,
    pos: &[P],
    crd: &[C],
    vals: &[f64],
    cmat: &[f64],
    out: &mut [f64],
    budget: &Budget,
) -> Result<(), InterpError> {
    let nnz = pos
        .get(nrows)
        .ok_or_else(|| oob(nrows, pos.len(), plan.pre_pos_pc))?
        .zext() as usize;
    let bound = nnz.wrapping_sub(1);
    let mut meter = budget.meter();
    // Per-middle-iteration fuel cost: the middle loop entry plus the
    // K-long innermost loop.
    let mid_cost = 1u64.saturating_add(k as u64);
    for i in 0..nrows {
        meter.tick().map_err(|e| fuel(e, plan.outer_pc))?;
        let lo = pos
            .get(i)
            .ok_or_else(|| oob(i, pos.len(), plan.pos_lo_pc))?
            .zext() as usize;
        let ip1 = i.wrapping_add(1);
        let hi = pos
            .get(ip1)
            .ok_or_else(|| oob(ip1, pos.len(), plan.pos_hi_pc))?
            .zext() as usize;
        let rowbase = i.wrapping_mul(k);
        let mut j = lo;
        while j < hi {
            // The middle body is O(1); always run it fully checked in
            // the VM's trap order.
            let bulk = meter.fuel_remaining() >= mid_cost;
            if bulk {
                meter.tick_n(mid_cost).map_err(|e| fuel(e, plan.mid_pc))?;
            } else {
                meter.tick().map_err(|e| fuel(e, plan.mid_pc))?;
            }
            let col = crd
                .get(j)
                .ok_or_else(|| oob(j, crd.len(), plan.crd_pc))?
                .zext() as usize;
            prefetch_read(crd, j.wrapping_add(plan.dist_crd));
            let sum = j.wrapping_add(plan.dist_x);
            let clamped = if sum < bound { sum } else { bound };
            let g = crd
                .get(clamped)
                .ok_or_else(|| oob(clamped, crd.len(), plan.gp_crd_pc))?
                .zext() as usize;
            prefetch_read(cmat, g.wrapping_mul(k));
            let a = *vals
                .get(j)
                .ok_or_else(|| oob(j, vals.len(), plan.vals_pc))?;
            let cbase = col.wrapping_mul(k);
            let c_end = cbase.checked_add(k);
            let o_end = rowbase.checked_add(k);
            match (bulk, c_end, o_end) {
                (true, Some(ce), Some(oe)) if ce <= cmat.len() && oe <= out.len() => {
                    // Hot innermost loop: fuel already charged, rows of
                    // C and Out proven in bounds.
                    let cs = &cmat[cbase..ce];
                    let os = &mut out[rowbase..oe];
                    for (o, c) in os.iter_mut().zip(cs) {
                        *o += a * c;
                    }
                }
                (true, _, _) => {
                    // Fuel charged in bulk, but a row slice may leave
                    // the buffers: per-element checks with the VM's trap
                    // order and locations.
                    for kk in 0..k {
                        let cidx = cbase.wrapping_add(kk);
                        let c = *cmat
                            .get(cidx)
                            .ok_or_else(|| oob(cidx, cmat.len(), plan.c_pc))?;
                        let p = a * c;
                        let oidx = rowbase.wrapping_add(kk);
                        let o = *out
                            .get(oidx)
                            .ok_or_else(|| oob(oidx, out.len(), plan.out_pc))?;
                        out[oidx] = o + p;
                    }
                }
                (false, _, _) => {
                    // Governed path: the fuel trap must land on the
                    // exact innermost iteration the VM would trap on.
                    for kk in 0..k {
                        meter.tick().map_err(|e| fuel(e, plan.inner_pc))?;
                        let cidx = cbase.wrapping_add(kk);
                        let c = *cmat
                            .get(cidx)
                            .ok_or_else(|| oob(cidx, cmat.len(), plan.c_pc))?;
                        let p = a * c;
                        let oidx = rowbase.wrapping_add(kk);
                        let o = *out
                            .get(oidx)
                            .ok_or_else(|| oob(oidx, out.len(), plan.out_pc))?;
                        out[oidx] = o + p;
                    }
                }
            }
            j = j.wrapping_add(1);
        }
    }
    Ok(())
}
