//! Sparse tensor formats: a mapping from tensor dimensions to storage
//! levels with level types (paper Figure 1b).

use crate::level::LevelType;
use std::fmt;

/// A sparse tensor format: an ordered list of levels, each typed and
/// mapped to one tensor dimension.
///
/// `dim_of_level[l]` gives the tensor dimension that level `l` encodes —
/// e.g. CSC stores columns before rows, so `dim_of_level == [1, 0]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Format {
    levels: Vec<LevelType>,
    dim_of_level: Vec<usize>,
    name: String,
}

impl Format {
    /// Build an arbitrary format. `dim_of_level` must be a permutation of
    /// `0..levels.len()`.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<LevelType>,
        dim_of_level: Vec<usize>,
    ) -> Format {
        assert_eq!(levels.len(), dim_of_level.len(), "one dimension per level");
        let mut seen = vec![false; dim_of_level.len()];
        for &d in &dim_of_level {
            assert!(
                d < seen.len() && !seen[d],
                "dim_of_level must be a permutation"
            );
            seen[d] = true;
        }
        Format {
            levels,
            dim_of_level,
            name: name.into(),
        }
    }

    /// Compressed Sparse Row: `(d0, d1) -> (d0: dense, d1: compressed)`.
    pub fn csr() -> Format {
        Format::new(
            "CSR",
            vec![LevelType::Dense, LevelType::compressed()],
            vec![0, 1],
        )
    }

    /// Compressed Sparse Column: like CSR with dimensions swapped.
    pub fn csc() -> Format {
        Format::new(
            "CSC",
            vec![LevelType::Dense, LevelType::compressed()],
            vec![1, 0],
        )
    }

    /// Coordinate list: `(compressed(nonunique), singleton)`.
    pub fn coo() -> Format {
        Format::new(
            "COO",
            vec![LevelType::compressed_nonunique(), LevelType::Singleton],
            vec![0, 1],
        )
    }

    /// Doubly Compressed Sparse Row: both levels compressed.
    pub fn dcsr() -> Format {
        Format::new(
            "DCSR",
            vec![LevelType::compressed(), LevelType::compressed()],
            vec![0, 1],
        )
    }

    /// Doubly Compressed Sparse Column.
    pub fn dcsc() -> Format {
        Format::new(
            "DCSC",
            vec![LevelType::compressed(), LevelType::compressed()],
            vec![1, 0],
        )
    }

    /// Compressed Sparse Fiber: every level compressed, identity order.
    /// The general N-dimensional case of the paper's Section 3.2.2 bound
    /// recursion.
    pub fn csf(rank: usize) -> Format {
        assert!(rank >= 1);
        Format::new(
            format!("CSF{rank}"),
            vec![LevelType::compressed(); rank],
            (0..rank).collect(),
        )
    }

    /// All-dense format of the given rank (for reference/testing).
    pub fn all_dense(rank: usize) -> Format {
        Format::new(
            format!("Dense{rank}"),
            vec![LevelType::Dense; rank],
            (0..rank).collect(),
        )
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels (== tensor rank).
    pub fn rank(&self) -> usize {
        self.levels.len()
    }

    /// Level types in storage order.
    pub fn levels(&self) -> &[LevelType] {
        &self.levels
    }

    /// The tensor dimension encoded by level `l`.
    pub fn dim_of_level(&self, l: usize) -> usize {
        self.dim_of_level[l]
    }

    /// The level encoding tensor dimension `d`.
    pub fn level_of_dim(&self, d: usize) -> usize {
        self.dim_of_level
            .iter()
            .position(|&x| x == d)
            .expect("dim_of_level is a permutation")
    }

    /// Whether any level is sparse (needs buffers).
    pub fn is_sparse(&self) -> bool {
        self.levels.iter().any(|l| l.has_crd())
    }

    /// MLIR `#sparse_tensor.encoding` attribute rendering, as in the
    /// paper's Figure 1b.
    pub fn mlir_encoding(&self) -> String {
        let dims: Vec<String> = (0..self.rank()).map(|d| format!("d{d}")).collect();
        let lvls: Vec<String> = (0..self.rank())
            .map(|l| format!("d{} : {}", self.dim_of_level[l], self.levels[l].mlir_name()))
            .collect();
        format!(
            "#sparse_tensor.encoding<{{ map = ({}) -> ({}) }}>",
            dims.join(", "),
            lvls.join(", ")
        )
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_shape() {
        let f = Format::csr();
        assert_eq!(f.rank(), 2);
        assert_eq!(f.levels()[0], LevelType::Dense);
        assert_eq!(f.levels()[1], LevelType::compressed());
        assert_eq!(f.dim_of_level(0), 0);
        assert_eq!(f.level_of_dim(1), 1);
    }

    #[test]
    fn csc_swaps_dims() {
        let f = Format::csc();
        assert_eq!(f.dim_of_level(0), 1);
        assert_eq!(f.dim_of_level(1), 0);
        assert_eq!(f.level_of_dim(0), 1);
    }

    #[test]
    fn coo_levels() {
        let f = Format::coo();
        assert_eq!(f.levels()[0], LevelType::compressed_nonunique());
        assert_eq!(f.levels()[1], LevelType::Singleton);
        assert!(f.is_sparse());
    }

    #[test]
    fn csf_rank_n() {
        let f = Format::csf(3);
        assert_eq!(f.rank(), 3);
        assert!(f.levels().iter().all(|&l| l == LevelType::compressed()));
    }

    #[test]
    fn all_dense_is_not_sparse() {
        assert!(!Format::all_dense(2).is_sparse());
    }

    #[test]
    fn mlir_encoding_csr() {
        assert_eq!(
            Format::csr().mlir_encoding(),
            "#sparse_tensor.encoding<{ map = (d0, d1) -> (d0 : dense, d1 : compressed) }>"
        );
    }

    #[test]
    fn mlir_encoding_coo() {
        assert_eq!(
            Format::coo().mlir_encoding(),
            "#sparse_tensor.encoding<{ map = (d0, d1) -> (d0 : compressed(nonunique), d1 : singleton) }>"
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_permutation() {
        Format::new("bad", vec![LevelType::Dense, LevelType::Dense], vec![0, 0]);
    }
}
