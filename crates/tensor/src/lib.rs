//! # asap-tensor — sparse tensor dialect substrate
//!
//! Reimplements the storage side of MLIR's `sparse_tensor` dialect as used
//! by the ASaP paper: level types (Section 2.2), format descriptors
//! (Figure 1b), and the serialization of coordinate hierarchy trees into
//! segmented `pos`/`crd`/`values` buffers (Section 2.3, Figure 2).
//!
//! The storage invariants checked by [`SparseTensor::check_invariants`]
//! are exactly the ones ASaP's semantic bound computation relies on:
//! `pos` has one segment per parent node, and its last element is the
//! total node (= coordinate-buffer) count of the level.

pub mod format;
pub mod level;
pub mod storage;
pub mod values;

pub use format::Format;
pub use level::LevelType;
pub use storage::{
    read_f64, read_i8, CooTensor, DenseTensor, LevelStorage, SparseTensor, TensorBuffers,
};
pub use values::{IndexWidth, ValueKind, Values};
