//! Storage-level types, mirroring MLIR sparse tensor level types.
//!
//! A sparse tensor format maps each tensor dimension to a *level* of the
//! coordinate hierarchy tree (paper Section 2.2). Each level has a type
//! that determines how its nodes are stored (Section 2.3): dense levels
//! need no buffers, compressed levels use `pos`/`crd` buffer pairs, and
//! singleton levels use a `crd` buffer only.

use std::fmt;

/// The type of one storage level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelType {
    /// All coordinates `0..dim` are materialized implicitly; no buffers.
    /// CSR's row level.
    Dense,
    /// Only coordinates with children are stored, in a segmented `crd`
    /// buffer delimited by a `pos` buffer.
    ///
    /// `unique` distinguishes CSR/DCSR levels (each coordinate appears once
    /// per segment) from COO's first level (one entry per non-zero, so a
    /// row with k non-zeros repeats k times and sparsified code must
    /// deduplicate with a while-loop — paper Fig. 3a).
    ///
    /// `ordered` records whether coordinates within a segment are sorted;
    /// sparsification relies on it when choosing merge-based coiteration.
    Compressed { unique: bool, ordered: bool },
    /// Exactly one child per parent node; `crd` buffer only, no `pos`.
    /// COO's trailing levels.
    Singleton,
}

impl LevelType {
    /// Standard compressed level: unique and ordered (CSR/CSC/DCSR/CSF).
    pub const fn compressed() -> LevelType {
        LevelType::Compressed {
            unique: true,
            ordered: true,
        }
    }

    /// COO-style first level: ordered but with duplicates.
    pub const fn compressed_nonunique() -> LevelType {
        LevelType::Compressed {
            unique: false,
            ordered: true,
        }
    }

    /// Whether this level stores a `pos` buffer.
    pub fn has_pos(self) -> bool {
        matches!(self, LevelType::Compressed { .. })
    }

    /// Whether this level stores a `crd` buffer.
    pub fn has_crd(self) -> bool {
        matches!(self, LevelType::Compressed { .. } | LevelType::Singleton)
    }

    /// Whether coordinates are unique within a segment (dense and
    /// singleton levels are trivially unique).
    pub fn is_unique(self) -> bool {
        match self {
            LevelType::Compressed { unique, .. } => unique,
            LevelType::Dense | LevelType::Singleton => true,
        }
    }

    /// Whether iteration over this level supports constant-time `locate`
    /// (random access by coordinate). Only dense levels do; this is what
    /// drives the sparsifier's iterate-and-locate coiteration choice.
    pub fn has_locate(self) -> bool {
        matches!(self, LevelType::Dense)
    }

    /// MLIR attribute syntax for this level.
    pub fn mlir_name(self) -> String {
        match self {
            LevelType::Dense => "dense".to_string(),
            LevelType::Compressed {
                unique: true,
                ordered: true,
            } => "compressed".to_string(),
            LevelType::Compressed { unique, ordered } => {
                let mut props = Vec::new();
                if !unique {
                    props.push("nonunique");
                }
                if !ordered {
                    props.push("nonordered");
                }
                format!("compressed({})", props.join(", "))
            }
            LevelType::Singleton => "singleton".to_string(),
        }
    }
}

impl fmt::Display for LevelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mlir_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_requirements_by_level_type() {
        assert!(!LevelType::Dense.has_pos());
        assert!(!LevelType::Dense.has_crd());
        assert!(LevelType::compressed().has_pos());
        assert!(LevelType::compressed().has_crd());
        assert!(!LevelType::Singleton.has_pos());
        assert!(LevelType::Singleton.has_crd());
    }

    #[test]
    fn uniqueness() {
        assert!(LevelType::compressed().is_unique());
        assert!(!LevelType::compressed_nonunique().is_unique());
        assert!(LevelType::Dense.is_unique());
        assert!(LevelType::Singleton.is_unique());
    }

    #[test]
    fn locate_only_on_dense() {
        assert!(LevelType::Dense.has_locate());
        assert!(!LevelType::compressed().has_locate());
        assert!(!LevelType::Singleton.has_locate());
    }

    #[test]
    fn mlir_names() {
        assert_eq!(LevelType::Dense.mlir_name(), "dense");
        assert_eq!(LevelType::compressed().mlir_name(), "compressed");
        assert_eq!(
            LevelType::compressed_nonunique().mlir_name(),
            "compressed(nonunique)"
        );
        assert_eq!(LevelType::Singleton.mlir_name(), "singleton");
    }
}
