//! Non-zero value storage.
//!
//! The paper's evaluation uses 64-bit floats for general matrices and
//! single-byte values with boolean arithmetic (`arith.ori`/`arith.andi`)
//! for binary matrices (Section 4.2). [`Values`] carries either.

use asap_ir::BufferData;

/// The element kind of a tensor's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit IEEE floats with `mulf`/`addf`.
    F64,
    /// Single-byte boolean values with `andi`/`ori` (binary matrices).
    I8,
}

impl ValueKind {
    /// The IR scalar type of this kind.
    pub fn ir_type(self) -> asap_ir::Type {
        match self {
            ValueKind::F64 => asap_ir::Type::F64,
            ValueKind::I8 => asap_ir::Type::I8,
        }
    }

    /// Bytes per element.
    pub fn byte_width(self) -> usize {
        match self {
            ValueKind::F64 => 8,
            ValueKind::I8 => 1,
        }
    }
}

/// A homogeneous array of non-zero values.
#[derive(Debug, Clone, PartialEq)]
pub enum Values {
    F64(Vec<f64>),
    I8(Vec<i8>),
}

impl Values {
    pub fn kind(&self) -> ValueKind {
        match self {
            Values::F64(_) => ValueKind::F64,
            Values::I8(_) => ValueKind::I8,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Values::F64(v) => v.len(),
            Values::I8(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty array of the given kind.
    pub fn empty(kind: ValueKind) -> Values {
        match kind {
            ValueKind::F64 => Values::F64(Vec::new()),
            ValueKind::I8 => Values::I8(Vec::new()),
        }
    }

    /// A zero-filled array (additive identity of the kind's semiring).
    pub fn zeros(kind: ValueKind, n: usize) -> Values {
        match kind {
            ValueKind::F64 => Values::F64(vec![0.0; n]),
            ValueKind::I8 => Values::I8(vec![0; n]),
        }
    }

    /// Append the value at `src[i]`.
    pub fn push_from(&mut self, src: &Values, i: usize) {
        match (self, src) {
            (Values::F64(d), Values::F64(s)) => d.push(s[i]),
            (Values::I8(d), Values::I8(s)) => d.push(s[i]),
            _ => panic!("value kind mismatch"),
        }
    }

    /// Combine the value at `src[i]` into the last element (used when
    /// deduplicating repeated coordinates: `+` for floats, `|` for
    /// booleans — the additive op of each semiring).
    pub fn accumulate_last(&mut self, src: &Values, i: usize) {
        match (self, src) {
            (Values::F64(d), Values::F64(s)) => *d.last_mut().expect("non-empty") += s[i],
            (Values::I8(d), Values::I8(s)) => *d.last_mut().expect("non-empty") |= s[i],
            _ => panic!("value kind mismatch"),
        }
    }

    /// Convert into interpreter buffer data.
    pub fn to_buffer_data(&self) -> BufferData {
        match self {
            Values::F64(v) => BufferData::F64(v.clone()),
            Values::I8(v) => BufferData::I8(v.clone()),
        }
    }
}

/// Width of position/coordinate buffer elements. The paper uses 32-bit
/// indices when non-zero counts permit, otherwise 64-bit (Section 4.2) —
/// halving coordinate-buffer footprint and hence memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexWidth {
    U32,
    U64,
}

impl IndexWidth {
    /// Choose the narrowest width able to hold every position (≤ nnz) and
    /// coordinate (< max dim).
    pub fn choose(nnz: usize, max_dim: usize) -> IndexWidth {
        if nnz <= u32::MAX as usize && max_dim <= u32::MAX as usize {
            IndexWidth::U32
        } else {
            IndexWidth::U64
        }
    }

    pub fn byte_width(self) -> usize {
        match self {
            IndexWidth::U32 => 4,
            IndexWidth::U64 => 8,
        }
    }

    /// Materialize an index array at this width.
    pub fn to_buffer_data(self, data: &[usize]) -> BufferData {
        match self {
            IndexWidth::U32 => BufferData::I32(data.iter().map(|&x| x as i32).collect()),
            IndexWidth::U64 => BufferData::Index(data.to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_adds_floats() {
        let mut v = Values::F64(vec![1.0]);
        v.accumulate_last(&Values::F64(vec![0.0, 2.5]), 1);
        assert_eq!(v, Values::F64(vec![3.5]));
    }

    #[test]
    fn accumulate_ors_booleans() {
        let mut v = Values::I8(vec![0]);
        v.accumulate_last(&Values::I8(vec![1]), 0);
        assert_eq!(v, Values::I8(vec![1]));
    }

    #[test]
    fn index_width_choice() {
        assert_eq!(IndexWidth::choose(100, 100), IndexWidth::U32);
        assert_eq!(
            IndexWidth::choose(u32::MAX as usize + 1, 10),
            IndexWidth::U64
        );
        assert_eq!(
            IndexWidth::choose(10, u32::MAX as usize + 1),
            IndexWidth::U64
        );
    }

    #[test]
    fn buffer_data_widths() {
        let d = IndexWidth::U32.to_buffer_data(&[1, 2, 3]);
        assert_eq!(d.elem_bytes(), 4);
        let d = IndexWidth::U64.to_buffer_data(&[1, 2, 3]);
        assert_eq!(d.elem_bytes(), 8);
    }

    #[test]
    fn zeros_and_kind() {
        assert_eq!(Values::zeros(ValueKind::F64, 3).len(), 3);
        assert_eq!(Values::zeros(ValueKind::I8, 2).kind(), ValueKind::I8);
        assert!(Values::empty(ValueKind::F64).is_empty());
    }
}
