//! Sparse tensor storage: construction of coordinate hierarchy trees and
//! their serialization into segmented `pos`/`crd`/`values` buffers (paper
//! Sections 2.2–2.3).

use crate::format::Format;
use crate::level::LevelType;
use crate::values::{IndexWidth, ValueKind, Values};
use asap_ir::{AsapError, BufferData, Buffers};
use std::ops::Range;

/// A tensor in coordinate form: the universal input representation.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    /// Shape, in tensor-dimension order.
    pub dims: Vec<usize>,
    /// Flattened coordinates: entry `i` occupies
    /// `coords[i*rank .. (i+1)*rank]`, one coordinate per tensor dimension.
    pub coords: Vec<usize>,
    pub values: Values,
}

impl CooTensor {
    /// As [`CooTensor::try_new`], panicking on invalid input. Use this when
    /// the entries come from trusted code (generators, conversions);
    /// untrusted or fuzzed input should go through `try_new`.
    pub fn new(dims: Vec<usize>, coords: Vec<usize>, values: Values) -> CooTensor {
        match CooTensor::try_new(dims, coords, values) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validating constructor: rejects coordinate/value length mismatches
    /// and out-of-range coordinates with a typed error instead of panicking.
    pub fn try_new(
        dims: Vec<usize>,
        coords: Vec<usize>,
        values: Values,
    ) -> Result<CooTensor, AsapError> {
        let rank = dims.len();
        if coords.len() != values.len() * rank {
            return Err(AsapError::storage(format!(
                "coords/values mismatch: {} coordinates for {} values of rank {rank}",
                coords.len(),
                values.len()
            )));
        }
        let t = CooTensor {
            dims,
            coords,
            values,
        };
        for i in 0..t.nnz() {
            for (d, &c) in t.coord(i).iter().enumerate() {
                if c >= t.dims[d] {
                    return Err(AsapError::storage(format!(
                        "entry {i}: coordinate {c} out of bounds in dim {d} (size {})",
                        t.dims[d]
                    )));
                }
            }
        }
        Ok(t)
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The coordinates of entry `i`.
    pub fn coord(&self, i: usize) -> &[usize] {
        let r = self.rank();
        &self.coords[i * r..(i + 1) * r]
    }
}

/// Per-level serialized buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelStorage {
    /// Position buffer (`pos`): segment boundaries, one segment per parent
    /// node; present iff the level type has one. Length = parents + 1.
    pub pos: Vec<usize>,
    /// Coordinate buffer (`crd`): one entry per node; present iff the
    /// level type has one.
    pub crd: Vec<usize>,
}

/// A sparse tensor stored in a given [`Format`].
#[derive(Debug, Clone)]
pub struct SparseTensor {
    format: Format,
    dims: Vec<usize>,
    levels: Vec<LevelStorage>,
    values: Values,
    index_width: IndexWidth,
}

/// Buffer ids of a tensor installed into an interpreter [`Buffers`] arena.
#[derive(Debug, Clone)]
pub struct TensorBuffers {
    /// Per level: id of the `pos` buffer, if the level has one.
    pub pos: Vec<Option<u32>>,
    /// Per level: id of the `crd` buffer, if the level has one.
    pub crd: Vec<Option<u32>>,
    /// Id of the values buffer.
    pub vals: u32,
}

impl SparseTensor {
    /// As [`SparseTensor::try_from_coo`], panicking on a rank mismatch or a
    /// tensor that cannot be stored in `format` (e.g. a singleton level
    /// with more than one entry per parent).
    pub fn from_coo(coo: &CooTensor, format: Format) -> SparseTensor {
        match SparseTensor::try_from_coo(coo, format) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build from coordinate form. Entries may be unsorted and contain
    /// duplicates; duplicates are combined with the value kind's additive
    /// op (`+` / `|`). Returns a typed error if the tensor's rank does not
    /// match the format or the entries violate a level type's requirements.
    pub fn try_from_coo(coo: &CooTensor, format: Format) -> Result<SparseTensor, AsapError> {
        if coo.rank() != format.rank() {
            return Err(AsapError::storage(format!(
                "rank mismatch: tensor has rank {}, format {format} has rank {}",
                coo.rank(),
                format.rank()
            )));
        }
        let rank = coo.rank();
        let nnz = coo.nnz();

        // Order entries lexicographically by *level* coordinates.
        let mut order: Vec<usize> = (0..nnz).collect();
        let lvl_key = |i: usize| -> Vec<usize> {
            (0..rank)
                .map(|l| coo.coord(i)[format.dim_of_level(l)])
                .collect()
        };
        order.sort_by_key(|&i| lvl_key(i));

        // Deduplicate, accumulating values; store level-ordered coords.
        let mut lvl_coords: Vec<usize> = Vec::with_capacity(nnz * rank);
        let mut values = Values::empty(coo.values.kind());
        for &i in &order {
            let key = lvl_key(i);
            let dup = !values.is_empty() && lvl_coords[lvl_coords.len() - rank..] == key[..];
            if dup {
                values.accumulate_last(&coo.values, i);
            } else {
                lvl_coords.extend_from_slice(&key);
                values.push_from(&coo.values, i);
            }
        }
        let n = values.len();

        // Serialize level by level. `segments` are ranges of entries under
        // each node of the previous level (root: one segment of all).
        #[allow(clippy::single_range_in_vec_init)] // really one Range, not vec![0; n]
        let mut segments: Vec<Range<usize>> = vec![0..n];
        let mut levels: Vec<LevelStorage> = Vec::with_capacity(rank);
        for l in 0..rank {
            let dim = coo.dims[format.dim_of_level(l)];
            let coord_at = |e: usize| lvl_coords[e * rank + l];
            let mut st = LevelStorage::default();
            let mut next_segments: Vec<Range<usize>> = Vec::new();
            match format.levels()[l] {
                LevelType::Dense => {
                    // One child per coordinate value per parent, including
                    // empty ones; no buffers.
                    for seg in &segments {
                        let mut e = seg.start;
                        for c in 0..dim {
                            let start = e;
                            while e < seg.end && coord_at(e) == c {
                                e += 1;
                            }
                            next_segments.push(start..e);
                        }
                        debug_assert_eq!(e, seg.end, "entries outside dim range");
                    }
                }
                LevelType::Compressed { unique: true, .. } => {
                    st.pos.push(0);
                    for seg in &segments {
                        let mut e = seg.start;
                        while e < seg.end {
                            let c = coord_at(e);
                            let start = e;
                            while e < seg.end && coord_at(e) == c {
                                e += 1;
                            }
                            st.crd.push(c);
                            next_segments.push(start..e);
                        }
                        st.pos.push(st.crd.len());
                    }
                }
                LevelType::Compressed { unique: false, .. } => {
                    // One node per entry (duplicates retained), as in COO's
                    // first level.
                    st.pos.push(0);
                    for seg in &segments {
                        for e in seg.clone() {
                            st.crd.push(coord_at(e));
                            next_segments.push(e..e + 1);
                        }
                        st.pos.push(st.crd.len());
                    }
                }
                LevelType::Singleton => {
                    for seg in &segments {
                        if seg.len() != 1 {
                            return Err(AsapError::storage(format!(
                                "level {l}: singleton level requires exactly one entry \
                                 per parent, got {}",
                                seg.len()
                            )));
                        }
                        st.crd.push(coord_at(seg.start));
                        next_segments.push(seg.clone());
                    }
                }
            }
            levels.push(st);
            segments = next_segments;
        }

        let max_dim = coo.dims.iter().copied().max().unwrap_or(0);
        Ok(SparseTensor {
            format,
            dims: coo.dims.clone(),
            levels,
            values,
            index_width: IndexWidth::choose(n, max_dim),
        })
    }

    pub fn format(&self) -> &Format {
        &self.format
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Dimension size of the given *level*.
    pub fn level_dim(&self, l: usize) -> usize {
        self.dims[self.format.dim_of_level(l)]
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn values(&self) -> &Values {
        &self.values
    }

    pub fn value_kind(&self) -> ValueKind {
        self.values.kind()
    }

    pub fn level(&self, l: usize) -> &LevelStorage {
        &self.levels[l]
    }

    /// Mutable access to a level's raw `pos`/`crd` buffers. This exists
    /// for external deserializers and adversarial tests that need to
    /// build storages [`check_invariants`](SparseTensor::check_invariants)
    /// should *reject*; anything that mutates through it must re-validate
    /// before handing the tensor to the sparsifier.
    pub fn level_mut(&mut self, l: usize) -> &mut LevelStorage {
        &mut self.levels[l]
    }

    pub fn index_width(&self) -> IndexWidth {
        self.index_width
    }

    /// Override the index width (tests exercise both).
    pub fn set_index_width(&mut self, w: IndexWidth) {
        self.index_width = w;
    }

    /// Number of nodes at level `l` (root = level "-1" has 1 node).
    ///
    /// This is the denominator of the paper's `crd_buf_sz` recursion: for a
    /// compressed level it equals `crd.len()`, i.e. the size of the
    /// coordinate buffer ASaP bounds its look-ahead load with.
    pub fn node_count(&self, l: usize) -> usize {
        let parent = if l == 0 { 1 } else { self.node_count(l - 1) };
        match self.format.levels()[l] {
            LevelType::Dense => parent * self.level_dim(l),
            LevelType::Compressed { .. } | LevelType::Singleton => self.levels[l].crd.len(),
        }
    }

    /// Total bytes of the serialized representation (pos + crd + values),
    /// the "memory footprint" used for benchmark matrix selection.
    pub fn footprint_bytes(&self) -> usize {
        let iw = self.index_width.byte_width();
        let mut total = self.values.len() * self.values.kind().byte_width();
        for st in &self.levels {
            total += (st.pos.len() + st.crd.len()) * iw;
        }
        total
    }

    /// Check the structural invariants of the segmented storage that both
    /// sparsification and ASaP's bound computation rely on.
    pub fn check_invariants(&self) -> Result<(), AsapError> {
        let mut parent = 1usize;
        for (l, st) in self.levels.iter().enumerate() {
            let lt = self.format.levels()[l];
            match lt {
                LevelType::Dense => {
                    if !st.pos.is_empty() || !st.crd.is_empty() {
                        return Err(AsapError::storage(format!(
                            "level {l}: dense level has buffers"
                        )));
                    }
                    parent *= self.level_dim(l);
                }
                LevelType::Compressed { unique, .. } => {
                    if st.pos.len() != parent + 1 {
                        return Err(AsapError::storage(format!(
                            "level {l}: pos len {} != parents+1 = {}",
                            st.pos.len(),
                            parent + 1
                        )));
                    }
                    if st.pos[0] != 0 || *st.pos.last().expect("non-empty") != st.crd.len() {
                        return Err(AsapError::storage(format!(
                            "level {l}: pos endpoints wrong"
                        )));
                    }
                    if st.pos.windows(2).any(|w| w[0] > w[1]) {
                        return Err(AsapError::storage(format!("level {l}: pos not monotone")));
                    }
                    for w in st.pos.windows(2) {
                        let seg = &st.crd[w[0]..w[1]];
                        let ok = if unique {
                            seg.windows(2).all(|s| s[0] < s[1])
                        } else {
                            seg.windows(2).all(|s| s[0] <= s[1])
                        };
                        if !ok {
                            return Err(AsapError::storage(format!(
                                "level {l}: segment not sorted/unique"
                            )));
                        }
                    }
                    if st.crd.iter().any(|&c| c >= self.level_dim(l)) {
                        return Err(AsapError::storage(format!(
                            "level {l}: coordinate out of range"
                        )));
                    }
                    parent = st.crd.len();
                }
                LevelType::Singleton => {
                    if !st.pos.is_empty() {
                        return Err(AsapError::storage(format!("level {l}: singleton has pos")));
                    }
                    if st.crd.len() != parent {
                        return Err(AsapError::storage(format!(
                            "level {l}: singleton crd len {} != parents {}",
                            st.crd.len(),
                            parent
                        )));
                    }
                    if st.crd.iter().any(|&c| c >= self.level_dim(l)) {
                        return Err(AsapError::storage(format!(
                            "level {l}: coordinate out of range"
                        )));
                    }
                }
            }
        }
        let leaves = self.node_count(self.format.rank() - 1);
        if leaves != self.values.len() {
            return Err(AsapError::storage(format!(
                "leaf count {leaves} != values {}",
                self.values.len()
            )));
        }
        Ok(())
    }

    /// Visit every stored entry in storage order as
    /// `(tensor-dim coordinates, value index)`.
    pub fn for_each_entry(&self, mut f: impl FnMut(&[usize], usize)) {
        let rank = self.format.rank();
        let mut coords = vec![0usize; rank];
        self.walk_level(0, 0..1, &mut coords, &mut f);
    }

    fn walk_level(
        &self,
        l: usize,
        nodes: Range<usize>,
        coords: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize], usize),
    ) {
        let rank = self.format.rank();
        let dim_idx = self.format.dim_of_level(l);
        match self.format.levels()[l] {
            LevelType::Dense => {
                let d = self.level_dim(l);
                for node in nodes {
                    for c in 0..d {
                        coords[dim_idx] = c;
                        let child = node * d + c;
                        if l + 1 == rank {
                            f(coords, child);
                        } else {
                            self.walk_level(l + 1, child..child + 1, coords, f);
                        }
                    }
                }
            }
            LevelType::Compressed { .. } => {
                let st = &self.levels[l];
                for node in nodes {
                    let (start, end) = (st.pos[node], st.pos[node + 1]);
                    for child in start..end {
                        coords[dim_idx] = st.crd[child];
                        if l + 1 == rank {
                            f(coords, child);
                        } else {
                            self.walk_level(l + 1, child..child + 1, coords, f);
                        }
                    }
                }
            }
            LevelType::Singleton => {
                let st = &self.levels[l];
                for node in nodes {
                    coords[dim_idx] = st.crd[node];
                    if l + 1 == rank {
                        f(coords, node);
                    } else {
                        self.walk_level(l + 1, node..node + 1, coords, f);
                    }
                }
            }
        }
    }

    /// Convert back to (sorted, deduplicated) coordinate form.
    pub fn to_coo(&self) -> CooTensor {
        let rank = self.format.rank();
        let mut coords = Vec::with_capacity(self.nnz() * rank);
        let mut values = Values::empty(self.values.kind());
        self.for_each_entry(|c, vi| {
            coords.extend_from_slice(c);
            values.push_from(&self.values, vi);
        });
        CooTensor::new(self.dims.clone(), coords, values)
    }

    /// Dense row-major rendering (f64 tensors only; for reference checks).
    pub fn to_dense_f64(&self) -> Vec<f64> {
        let size: usize = self.dims.iter().product();
        let mut out = vec![0.0; size];
        let vals = match &self.values {
            Values::F64(v) => v,
            _ => panic!("to_dense_f64 on non-f64 tensor"),
        };
        self.for_each_entry(|c, vi| {
            let mut idx = 0;
            for (d, &cd) in c.iter().enumerate() {
                idx = idx * self.dims[d] + cd;
            }
            out[idx] += vals[vi];
        });
        out
    }

    /// Install the tensor's buffers into an interpreter arena. Position and
    /// coordinate buffers are materialized at the tensor's index width.
    pub fn install(&self, bufs: &mut Buffers) -> TensorBuffers {
        let mut pos = Vec::with_capacity(self.levels.len());
        let mut crd = Vec::with_capacity(self.levels.len());
        for (l, st) in self.levels.iter().enumerate() {
            let lt = self.format.levels()[l];
            pos.push(if lt.has_pos() {
                Some(bufs.add(self.index_width.to_buffer_data(&st.pos)))
            } else {
                None
            });
            crd.push(if lt.has_crd() {
                Some(bufs.add(self.index_width.to_buffer_data(&st.crd)))
            } else {
                None
            });
        }
        let vals = bufs.add(self.values.to_buffer_data());
        TensorBuffers { pos, crd, vals }
    }

    /// Segment lengths at the innermost level (e.g. row lengths for CSR) —
    /// the distribution that determines whether a matrix falls into the
    /// short-inner-loop regime where ASaP beats loop-bound prefetching.
    pub fn inner_segment_lengths(&self) -> Vec<usize> {
        let last = self.format.rank() - 1;
        let st = &self.levels[last];
        if st.pos.is_empty() {
            return Vec::new();
        }
        st.pos.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Convenience: a dense tensor to be passed as a plain buffer operand.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    pub dims: Vec<usize>,
    pub values: Values,
}

impl DenseTensor {
    pub fn zeros(kind: ValueKind, dims: Vec<usize>) -> DenseTensor {
        let n = dims.iter().product();
        DenseTensor {
            dims,
            values: Values::zeros(kind, n),
        }
    }

    pub fn from_f64(dims: Vec<usize>, data: Vec<f64>) -> DenseTensor {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        DenseTensor {
            dims,
            values: Values::F64(data),
        }
    }

    pub fn from_i8(dims: Vec<usize>, data: Vec<i8>) -> DenseTensor {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        DenseTensor {
            dims,
            values: Values::I8(data),
        }
    }

    pub fn install(&self, bufs: &mut Buffers) -> u32 {
        bufs.add(self.values.to_buffer_data())
    }

    pub fn as_f64(&self) -> &[f64] {
        match &self.values {
            Values::F64(v) => v,
            _ => panic!("not an f64 tensor"),
        }
    }

    pub fn as_i8(&self) -> &[i8] {
        match &self.values {
            Values::I8(v) => v,
            _ => panic!("not an i8 tensor"),
        }
    }
}

/// Read back a buffer produced by [`DenseTensor::install`] after a run.
pub fn read_f64(bufs: &Buffers, id: u32) -> Vec<f64> {
    match &bufs.get(id).data {
        BufferData::F64(v) => v.clone(),
        other => panic!("buffer is not f64: {other:?}"),
    }
}

/// As [`read_f64`] for i8 buffers.
pub fn read_i8(bufs: &Buffers, id: u32) -> Vec<i8> {
    match &bufs.get(id).data {
        BufferData::I8(v) => v.clone(),
        other => panic!("buffer is not i8: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3×3 matrix of the paper's Figure 2:
    /// row 0: cols 0,2; row 1: empty; row 2: col 2.
    fn paper_matrix() -> CooTensor {
        CooTensor::new(
            vec![3, 3],
            vec![0, 0, 0, 2, 2, 2],
            Values::F64(vec![1.0, 2.0, 3.0]),
        )
    }

    #[test]
    fn csr_matches_figure_2b() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::csr());
        t.check_invariants().unwrap();
        // Dense level 0: no buffers.
        assert!(t.level(0).pos.is_empty() && t.level(0).crd.is_empty());
        // Bj_pos = [0, 2, 2, 3]; Bj_crd = [0, 2, 2].
        assert_eq!(t.level(1).pos, vec![0, 2, 2, 3]);
        assert_eq!(t.level(1).crd, vec![0, 2, 2]);
        assert_eq!(t.node_count(1), 3);
    }

    #[test]
    fn coo_matches_figure_2a() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::coo());
        t.check_invariants().unwrap();
        // Bi_pos = [0, 3]; Bi_crd = [0, 0, 2] (row 0 repeated, row 1 absent).
        assert_eq!(t.level(0).pos, vec![0, 3]);
        assert_eq!(t.level(0).crd, vec![0, 0, 2]);
        // Singleton level: Bj_crd = [0, 2, 2].
        assert_eq!(t.level(1).crd, vec![0, 2, 2]);
        assert!(t.level(1).pos.is_empty());
    }

    #[test]
    fn dcsr_matches_figure_2c() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::dcsr());
        t.check_invariants().unwrap();
        // Bi_pos = [0, 2]; Bi_crd = [0, 2] (empty row 1 eliminated).
        assert_eq!(t.level(0).pos, vec![0, 2]);
        assert_eq!(t.level(0).crd, vec![0, 2]);
        // Bj_pos = [0, 2, 3]; Bj_crd = [0, 2, 2].
        assert_eq!(t.level(1).pos, vec![0, 2, 3]);
        assert_eq!(t.level(1).crd, vec![0, 2, 2]);
    }

    #[test]
    fn csc_stores_columns_first() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::csc());
        t.check_invariants().unwrap();
        // Columns: col 0 has row 0; col 1 empty; col 2 has rows 0,2.
        assert_eq!(t.level(1).pos, vec![0, 1, 1, 3]);
        assert_eq!(t.level(1).crd, vec![0, 0, 2]);
    }

    #[test]
    fn duplicates_are_accumulated() {
        let coo = CooTensor::new(
            vec![2, 2],
            vec![0, 1, 0, 1, 1, 0],
            Values::F64(vec![1.5, 2.5, 4.0]),
        );
        let t = SparseTensor::from_coo(&coo, Format::csr());
        assert_eq!(t.nnz(), 2);
        assert_eq!(*t.values(), Values::F64(vec![4.0, 4.0]));
    }

    #[test]
    fn boolean_duplicates_are_ored() {
        let coo = CooTensor::new(vec![2, 2], vec![0, 0, 0, 0], Values::I8(vec![1, 1]));
        let t = SparseTensor::from_coo(&coo, Format::csr());
        assert_eq!(*t.values(), Values::I8(vec![1]));
    }

    #[test]
    fn roundtrip_through_every_2d_format() {
        let coo = CooTensor::new(
            vec![4, 5],
            vec![0, 1, 0, 4, 1, 3, 3, 0, 3, 2],
            Values::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
        );
        for fmt in [
            Format::csr(),
            Format::csc(),
            Format::coo(),
            Format::dcsr(),
            Format::dcsc(),
            Format::csf(2),
        ] {
            let t = SparseTensor::from_coo(&coo, fmt.clone());
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{fmt}: {e}"));
            let back = t.to_coo();
            // to_coo sorts by the format's level order; compare as dense.
            assert_eq!(
                t.to_dense_f64(),
                SparseTensor::from_coo(&back, Format::csr()).to_dense_f64(),
                "roundtrip mismatch for {fmt}"
            );
            assert_eq!(back.nnz(), 5, "{fmt}");
        }
    }

    #[test]
    fn empty_tensor_is_wellformed() {
        let coo = CooTensor::new(vec![3, 3], vec![], Values::F64(vec![]));
        for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
            let t = SparseTensor::from_coo(&coo, fmt);
            t.check_invariants().unwrap();
            assert_eq!(t.nnz(), 0);
        }
    }

    #[test]
    fn csf_3d_tensor() {
        // 2x2x2 tensor with entries (0,0,1), (0,1,0), (1,1,1).
        let coo = CooTensor::new(
            vec![2, 2, 2],
            vec![0, 0, 1, 0, 1, 0, 1, 1, 1],
            Values::F64(vec![1.0, 2.0, 3.0]),
        );
        let t = SparseTensor::from_coo(&coo, Format::csf(3));
        t.check_invariants().unwrap();
        assert_eq!(t.level(0).pos, vec![0, 2]);
        assert_eq!(t.level(0).crd, vec![0, 1]);
        assert_eq!(t.level(1).pos, vec![0, 2, 3]);
        assert_eq!(t.level(1).crd, vec![0, 1, 1]);
        assert_eq!(t.level(2).pos, vec![0, 1, 2, 3]);
        assert_eq!(t.level(2).crd, vec![1, 0, 1]);
        // crd_buf_sz recursion: l0 -> pos[1]=2, l1 -> pos[2]=3, l2 -> pos[3]=3.
        assert_eq!(t.node_count(0), 2);
        assert_eq!(t.node_count(1), 3);
        assert_eq!(t.node_count(2), 3);
    }

    #[test]
    fn footprint_counts_pos_crd_vals() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::csr());
        // u32 indices: pos 4*4 + crd 3*4 = 28; values 3*8 = 24.
        assert_eq!(t.index_width(), IndexWidth::U32);
        assert_eq!(t.footprint_bytes(), 28 + 24);
    }

    #[test]
    fn inner_segment_lengths_csr() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::csr());
        assert_eq!(t.inner_segment_lengths(), vec![2, 0, 1]);
    }

    #[test]
    fn install_and_read_back() {
        let t = SparseTensor::from_coo(&paper_matrix(), Format::csr());
        let mut bufs = Buffers::new();
        let tb = t.install(&mut bufs);
        assert!(tb.pos[0].is_none());
        let pos_id = tb.pos[1].expect("csr level 1 has pos");
        match &bufs.get(pos_id).data {
            BufferData::I32(v) => assert_eq!(v, &vec![0, 2, 2, 3]),
            other => panic!("expected i32 pos buffer, got {other:?}"),
        }
        match &bufs.get(tb.vals).data {
            BufferData::F64(v) => assert_eq!(v, &vec![1.0, 2.0, 3.0]),
            other => panic!("expected f64 vals, got {other:?}"),
        }
    }

    #[test]
    fn wide_index_install() {
        let mut t = SparseTensor::from_coo(&paper_matrix(), Format::csr());
        t.set_index_width(IndexWidth::U64);
        let mut bufs = Buffers::new();
        let tb = t.install(&mut bufs);
        let crd_id = tb.crd[1].expect("csr has crd");
        assert_eq!(bufs.get(crd_id).data.elem_bytes(), 8);
    }

    #[test]
    fn dense_tensor_roundtrip() {
        let d = DenseTensor::from_f64(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut bufs = Buffers::new();
        let id = d.install(&mut bufs);
        assert_eq!(read_f64(&bufs, id), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_coordinates() {
        CooTensor::new(vec![2, 2], vec![0, 5], Values::F64(vec![1.0]));
    }

    #[test]
    fn try_new_reports_typed_storage_errors() {
        let e = CooTensor::try_new(vec![2, 2], vec![0, 5], Values::F64(vec![1.0])).unwrap_err();
        assert_eq!(e.kind(), "storage");
        assert!(e.to_string().contains("out of bounds"), "{e}");

        let e = CooTensor::try_new(vec![2, 2], vec![0], Values::F64(vec![1.0])).unwrap_err();
        assert_eq!(e.kind(), "storage");
        assert!(e.to_string().contains("mismatch"), "{e}");
    }

    #[test]
    fn try_from_coo_rejects_rank_mismatch() {
        let coo = CooTensor::new(vec![4], vec![1], Values::F64(vec![1.0]));
        let e = SparseTensor::try_from_coo(&coo, Format::csr()).unwrap_err();
        assert_eq!(e.kind(), "storage");
        assert!(e.to_string().contains("rank mismatch"), "{e}");
    }

    #[test]
    fn try_from_coo_rejects_overfull_singleton_level() {
        // Dense-then-singleton can hold at most one entry per row; give
        // it a row with two.
        let fmt = crate::format::Format::new(
            "DS",
            vec![LevelType::Dense, LevelType::Singleton],
            vec![0, 1],
        );
        let coo = CooTensor::new(vec![2, 2], vec![0, 0, 0, 1], Values::F64(vec![1.0, 2.0]));
        let e = SparseTensor::try_from_coo(&coo, fmt).unwrap_err();
        assert_eq!(e.kind(), "storage");
        assert!(e.to_string().contains("singleton"), "{e}");
    }
}
