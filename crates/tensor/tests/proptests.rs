//! Property-based tests of the storage layer, including 3-D CSF tensors:
//! invariants hold and densification round-trips for arbitrary inputs.

use asap_tensor::{CooTensor, Format, IndexWidth, LevelType, SparseTensor, Values};
use proptest::prelude::*;

fn coo3_strategy() -> impl Strategy<Value = CooTensor> {
    (1usize..6, 1usize..6, 1usize..6)
        .prop_flat_map(|(a, b, c)| {
            let entry = (0..a, 0..b, 0..c, -3.0f64..3.0);
            (Just((a, b, c)), proptest::collection::vec(entry, 0..30))
        })
        .prop_map(|((a, b, c), entries)| {
            let mut coords = Vec::new();
            let mut vals = Vec::new();
            for (i, j, k, v) in entries {
                coords.extend_from_slice(&[i, j, k]);
                vals.push(v);
            }
            CooTensor::new(vec![a, b, c], coords, Values::F64(vals))
        })
}

fn dense3(t: &SparseTensor) -> Vec<f64> {
    t.to_dense_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csf3_invariants_and_roundtrip(coo in coo3_strategy()) {
        let t = SparseTensor::from_coo(&coo, Format::csf(3));
        prop_assert!(t.check_invariants().is_ok());
        // Dense rendering equals accumulation over the raw entries.
        let mut want = vec![0.0; coo.dims.iter().product()];
        for e in 0..coo.nnz() {
            let c = coo.coord(e);
            let idx = (c[0] * coo.dims[1] + c[1]) * coo.dims[2] + c[2];
            if let Values::F64(v) = &coo.values {
                want[idx] += v[e];
            }
        }
        prop_assert_eq!(dense3(&t), want);
    }

    #[test]
    fn mixed_level_3d_formats_agree(coo in coo3_strategy()) {
        // Dense-Compressed-Compressed (a "CSR-of-matrices") vs CSF vs
        // Dense-Dense-Compressed: all must densify identically.
        let dcc = Format::new(
            "DCC",
            vec![LevelType::Dense, LevelType::compressed(), LevelType::compressed()],
            vec![0, 1, 2],
        );
        let ddc = Format::new(
            "DDC",
            vec![LevelType::Dense, LevelType::Dense, LevelType::compressed()],
            vec![0, 1, 2],
        );
        let reference = dense3(&SparseTensor::from_coo(&coo, Format::csf(3)));
        for fmt in [dcc, ddc] {
            let t = SparseTensor::from_coo(&coo, fmt.clone());
            prop_assert!(t.check_invariants().is_ok(), "{}", fmt);
            prop_assert_eq!(dense3(&t), reference.clone(), "{}", fmt);
        }
    }

    #[test]
    fn node_counts_are_monotone_under_width_change(coo in coo3_strategy()) {
        let mut t = SparseTensor::from_coo(&coo, Format::csf(3));
        let counts: Vec<usize> = (0..3).map(|l| t.node_count(l)).collect();
        t.set_index_width(IndexWidth::U64);
        // Index width is a storage detail: structure unchanged.
        prop_assert_eq!(counts, (0..3).map(|l| t.node_count(l)).collect::<Vec<_>>());
        prop_assert_eq!(t.node_count(2), t.nnz());
    }

    #[test]
    fn footprint_scales_with_width(coo in coo3_strategy()) {
        prop_assume!(coo.nnz() > 0);
        let mut t = SparseTensor::from_coo(&coo, Format::csf(3));
        t.set_index_width(IndexWidth::U32);
        let narrow = t.footprint_bytes();
        t.set_index_width(IndexWidth::U64);
        let wide = t.footprint_bytes();
        prop_assert!(wide > narrow);
        // Values bytes are unchanged; only index buffers doubled.
        let val_bytes = t.nnz() * 8;
        prop_assert_eq!((wide - val_bytes), 2 * (narrow - val_bytes));
    }

    #[test]
    fn permuted_2d_formats_transpose_consistently(
        entries in proptest::collection::vec((0usize..5, 0usize..7, 0.5f64..2.0), 0..20)
    ) {
        let mut coords = Vec::new();
        let mut vals = Vec::new();
        for (r, c, v) in &entries {
            coords.extend_from_slice(&[*r, *c]);
            vals.push(*v);
        }
        let coo = CooTensor::new(vec![5, 7], coords, Values::F64(vals));
        let csr = SparseTensor::from_coo(&coo, Format::csr());
        let csc = SparseTensor::from_coo(&coo, Format::csc());
        // Same dense content regardless of level permutation.
        prop_assert_eq!(csr.to_dense_f64(), csc.to_dense_f64());
        // CSC's inner segment lengths are column degrees.
        let col_deg_sum: usize = csc.inner_segment_lengths().iter().sum();
        prop_assert_eq!(col_deg_sum, csc.nnz());
    }
}
