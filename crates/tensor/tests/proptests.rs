//! Property-based tests of the storage layer, including 3-D CSF tensors:
//! invariants hold and densification round-trips for arbitrary inputs.
//!
//! Cases are drawn with a local fixed-seed SplitMix64 (the workspace
//! builds without network access, so there is no external
//! property-testing crate); every assertion message names the seed.

use asap_tensor::{CooTensor, Format, IndexWidth, LevelType, SparseTensor, Values};

/// Minimal SplitMix64 — self-contained so this test has no dev-deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random 3-D COO tensor: dims in 1..6 per mode, 0..30 entries with
/// duplicates, values in [-3, 3).
fn random_coo3(seed: u64) -> CooTensor {
    let mut rng = Rng(seed);
    let dims = vec![1 + rng.below(5), 1 + rng.below(5), 1 + rng.below(5)];
    let entries = rng.below(30);
    let mut coords = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..entries {
        for &d in &dims {
            coords.push(rng.below(d));
        }
        vals.push(rng.f64() * 6.0 - 3.0);
    }
    CooTensor::new(dims, coords, Values::F64(vals))
}

fn dense3(t: &SparseTensor) -> Vec<f64> {
    t.to_dense_f64()
}

const CASES: u64 = 64;

#[test]
fn csf3_invariants_and_roundtrip() {
    for seed in 0..CASES {
        let coo = random_coo3(seed);
        let t = SparseTensor::from_coo(&coo, Format::csf(3));
        assert!(t.check_invariants().is_ok(), "seed {seed}");
        // Dense rendering equals accumulation over the raw entries.
        let mut want = vec![0.0; coo.dims.iter().product()];
        for e in 0..coo.nnz() {
            let c = coo.coord(e);
            let idx = (c[0] * coo.dims[1] + c[1]) * coo.dims[2] + c[2];
            if let Values::F64(v) = &coo.values {
                want[idx] += v[e];
            }
        }
        assert_eq!(dense3(&t), want, "seed {seed}");
    }
}

#[test]
fn mixed_level_3d_formats_agree() {
    for seed in 0..CASES {
        let coo = random_coo3(seed ^ 0x3d);
        // Dense-Compressed-Compressed (a "CSR-of-matrices") vs CSF vs
        // Dense-Dense-Compressed: all must densify identically.
        let dcc = Format::new(
            "DCC",
            vec![
                LevelType::Dense,
                LevelType::compressed(),
                LevelType::compressed(),
            ],
            vec![0, 1, 2],
        );
        let ddc = Format::new(
            "DDC",
            vec![LevelType::Dense, LevelType::Dense, LevelType::compressed()],
            vec![0, 1, 2],
        );
        let reference = dense3(&SparseTensor::from_coo(&coo, Format::csf(3)));
        for fmt in [dcc, ddc] {
            let t = SparseTensor::from_coo(&coo, fmt.clone());
            assert!(t.check_invariants().is_ok(), "seed {seed} {fmt}");
            assert_eq!(dense3(&t), reference, "seed {seed} {fmt}");
        }
    }
}

#[test]
fn node_counts_are_monotone_under_width_change() {
    for seed in 0..CASES {
        let coo = random_coo3(seed ^ 0x7700);
        let mut t = SparseTensor::from_coo(&coo, Format::csf(3));
        let counts: Vec<usize> = (0..3).map(|l| t.node_count(l)).collect();
        t.set_index_width(IndexWidth::U64);
        // Index width is a storage detail: structure unchanged.
        assert_eq!(
            counts,
            (0..3).map(|l| t.node_count(l)).collect::<Vec<_>>(),
            "seed {seed}"
        );
        assert_eq!(t.node_count(2), t.nnz(), "seed {seed}");
    }
}

#[test]
fn footprint_scales_with_width() {
    let mut checked = 0usize;
    for seed in 0..CASES {
        let coo = random_coo3(seed ^ 0xf007);
        if coo.nnz() == 0 {
            continue;
        }
        checked += 1;
        let mut t = SparseTensor::from_coo(&coo, Format::csf(3));
        t.set_index_width(IndexWidth::U32);
        let narrow = t.footprint_bytes();
        t.set_index_width(IndexWidth::U64);
        let wide = t.footprint_bytes();
        assert!(wide > narrow, "seed {seed}");
        // Values bytes are unchanged; only index buffers doubled.
        let val_bytes = t.nnz() * 8;
        assert_eq!(wide - val_bytes, 2 * (narrow - val_bytes), "seed {seed}");
    }
    assert!(checked > CASES as usize / 2, "generator mostly non-empty");
}

#[test]
fn permuted_2d_formats_transpose_consistently() {
    for seed in 0..CASES {
        let mut rng = Rng(seed ^ 0x2d2d);
        let entries = rng.below(20);
        let mut coords = Vec::new();
        let mut vals = Vec::new();
        for _ in 0..entries {
            coords.push(rng.below(5));
            coords.push(rng.below(7));
            vals.push(0.5 + rng.f64() * 1.5);
        }
        let coo = CooTensor::new(vec![5, 7], coords, Values::F64(vals));
        let csr = SparseTensor::from_coo(&coo, Format::csr());
        let csc = SparseTensor::from_coo(&coo, Format::csc());
        // Same dense content regardless of level permutation.
        assert_eq!(csr.to_dense_f64(), csc.to_dense_f64(), "seed {seed}");
        // CSC's inner segment lengths are column degrees.
        let col_deg_sum: usize = csc.inner_segment_lengths().iter().sum();
        assert_eq!(col_deg_sum, csc.nnz(), "seed {seed}");
    }
}
