//! [`TeeModel`]: dispatch one memory-event stream to two models.
//!
//! `asap_cli profile` needs the simulator's timing counters *and* the
//! full event trace from the same execution; running the kernel twice
//! would double the cost and (worse) let the two views drift if either
//! run traps early. Teeing guarantees both models see the identical
//! ordered stream.

use asap_ir::{MemoryModel, OpId};

/// Forwards every event to `a` then `b`, in that order.
pub struct TeeModel<'m, A: MemoryModel, B: MemoryModel> {
    pub a: &'m mut A,
    pub b: &'m mut B,
}

impl<'m, A: MemoryModel, B: MemoryModel> TeeModel<'m, A, B> {
    pub fn new(a: &'m mut A, b: &'m mut B) -> TeeModel<'m, A, B> {
        TeeModel { a, b }
    }
}

impl<A: MemoryModel, B: MemoryModel> MemoryModel for TeeModel<'_, A, B> {
    fn load(&mut self, pc: OpId, addr: u64, bytes: u8) {
        self.a.load(pc, addr, bytes);
        self.b.load(pc, addr, bytes);
    }

    fn store(&mut self, pc: OpId, addr: u64, bytes: u8) {
        self.a.store(pc, addr, bytes);
        self.b.store(pc, addr, bytes);
    }

    fn prefetch(&mut self, pc: OpId, addr: u64, locality: u8, write: bool) {
        self.a.prefetch(pc, addr, locality, write);
        self.b.prefetch(pc, addr, locality, write);
    }

    fn retire(&mut self, n: u64) {
        self.a.retire(n);
        self.b.retire(n);
    }

    fn retire_fp(&mut self, n: u64) {
        self.a.retire_fp(n);
        self.b.retire_fp(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::TraceModel;

    #[test]
    fn both_sides_see_identical_streams() {
        let mut a = TraceModel::new();
        let mut b = TraceModel::new();
        {
            let mut tee = TeeModel::new(&mut a, &mut b);
            tee.load(OpId(1), 64, 8);
            tee.prefetch(OpId(2), 128, 2, false);
            tee.store(OpId(3), 64, 8);
            tee.retire(5);
            tee.retire_fp(2);
        }
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.instructions, b.instructions);
    }
}
