//! The span recorder: RAII scoped spans with monotonic timestamps,
//! parent links, and key=value attributes.
//!
//! The recorder is process-global and off by default. The disabled path
//! is a single relaxed atomic load per [`span`] call — no allocation, no
//! lock, no timestamp — so instrumentation can stay compiled into every
//! pipeline stage and hot-loop boundary without a measurable cost
//! (`perfstat` gates the aggregate overhead below 2%).
//!
//! Parent links come from a per-thread span stack: a span opened while
//! another is live on the same thread becomes its child. Worker threads
//! start fresh stacks, so cross-thread work appears as separate roots
//! (the span's attributes carry whatever identity the call site wants to
//! preserve, e.g. the pool job's item label).
//!
//! Determinism contract: for a fixed-seed, single-threaded run the
//! recorded *tree* — names, nesting, attributes, order — is identical
//! across runs. Only the timestamps vary, which is why
//! [`render_span_tree`] excludes them (the determinism tests compare its
//! output) and [`render_span_tree_timed`] exists separately for humans.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<Mutex<RecState>> = OnceLock::new();

struct RecState {
    epoch: Instant,
    spans: Vec<SpanRecord>,
}

thread_local! {
    /// Stack of open span ids on this thread (parent links).
    static OPEN: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// One finished (or still-open, `end_ns == 0`) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Index into the recorder's span table, in open order.
    pub id: u32,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u32>,
    pub name: &'static str,
    /// Nanoseconds since the recorder was (re-)enabled.
    pub start_ns: u64,
    /// Zero while the span is still open.
    pub end_ns: u64,
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

fn state() -> &'static Mutex<RecState> {
    STATE.get_or_init(|| {
        Mutex::new(RecState {
            epoch: Instant::now(),
            spans: Vec::new(),
        })
    })
}

/// Recover the state lock after a panicking holder (a crash-isolated
/// bench worker): the span table is append-mostly and every record is
/// inserted atomically, so the data is still coherent.
fn lock() -> std::sync::MutexGuard<'static, RecState> {
    state().lock().unwrap_or_else(|p| p.into_inner())
}

/// Turn the recorder on or off. Enabling resets the timestamp epoch;
/// previously recorded spans are kept (use [`take_spans`] or [`reset`]
/// to drain them).
pub fn set_enabled(on: bool) {
    if on {
        lock().epoch = Instant::now();
    }
    ENABLED.store(on, Ordering::Release);
}

/// True when the recorder is capturing spans.
///
/// Lock-free contract: this is one relaxed atomic load and MUST stay
/// that way — hot paths (the serving loop, VM dispatch) call it per
/// operation, and taking the state mutex here would serialize them all.
/// `enabled_never_touches_the_state_mutex` pins this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop every recorded span (the metric registry has its own
/// [`crate::metrics::reset`]).
pub fn reset() {
    let mut g = lock();
    g.spans.clear();
    g.epoch = Instant::now();
}

/// Drain and return all recorded spans, in open order.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut lock().spans)
}

/// Clone all recorded spans without draining them.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    lock().spans.clone()
}

/// An RAII scoped span. Created by [`span`]; the span closes when the
/// guard drops. When the recorder is disabled the guard is inert.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    id: Option<u32>,
}

/// Open a span named `name`. The fast path when the recorder is
/// disabled is one atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { id: None };
    }
    Span {
        id: Some(open_span(name, Vec::new())),
    }
}

/// Open a span with initial attributes. The attribute values are only
/// materialized when the recorder is enabled — pass a closure so
/// formatting stays off the disabled path.
#[inline]
pub fn span_with<F>(name: &'static str, attrs: F) -> Span
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    if !enabled() {
        return Span { id: None };
    }
    Span {
        id: Some(open_span(name, attrs())),
    }
}

fn open_span(name: &'static str, attrs: Vec<(&'static str, String)>) -> u32 {
    let parent = OPEN.with(|o| o.borrow().last().copied());
    let mut g = lock();
    let id = g.spans.len() as u32;
    let start_ns = g.epoch.elapsed().as_nanos() as u64;
    g.spans.push(SpanRecord {
        id,
        parent,
        name,
        start_ns,
        end_ns: 0,
        attrs,
    });
    drop(g);
    OPEN.with(|o| o.borrow_mut().push(id));
    id
}

impl Span {
    /// Attach a key=value attribute to the open span. No-op when the
    /// recorder was disabled at open time.
    pub fn attr(&self, key: &'static str, value: impl ToString) {
        if let Some(id) = self.id {
            let mut g = lock();
            if let Some(rec) = g.spans.get_mut(id as usize) {
                rec.attrs.push((key, value.to_string()));
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        OPEN.with(|o| {
            let mut o = o.borrow_mut();
            // Scoped guards close LIFO; a mismatch can only follow a
            // panic unwinding through open spans, where popping to this
            // id is still the right recovery.
            while let Some(top) = o.pop() {
                if top == id {
                    break;
                }
            }
        });
        let mut g = lock();
        let end_ns = g.epoch.elapsed().as_nanos() as u64;
        if let Some(rec) = g.spans.get_mut(id as usize) {
            rec.end_ns = end_ns;
        }
    }
}

fn children_of(spans: &[SpanRecord]) -> Vec<Vec<usize>> {
    let mut kids: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = s.parent {
            if (p as usize) < spans.len() {
                kids[p as usize].push(i);
            }
        }
    }
    kids
}

fn render_node(
    spans: &[SpanRecord],
    kids: &[Vec<usize>],
    i: usize,
    depth: usize,
    timed: bool,
    out: &mut String,
) {
    let s = &spans[i];
    out.push_str(&"  ".repeat(depth));
    out.push_str(s.name);
    for (k, v) in &s.attrs {
        out.push_str(&format!(" {k}={v}"));
    }
    if timed {
        out.push_str(&format!("  [{:.3} ms]", s.duration_ns() as f64 / 1e6));
    }
    out.push('\n');
    for &c in &kids[i] {
        render_node(spans, kids, c, depth + 1, timed, out);
    }
}

fn render(spans: &[SpanRecord], timed: bool) -> String {
    let kids = children_of(spans);
    let mut out = String::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent.is_none() {
            render_node(spans, &kids, i, 0, timed, &mut out);
        }
    }
    out
}

/// Render the span tree with names and attributes only — no timestamps,
/// so identical runs render identically (the determinism contract).
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    render(spans, false)
}

/// As [`render_span_tree`] with per-span wall-clock durations, for human
/// consumption (`asap_cli profile`).
pub fn render_span_tree_timed(spans: &[SpanRecord]) -> String {
    render(spans, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests in this module serialize.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        reset();
        {
            let s = span("ignored");
            s.attr("k", "v");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_builds_parent_links() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        {
            let _a = span("outer");
            {
                let b = span_with("inner", || vec![("stage", "x".to_string())]);
                b.attr("n", 3);
            }
            let _c = span("inner2");
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(
            spans[1].attrs,
            vec![("stage", "x".into()), ("n", "3".into())]
        );
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
        let tree = render_span_tree(&spans);
        assert_eq!(tree, "outer\n  inner stage=x n=3\n  inner2\n");
        assert!(render_span_tree_timed(&spans).contains("ms]"));
    }

    /// Regression pin: `enabled()` (and the disabled `span()` path it
    /// guards) must not take the state mutex. We hold the mutex on this
    /// thread and require a second thread to get through `enabled()` and
    /// a disabled `span()` anyway; if either ever locks, the probe
    /// thread blocks and the watchdog timeout fails the test instead of
    /// hanging the suite.
    #[test]
    fn enabled_never_touches_the_state_mutex() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        let _state_held = lock(); // the lock a regression would deadlock on
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let on = enabled();
            let s = span("probe-while-locked");
            drop(s);
            let _ = tx.send(on);
        });
        match rx.recv_timeout(std::time::Duration::from_secs(5)) {
            Ok(on) => assert!(!on),
            Err(_) => panic!("enabled()/span() blocked on the state mutex"),
        }
    }

    #[test]
    fn worker_threads_start_fresh_roots() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        let _outer = span("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("worker");
            });
        });
        drop(_outer);
        set_enabled(false);
        let spans = take_spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, None, "no cross-thread parent links");
    }
}
