//! The prefetch-effectiveness analyzer: joins a [`TraceModel`] event
//! stream with simulator [`Counters`] to answer, per static prefetch
//! site, the three questions the paper's evaluation keeps circling:
//!
//! - **accuracy** — of the lines this site prefetched, how many were
//!   later demanded before being prefetched again?
//! - **coverage** — of all demand accesses, how many hit a line some
//!   prefetch had already requested?
//! - **timeliness** — how far ahead of the demand did the prefetch
//!   land, in trace events (exact) and in estimated cycles (scaled by
//!   the simulator's cycles-per-event for the same kernel)?
//!
//! The join key is the [`OpId`] the sparsifier stamped on the prefetch
//! op, which [`site_labels`] maps back to the kernel construct (pos/crd/
//! values/dense-input buffer) the prefetch targets.

use std::collections::HashMap;

use asap_ir::ops::{OpKind, Value};
use asap_ir::{OpId, TraceEvent, TraceModel};
use asap_sim::Counters;
use asap_sparsifier::{KernelArg, SparsifiedKernel};

/// Per-site effectiveness, keyed by the prefetch op's [`OpId`].
#[derive(Debug, Clone, PartialEq)]
pub struct SiteStats {
    pub site: OpId,
    /// Prefetches issued by this site.
    pub issued: u64,
    /// Issued lines that were demanded before being re-prefetched.
    pub useful: u64,
    /// Sum over useful prefetches of (first-demand event index − issue
    /// event index); divide by `useful` for the mean distance.
    pub distance_events_sum: u64,
    pub min_distance_events: u64,
    pub max_distance_events: u64,
}

impl SiteStats {
    fn new(site: OpId) -> SiteStats {
        SiteStats {
            site,
            issued: 0,
            useful: 0,
            distance_events_sum: 0,
            min_distance_events: u64::MAX,
            max_distance_events: 0,
        }
    }

    /// useful / issued (0.0 when the site never issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }

    /// Mean issue-to-first-demand distance in trace events.
    pub fn mean_distance_events(&self) -> f64 {
        if self.useful == 0 {
            0.0
        } else {
            self.distance_events_sum as f64 / self.useful as f64
        }
    }
}

/// Whole-run effectiveness: per-site stats plus the global coverage
/// numbers, optionally scaled to cycles via simulator counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Effectiveness {
    /// Per-site stats, ordered by site `OpId` (deterministic).
    pub sites: Vec<SiteStats>,
    /// Demand loads in the trace.
    pub demand_loads: u64,
    /// Demand loads whose line had a prior prefetch (any site).
    pub covered_loads: u64,
    /// Estimated cycles per trace event, from the joined [`Counters`]
    /// (0.0 when no counters were supplied or the trace is empty).
    pub cycles_per_event: f64,
}

impl Effectiveness {
    /// covered / demand (0.0 when there were no demand loads).
    pub fn coverage(&self) -> f64 {
        if self.demand_loads == 0 {
            0.0
        } else {
            self.covered_loads as f64 / self.demand_loads as f64
        }
    }

    /// Aggregate accuracy over every site.
    pub fn accuracy(&self) -> f64 {
        let issued: u64 = self.sites.iter().map(|s| s.issued).sum();
        let useful: u64 = self.sites.iter().map(|s| s.useful).sum();
        if issued == 0 {
            0.0
        } else {
            useful as f64 / issued as f64
        }
    }

    pub fn total_issued(&self) -> u64 {
        self.sites.iter().map(|s| s.issued).sum()
    }

    pub fn total_useful(&self) -> u64 {
        self.sites.iter().map(|s| s.useful).sum()
    }

    /// Mean timeliness of a site in estimated cycles.
    pub fn mean_distance_cycles(&self, s: &SiteStats) -> f64 {
        s.mean_distance_events() * self.cycles_per_event
    }
}

/// A prefetch currently "in flight" on a cache line.
struct LineState {
    site: OpId,
    issue_event: u64,
    credited: bool,
}

const LINE: u64 = 64;

/// Analyze a trace without simulator counters (`cycles_per_event` stays
/// 0.0; event-distance timeliness is still exact).
pub fn analyze(trace: &TraceModel) -> Effectiveness {
    analyze_events(&trace.events, None)
}

/// Analyze a trace and scale timeliness to cycles using counters from a
/// simulator run of the same kernel: the trace's event stream and the
/// simulator's instruction stream cover the same execution, so
/// `cycles / total_events` estimates cycles per trace event.
pub fn analyze_with_counters(trace: &TraceModel, counters: &Counters) -> Effectiveness {
    analyze_events(&trace.events, Some(counters))
}

fn analyze_events(events: &[TraceEvent], counters: Option<&Counters>) -> Effectiveness {
    let mut lines: HashMap<u64, LineState> = HashMap::new();
    let mut sites: HashMap<OpId, SiteStats> = HashMap::new();
    let mut demand_loads = 0u64;
    let mut covered_loads = 0u64;

    for (t, ev) in events.iter().enumerate() {
        let t = t as u64;
        match *ev {
            TraceEvent::Prefetch { pc, addr, .. } => {
                let s = sites.entry(pc).or_insert_with(|| SiteStats::new(pc));
                s.issued += 1;
                // A re-prefetch of a line whose previous prefetch was
                // never demanded leaves that previous issue inaccurate
                // (it simply isn't credited). The line now belongs to
                // this site.
                lines.insert(
                    addr / LINE,
                    LineState {
                        site: pc,
                        issue_event: t,
                        credited: false,
                    },
                );
            }
            TraceEvent::Load { addr, .. } => {
                demand_loads += 1;
                if let Some(ls) = lines.get_mut(&(addr / LINE)) {
                    covered_loads += 1;
                    if !ls.credited {
                        ls.credited = true;
                        let d = t - ls.issue_event;
                        let s = sites
                            .entry(ls.site)
                            .or_insert_with(|| SiteStats::new(ls.site));
                        s.useful += 1;
                        s.distance_events_sum += d;
                        s.min_distance_events = s.min_distance_events.min(d);
                        s.max_distance_events = s.max_distance_events.max(d);
                    }
                }
            }
            TraceEvent::Store { .. } => {}
        }
    }

    let mut sites: Vec<SiteStats> = sites.into_values().collect();
    sites.sort_by_key(|s| s.site.0);
    for s in &mut sites {
        if s.useful == 0 {
            s.min_distance_events = 0;
        }
    }

    let cycles_per_event = match counters {
        Some(c) if !events.is_empty() && c.cycles > 0 => c.cycles as f64 / events.len() as f64,
        _ => 0.0,
    };

    Effectiveness {
        sites,
        demand_loads,
        covered_loads,
        cycles_per_event,
    }
}

/// Map each prefetch site in a sparsified kernel back to the construct
/// it targets: walk the function for `Prefetch` ops and describe the
/// `mem` operand via the kernel's argument layout. Non-parameter targets
/// (locals — shouldn't happen in sparsifier output) label as `"local"`.
pub fn site_labels(kernel: &SparsifiedKernel) -> HashMap<OpId, String> {
    let param_pos: HashMap<Value, usize> = kernel
        .func
        .params
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let mut labels = HashMap::new();
    kernel.func.walk(&mut |op| {
        if let OpKind::Prefetch { mem, write, .. } = op.kind {
            let target = match param_pos.get(&mem) {
                Some(&i) => kernel
                    .args
                    .get(i)
                    .map_or_else(|| format!("arg{i}"), |a| describe_arg(*a)),
                None => "local".to_string(),
            };
            let rw = if write { "write" } else { "read" };
            labels.insert(op.id, format!("{target} ({rw})"));
        }
    });
    labels
}

fn describe_arg(arg: KernelArg) -> String {
    match arg {
        KernelArg::Pos { level } => format!("pos[{level}]"),
        KernelArg::Crd { level } => format!("crd[{level}]"),
        KernelArg::SparseVals => "sparse values".to_string(),
        KernelArg::DenseInput { input } => format!("dense input {input}"),
        KernelArg::Output => "output".to_string(),
        KernelArg::DimSize { index } => format!("dim size i{index}"),
    }
}

/// Render the per-site table `asap_cli profile` prints. Deterministic:
/// ordered by site id, no timestamps.
pub fn render_site_table(eff: &Effectiveness, labels: &HashMap<OpId, String>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<22} {:>8} {:>8} {:>9} {:>10} {:>12}\n",
        "site", "target", "issued", "useful", "accuracy", "dist(ev)", "dist(cyc)"
    ));
    for s in &eff.sites {
        let label = labels.get(&s.site).map_or("?", String::as_str);
        out.push_str(&format!(
            "{:<6} {:<22} {:>8} {:>8} {:>8.1}% {:>10.1} {:>12.1}\n",
            format!("op{}", s.site.0),
            label,
            s.issued,
            s.useful,
            s.accuracy() * 100.0,
            s.mean_distance_events(),
            eff.mean_distance_cycles(s),
        ));
    }
    out.push_str(&format!(
        "coverage: {}/{} demand loads ({:.1}%), aggregate accuracy {:.1}%\n",
        eff.covered_loads,
        eff.demand_loads,
        eff.coverage() * 100.0,
        eff.accuracy() * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf(pc: u32, addr: u64) -> TraceEvent {
        TraceEvent::Prefetch {
            pc: OpId(pc),
            addr,
            locality: 2,
            write: false,
        }
    }

    fn ld(pc: u32, addr: u64) -> TraceEvent {
        TraceEvent::Load {
            pc: OpId(pc),
            addr,
            bytes: 8,
        }
    }

    #[test]
    fn accuracy_coverage_timeliness_by_hand() {
        // Site op5 prefetches lines 0 and 2; only line 0 is demanded.
        // Site op9 prefetches line 1; demanded twice (credited once).
        // One uncovered demand load on line 3.
        let events = vec![
            pf(5, 0),   // t=0: line 0
            pf(9, 64),  // t=1: line 1
            pf(5, 128), // t=2: line 2, never demanded
            ld(1, 8),   // t=3: line 0 → credits op5, distance 3
            ld(1, 64),  // t=4: line 1 → credits op9, distance 3
            ld(1, 72),  // t=5: line 1 again → covered, not re-credited
            ld(1, 192), // t=6: line 3, uncovered
        ];
        let eff = analyze_events(&events, None);
        assert_eq!(eff.demand_loads, 4);
        assert_eq!(eff.covered_loads, 3);
        assert!((eff.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(eff.sites.len(), 2);
        let s5 = &eff.sites[0];
        assert_eq!(s5.site, OpId(5));
        assert_eq!((s5.issued, s5.useful), (2, 1));
        assert!((s5.accuracy() - 0.5).abs() < 1e-12);
        assert!((s5.mean_distance_events() - 3.0).abs() < 1e-12);
        let s9 = &eff.sites[1];
        assert_eq!((s9.issued, s9.useful), (1, 1));
        assert_eq!((s9.min_distance_events, s9.max_distance_events), (3, 3));
        assert!((eff.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reprefetch_of_undemanded_line_is_not_credited_twice() {
        let events = vec![
            pf(5, 0), // t=0, never demanded before re-prefetch
            pf(7, 0), // t=1, takes over the line
            ld(1, 0), // t=2 → credits op7 only, distance 1
        ];
        let eff = analyze_events(&events, None);
        let s5 = eff.sites.iter().find(|s| s.site == OpId(5)).unwrap();
        let s7 = eff.sites.iter().find(|s| s.site == OpId(7)).unwrap();
        assert_eq!((s5.issued, s5.useful), (1, 0));
        assert_eq!(s5.accuracy(), 0.0);
        assert_eq!(s5.min_distance_events, 0);
        assert_eq!((s7.issued, s7.useful), (1, 1));
        assert_eq!(s7.distance_events_sum, 1);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let eff = analyze_events(&[], None);
        assert_eq!(eff.coverage(), 0.0);
        assert_eq!(eff.accuracy(), 0.0);
        assert_eq!(eff.cycles_per_event, 0.0);
        // Stores alone: no demand loads, no sites.
        let eff = analyze_events(
            &[TraceEvent::Store {
                pc: OpId(0),
                addr: 0,
                bytes: 8,
            }],
            None,
        );
        assert_eq!(eff.coverage(), 0.0);
        assert!(eff.sites.is_empty());
    }

    #[test]
    fn cycles_per_event_scales_timeliness() {
        let events = vec![pf(5, 0), ld(1, 0)];
        let counters = Counters {
            cycles: 10,
            instructions: 2,
            ..Counters::default()
        };
        let eff = analyze_events(&events, Some(&counters));
        assert!((eff.cycles_per_event - 5.0).abs() < 1e-12);
        let s = &eff.sites[0];
        assert!((eff.mean_distance_cycles(s) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_lists_sites_and_coverage() {
        let events = vec![pf(5, 0), ld(1, 0)];
        let eff = analyze_events(&events, None);
        let mut labels = HashMap::new();
        labels.insert(OpId(5), "crd[1] (read)".to_string());
        let table = render_site_table(&eff, &labels);
        assert!(table.contains("op5"));
        assert!(table.contains("crd[1] (read)"));
        assert!(table.contains("coverage: 1/1"));
    }
}
