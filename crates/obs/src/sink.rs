//! JSONL trace sink: serializes the run manifest, spans, metrics, and
//! effectiveness to one JSON object per line — the `--trace-out PATH`
//! format every figure binary and `asap_cli` emit.
//!
//! Hand-rolled like the rest of the workspace's JSON (dependency-free
//! builds); [`validate_jsonl`] is the minimal structural parser CI uses
//! to check the sink's output round-trips.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::analyzer::Effectiveness;
use crate::manifest::RunManifest;
use crate::metrics::MetricsSnapshot;
use crate::recorder::SpanRecord;

/// Escape a string for embedding in a JSON literal. (The shared
/// implementation lives in [`crate::json`]; this alias keeps the sink's
/// long-standing public name working.)
pub use crate::json::escape as json_escape;

fn span_line(s: &SpanRecord) -> String {
    let mut attrs = String::new();
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        if i > 0 {
            attrs.push(',');
        }
        let _ = write!(attrs, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    let parent = match s.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{{{}}}}}",
        s.id,
        parent,
        json_escape(s.name),
        s.start_ns,
        s.end_ns,
        attrs
    )
}

fn metric_lines(m: &MetricsSnapshot, out: &mut String) {
    for (name, v) in &m.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            v
        );
    }
    for (name, v) in &m.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            v
        );
    }
    for (name, h) in &m.histograms {
        let mut buckets = String::new();
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "{b}");
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            json_escape(name),
            h.count,
            h.sum,
            buckets
        );
    }
}

fn effectiveness_lines(eff: &Effectiveness, out: &mut String) {
    for s in &eff.sites {
        let _ = writeln!(
            out,
            "{{\"type\":\"pf_site\",\"site\":{},\"issued\":{},\"useful\":{},\"accuracy\":{},\"mean_distance_events\":{},\"mean_distance_cycles\":{}}}",
            s.site.0,
            s.issued,
            s.useful,
            fmt_f64(s.accuracy()),
            fmt_f64(s.mean_distance_events()),
            fmt_f64(eff.mean_distance_cycles(s)),
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"pf_summary\",\"demand_loads\":{},\"covered_loads\":{},\"coverage\":{},\"accuracy\":{}}}",
        eff.demand_loads,
        eff.covered_loads,
        fmt_f64(eff.coverage()),
        fmt_f64(eff.accuracy()),
    );
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Render a full trace dump: one manifest line, then spans, metrics, and
/// (if present) the effectiveness report, one JSON object per line.
pub fn render_jsonl(
    manifest: &RunManifest,
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
    effectiveness: Option<&Effectiveness>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"manifest\",\"manifest\":{}}}",
        manifest.to_json()
    );
    for s in spans {
        out.push_str(&span_line(s));
        out.push('\n');
    }
    metric_lines(metrics, &mut out);
    if let Some(eff) = effectiveness {
        effectiveness_lines(eff, &mut out);
    }
    out
}

/// Render and write a trace dump to `path`.
pub fn write_jsonl(
    path: &Path,
    manifest: &RunManifest,
    spans: &[SpanRecord],
    metrics: &MetricsSnapshot,
    effectiveness: Option<&Effectiveness>,
) -> io::Result<()> {
    std::fs::write(path, render_jsonl(manifest, spans, metrics, effectiveness))
}

/// Structural validation of a JSONL dump: every non-empty line is a
/// brace-balanced JSON object (string-aware) with a `"type"` key, and
/// line one is the manifest. Returns the number of lines validated.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        }
        if !json_object_balanced(line) {
            return Err(format!("line {}: unbalanced JSON", lineno + 1));
        }
        if !line.contains("\"type\":") {
            return Err(format!("line {}: missing \"type\" key", lineno + 1));
        }
        if n == 0 && !line.contains("\"type\":\"manifest\"") {
            return Err("line 1: first record must be the manifest".to_string());
        }
        n += 1;
    }
    if n == 0 {
        return Err("empty trace".to_string());
    }
    Ok(n)
}

fn json_object_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use asap_ir::TraceModel;

    #[test]
    fn renders_and_validates() {
        let manifest = RunManifest::new("test").with("seed", "42");
        let spans = vec![SpanRecord {
            id: 0,
            parent: None,
            name: "compile",
            start_ns: 1,
            end_ns: 9,
            attrs: vec![("kernel", "spmv \"x\"".to_string())],
        }];
        let metrics = MetricsSnapshot {
            counters: vec![("cache.hits", 3)],
            gauges: vec![("serve.queue_depth", 2)],
            histograms: vec![],
        };
        let trace = TraceModel::new();
        let eff = analyze(&trace);
        let text = render_jsonl(&manifest, &spans, &metrics, Some(&eff));
        let n = validate_jsonl(&text).expect("valid jsonl");
        assert!(
            n >= 4,
            "manifest + span + counter + gauge + summary, got {n}"
        );
        assert!(text.contains("\\\"x\\\""), "escaped attr value");
        assert!(
            text.contains("{\"type\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":2}"),
            "{text}"
        );
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("not json\n").is_err());
        assert!(
            validate_jsonl("{\"type\":\"span\"}\n").is_err(),
            "manifest must be first"
        );
        assert!(validate_jsonl("{\"type\":\"manifest\"\n").is_err());
        assert!(validate_jsonl("{\"type\":\"manifest\",\"x\":{}}\n{\"no_type\":1}\n").is_err());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
