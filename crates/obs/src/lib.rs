//! # asap-obs — workspace-wide observability
//!
//! Zero-dependency (no external crates) tracing, metrics, and
//! prefetch-effectiveness profiling for the ASaP reproduction:
//!
//! - [`recorder`] — a process-global span recorder with RAII scoped
//!   spans, parent links and attributes; disabled-path cost is one
//!   relaxed atomic load (`perfstat` gates the aggregate overhead <2%).
//! - [`metrics`] — named monotonic counters and log2-bucketed
//!   histograms unifying the workspace's scattered stats (compile-cache
//!   hits, pool retries, budget polls, VM opcode dispatch counts).
//! - [`analyzer`] — joins the `asap-ir` [`TraceModel`](asap_ir::TraceModel)
//!   event stream with `asap-sim` counters into per-prefetch-site
//!   accuracy / coverage / timeliness, mapped back to the sparsifier
//!   construct that emitted each site.
//! - [`json`] — the workspace's one JSON implementation: the shared
//!   writer every emitter uses plus the tolerant parser the serving
//!   layer reads request bodies with (typed `AsapError::Json` on
//!   malformed input).
//! - [`sink`] + [`manifest`] — hand-rolled JSONL output (`--trace-out`)
//!   and the run manifest stamped into every results file.
//! - [`tee`] — a [`MemoryModel`](asap_ir::MemoryModel) splitter so one
//!   execution feeds the simulator and the trace recorder at once.
//!
//! See DESIGN.md §10 for the architecture and the dependency-direction
//! rule (`asap-ir`/`asap-sim` stay obs-free; spans are recorded from
//! `asap-core`/`asap-bench` call sites).

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod tee;
pub mod trace;

pub use analyzer::{
    analyze, analyze_with_counters, render_site_table, site_labels, Effectiveness, SiteStats,
};
pub use json::{parse as parse_json, Json, ObjWriter};
pub use manifest::{RunManifest, BUILD_PROFILE};
pub use metrics::{
    counter_add, counter_get, counter_inc, counter_set_max, gauge_add, gauge_get, gauge_set,
    gauge_sub, histogram_record, labeled_counter_add, labeled_histogram_record, labeled_name,
    labeled_snapshot, render as render_metrics, render_labeled, snapshot as metrics_snapshot,
    HistogramSnapshot, LabeledHistogramSnapshot, LabeledSnapshot, MetricsSnapshot,
};
pub use recorder::{
    enabled, render_span_tree, render_span_tree_timed, set_enabled, snapshot_spans, span,
    span_with, take_spans, Span, SpanRecord,
};
pub use sink::{render_jsonl, validate_jsonl, write_jsonl};
pub use tee::TeeModel;
pub use trace::{
    flush_stage_metrics, FlightRecorder, RequestRecord, Stage, TraceCtx, TraceId, STAGES,
    STAGE_COUNT,
};

/// Reset spans and metrics together (the determinism tests' preamble).
pub fn reset_all() {
    recorder::reset();
    metrics::reset();
    metrics::labeled_reset();
}

/// Render the full `/metrics` exposition: the unlabeled registry first
/// (byte-identical to [`render_metrics`] — the determinism golden test
/// pins that), then the labeled serving series with exemplars.
pub fn render_metrics_all() -> String {
    let mut out = render_metrics(&metrics_snapshot());
    out.push_str(&render_labeled(&labeled_snapshot()));
    out
}
