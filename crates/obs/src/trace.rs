//! Request-scoped serving telemetry: trace contexts and the flight
//! recorder.
//!
//! The span [`recorder`](crate::recorder) is bench-oriented — one global
//! mutex, one flat span list — so it cannot attribute time to concurrent
//! requests. This module is the serving-path alternative: every request
//! carries its own [`TraceCtx`] (a 128-bit trace id plus a fixed array
//! of per-stage atomic nanosecond accumulators), so recording a stage
//! costs one relaxed `fetch_add` on memory owned by the request — no
//! shared lock, no allocation.
//!
//! On completion the context collapses into a [`RequestRecord`], which
//! fans out three ways (driven by the serving layer):
//!
//! 1. per-tenant per-stage labeled histograms with exemplars
//!    ([`flush_stage_metrics`]);
//! 2. the always-on [`FlightRecorder`] — fixed-size per-worker rings of
//!    recent records, with anomalous requests (5xx, shed, deadline, or
//!    latency above a rolling threshold) promoted to a bounded retained
//!    set that `/debug/trace/<id>` can look up and crash handling dumps
//!    as JSONL;
//! 3. an optional JSONL access log (the record knows how to render
//!    itself via [`RequestRecord::to_jsonl`]).
//!
//! See DESIGN.md §15 for the lifecycle and bounds.

use crate::json::ObjWriter;
use crate::metrics;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// 128-bit request trace id. Minted from a process-global counter mixed
/// through SplitMix64 (two rounds seeded differently), so ids are unique
/// per process, effectively unique across processes (the seed folds in
/// the PID and wall-clock nanos at first use), and cheap: two atomic ops
/// and a handful of multiplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn trace_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5eed);
        splitmix64(nanos ^ (std::process::id() as u64).rotate_left(32))
    })
}

impl TraceId {
    /// Mint a fresh id.
    pub fn mint() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let seed = trace_seed();
        let hi = splitmix64(n ^ seed);
        let lo = splitmix64(n.wrapping_mul(0xa24b_aed4_963e_e407) ^ seed.rotate_left(17));
        TraceId(((hi as u128) << 64) | lo as u128)
    }

    /// 32-hex-digit lowercase rendering — the `X-Asap-Trace` wire form.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the wire form back (exactly 32 hex digits).
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// The pipeline stages a request's wall time is attributed to, in
/// exposition order. `QueueWait` folds both waits (the accepted-conn
/// FIFO and the per-tenant job lane) into one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Parse,
    Quota,
    QueueWait,
    Store,
    Compile,
    Exec,
    Write,
}

pub const STAGE_COUNT: usize = 7;

/// All stages, index-aligned with [`TraceCtx`]'s accumulators and
/// [`RequestRecord::stages_ns`].
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Parse,
    Stage::Quota,
    Stage::QueueWait,
    Stage::Store,
    Stage::Compile,
    Stage::Exec,
    Stage::Write,
];

impl Stage {
    pub fn label(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Quota => "quota",
            Stage::QueueWait => "queue_wait",
            Stage::Store => "store",
            Stage::Compile => "compile",
            Stage::Exec => "exec",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Quota => 1,
            Stage::QueueWait => 2,
            Stage::Store => 3,
            Stage::Compile => 4,
            Stage::Exec => 5,
            Stage::Write => 6,
        }
    }
}

const QUEUE_UNSET: u64 = u64::MAX;

/// Mutable request metadata filled in as the request moves down the
/// pipeline (tenant after classification, kernel/matrix after parse).
/// Guarded by an uncontended mutex: exactly one thread owns a request
/// at any moment, so the lock never blocks in practice.
#[derive(Debug, Default, Clone)]
struct Meta {
    tenant: String,
    kernel: String,
    matrix_fp: u64,
    anomaly: Option<&'static str>,
    is_run: bool,
}

/// Per-request trace context. Created at accept time, threaded through
/// the admission ladder, the scheduler queue, and the worker; stage
/// accumulators are atomics so the context can cross threads behind a
/// shared reference.
///
/// A disabled context (telemetry off) keeps the same API but every
/// recording call returns immediately after one branch — the overhead
/// A/B gate measures exactly this difference.
#[derive(Debug)]
pub struct TraceCtx {
    id: TraceId,
    enabled: bool,
    created: Instant,
    stages: [AtomicU64; STAGE_COUNT],
    /// Nanos-since-created when the request entered a queue
    /// ([`QUEUE_UNSET`] when not queued); `end_queued` turns the delta
    /// into `QueueWait` time.
    queued_at_ns: AtomicU64,
    meta: Mutex<Meta>,
}

impl TraceCtx {
    /// A live context with a freshly minted id.
    pub fn start() -> TraceCtx {
        TraceCtx::with_enabled(true)
    }

    /// A dormant context: carries no id, records nothing.
    pub fn disabled() -> TraceCtx {
        TraceCtx::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> TraceCtx {
        TraceCtx {
            id: if enabled { TraceId::mint() } else { TraceId(0) },
            enabled,
            created: Instant::now(),
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
            queued_at_ns: AtomicU64::new(QUEUE_UNSET),
            meta: Mutex::new(Meta::default()),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn id(&self) -> TraceId {
        self.id
    }

    fn meta(&self) -> std::sync::MutexGuard<'_, Meta> {
        self.meta.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attribute `ns` nanoseconds to `stage`.
    pub fn add(&self, stage: Stage, ns: u64) {
        if !self.enabled {
            return;
        }
        self.stages[stage.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Run `f`, attributing its wall time to `stage`.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let r = f();
        self.add(stage, t0.elapsed().as_nanos() as u64);
        r
    }

    /// Note that the request just entered a queue (conn FIFO or tenant
    /// lane). Idempotent: a second mark before `end_queued` is ignored.
    pub fn mark_queued(&self) {
        if !self.enabled {
            return;
        }
        let now = self.created.elapsed().as_nanos() as u64;
        let _ = self.queued_at_ns.compare_exchange(
            QUEUE_UNSET,
            now,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Note that the request left the queue; the elapsed span folds into
    /// [`Stage::QueueWait`]. No-op if `mark_queued` never ran.
    pub fn end_queued(&self) {
        if !self.enabled {
            return;
        }
        let marked = self.queued_at_ns.swap(QUEUE_UNSET, Ordering::Relaxed);
        if marked != QUEUE_UNSET {
            let now = self.created.elapsed().as_nanos() as u64;
            self.add(Stage::QueueWait, now.saturating_sub(marked));
        }
    }

    pub fn set_tenant(&self, tenant: &str) {
        if self.enabled {
            self.meta().tenant = tenant.to_string();
        }
    }

    /// Record what the request asked for: kernel name and the FNV-1a
    /// fingerprint of the matrix it resolves to.
    pub fn set_request(&self, kernel: &str, matrix_fp: u64) {
        if self.enabled {
            let mut m = self.meta();
            m.kernel = kernel.to_string();
            m.matrix_fp = matrix_fp;
            m.is_run = true;
        }
    }

    /// Flag an anomaly the status code alone can't express (`"shed"`,
    /// `"deadline"`, `"panic"`). First writer wins.
    pub fn note_anomaly(&self, kind: &'static str) {
        if self.enabled {
            let mut m = self.meta();
            if m.anomaly.is_none() {
                m.anomaly = Some(kind);
            }
        }
    }

    /// Accumulated nanos for one stage.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stages[stage.index()].load(Ordering::Relaxed)
    }

    /// Wall time since the context was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.created.elapsed().as_nanos() as u64
    }

    /// Collapse into an immutable completion record. Any still-open
    /// queue mark is folded in first (a request shed *from* the queue
    /// never saw `end_queued`).
    pub fn finish(&self, status: u16) -> RequestRecord {
        self.end_queued();
        let m = self.meta().clone();
        RequestRecord {
            id: self.id,
            tenant: if m.tenant.is_empty() {
                "-".to_string()
            } else {
                m.tenant
            },
            kernel: m.kernel,
            matrix_fp: m.matrix_fp,
            status,
            is_run: m.is_run,
            anomaly: m.anomaly,
            stages_ns: std::array::from_fn(|i| self.stages[i].load(Ordering::Relaxed)),
            total_ns: self.elapsed_ns(),
        }
    }
}

/// One completed request, frozen for the flight recorder / access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    pub id: TraceId,
    pub tenant: String,
    pub kernel: String,
    pub matrix_fp: u64,
    pub status: u16,
    pub is_run: bool,
    pub anomaly: Option<&'static str>,
    /// Index-aligned with [`STAGES`].
    pub stages_ns: [u64; STAGE_COUNT],
    pub total_ns: u64,
}

impl RequestRecord {
    /// Sum of attributed stage time (≤ `total_ns` up to timer skew).
    pub fn stages_sum_ns(&self) -> u64 {
        self.stages_ns.iter().sum()
    }

    /// One JSONL line (no trailing newline) — the access-log / dump form.
    pub fn to_jsonl(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("trace", &self.id.hex())
            .str("tenant", &self.tenant)
            .str("kernel", &self.kernel)
            .u64("matrix_fp", self.matrix_fp)
            .u64("status", self.status as u64)
            .bool("is_run", self.is_run)
            .str("anomaly", self.anomaly.unwrap_or(""))
            .u64("total_ns", self.total_ns);
        let mut stages = String::from("{");
        for (i, st) in STAGES.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            stages.push_str(&format!("\"{}\":{}", st.label(), self.stages_ns[i]));
        }
        stages.push('}');
        w.raw("stage_ns", &stages);
        w.finish()
    }
}

/// Flush a completed request into the labeled metrics registry:
/// per-stage per-tenant histograms (`serve.stage_ns{…}`) with the trace
/// id as exemplar, a whole-request latency histogram
/// (`serve.request_ns{…}`), and — for `/v1/run` requests — the SLO
/// over/under counters against `slo_ms`.
pub fn flush_stage_metrics(rec: &RequestRecord, slo_ms: u64) {
    let exemplar = Some(rec.id.0);
    for (i, st) in STAGES.iter().enumerate() {
        if rec.stages_ns[i] == 0 {
            continue; // stages the request never reached stay absent
        }
        let name = metrics::labeled_name(
            "serve.stage_ns",
            &[("stage", st.label()), ("tenant", &rec.tenant)],
        );
        metrics::labeled_histogram_record(&name, rec.stages_ns[i], exemplar);
    }
    let name = metrics::labeled_name("serve.request_ns", &[("tenant", &rec.tenant)]);
    metrics::labeled_histogram_record(&name, rec.total_ns, exemplar);
    if rec.is_run {
        let objective = slo_ms.to_string();
        let side = if rec.total_ns > slo_ms.saturating_mul(1_000_000) {
            "serve.slo.over"
        } else {
            "serve.slo.under"
        };
        let name = metrics::labeled_name(
            side,
            &[("objective_ms", &objective), ("tenant", &rec.tenant)],
        );
        metrics::labeled_counter_add(&name, 1);
    }
}

/// EWMA smoothing shift: `ewma += (x - ewma) / 2^4`.
const EWMA_SHIFT: u32 = 4;
/// A request is latency-anomalous when slower than `8 ×` the EWMA…
const ANOMALY_FACTOR: u64 = 8;
/// …but only once this many samples have seeded the EWMA.
const ANOMALY_MIN_SAMPLES: u64 = 64;

struct Ring {
    head: AtomicU64,
    slots: Vec<Mutex<Option<Arc<RequestRecord>>>>,
}

struct Retained {
    order: VecDeque<u128>,
    by_id: HashMap<u128, Arc<RequestRecord>>,
}

/// The always-on flight recorder: one fixed ring of recent completions
/// per worker (plus one for the accept thread), and a bounded retained
/// set of anomalous requests.
///
/// Writers never block: each slot is a mutex taken with `try_lock`, and
/// a writer losing the race (only possible against a reader dumping the
/// ring) drops that slot write and counts `serve.flight.dropped`. Ring
/// memory is `rings × ring_cap` `Arc`s; the retained set holds at most
/// `retain_cap` records, oldest evicted first.
pub struct FlightRecorder {
    rings: Vec<Ring>,
    retain_cap: usize,
    retained: Mutex<Retained>,
    /// EWMA of total latency in nanos (all completions feed it).
    ewma_ns: AtomicU64,
    samples: AtomicU64,
}

impl FlightRecorder {
    pub fn new(rings: usize, ring_cap: usize, retain_cap: usize) -> FlightRecorder {
        let rings = rings.max(1);
        let ring_cap = ring_cap.max(1);
        FlightRecorder {
            rings: (0..rings)
                .map(|_| Ring {
                    head: AtomicU64::new(0),
                    slots: (0..ring_cap).map(|_| Mutex::new(None)).collect(),
                })
                .collect(),
            retain_cap: retain_cap.max(1),
            retained: Mutex::new(Retained {
                order: VecDeque::new(),
                by_id: HashMap::new(),
            }),
            ewma_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }

    /// Latency threshold above which a request is anomalous; `None`
    /// until the EWMA has seen [`ANOMALY_MIN_SAMPLES`] completions.
    pub fn latency_threshold_ns(&self) -> Option<u64> {
        if self.samples.load(Ordering::Relaxed) < ANOMALY_MIN_SAMPLES {
            None
        } else {
            Some(
                self.ewma_ns
                    .load(Ordering::Relaxed)
                    .saturating_mul(ANOMALY_FACTOR),
            )
        }
    }

    fn observe_latency(&self, total_ns: u64) -> bool {
        let over = self
            .latency_threshold_ns()
            .is_some_and(|thr| total_ns > thr);
        // Relaxed read-modify-write race just loses one sample's worth
        // of smoothing — acceptable for a heuristic threshold.
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        let delta = (total_ns as i64 - ewma as i64) >> EWMA_SHIFT;
        self.ewma_ns
            .store((ewma as i64 + delta).max(0) as u64, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
        over
    }

    /// Record a completion into ring `ring` (worker index; out-of-range
    /// folds into the last ring). Returns the shared record. Promotes to
    /// the retained set when anomalous: 5xx status, an explicit anomaly
    /// note (shed/deadline/panic), or latency above the rolling
    /// threshold.
    pub fn record(&self, ring: usize, mut rec: RequestRecord) -> Arc<RequestRecord> {
        let latency_anomaly = self.observe_latency(rec.total_ns);
        if rec.anomaly.is_none() {
            if rec.status >= 500 {
                rec.anomaly = Some("error");
            } else if latency_anomaly {
                rec.anomaly = Some("latency");
            }
        }
        let anomalous = rec.anomaly.is_some();
        let rec = Arc::new(rec);
        metrics::counter_inc("serve.flight.recorded");

        let ring = &self.rings[ring.min(self.rings.len() - 1)];
        let slot_count = ring.slots.len() as u64;
        let idx = (ring.head.fetch_add(1, Ordering::Relaxed) % slot_count) as usize;
        match ring.slots[idx].try_lock() {
            Ok(mut slot) => *slot = Some(rec.clone()),
            Err(_) => metrics::counter_inc("serve.flight.dropped"),
        }

        if anomalous {
            let mut r = self.retained.lock().unwrap_or_else(|p| p.into_inner());
            if r.by_id.insert(rec.id.0, rec.clone()).is_none() {
                r.order.push_back(rec.id.0);
                while r.order.len() > self.retain_cap {
                    if let Some(evict) = r.order.pop_front() {
                        r.by_id.remove(&evict);
                    }
                }
            }
            metrics::counter_inc("serve.flight.retained");
        }
        rec
    }

    /// Look up a retained (anomalous) request by trace id.
    pub fn lookup(&self, id: TraceId) -> Option<Arc<RequestRecord>> {
        let r = self.retained.lock().unwrap_or_else(|p| p.into_inner());
        r.by_id.get(&id.0).cloned()
    }

    /// Recent completions across all rings, newest first within a ring.
    pub fn recent(&self) -> Vec<Arc<RequestRecord>> {
        let mut out = Vec::new();
        for ring in &self.rings {
            let n = ring.slots.len() as u64;
            let head = ring.head.load(Ordering::Relaxed);
            for back in 1..=n {
                let idx = ((head + n - back) % n) as usize;
                if let Ok(slot) = ring.slots[idx].try_lock() {
                    if let Some(rec) = slot.as_ref() {
                        out.push(rec.clone());
                    }
                }
            }
        }
        out
    }

    /// Retained anomalous records, oldest first.
    pub fn retained(&self) -> Vec<Arc<RequestRecord>> {
        let r = self.retained.lock().unwrap_or_else(|p| p.into_inner());
        r.order
            .iter()
            .filter_map(|id| r.by_id.get(id).cloned())
            .collect()
    }

    /// Full JSONL dump: retained anomalies first, then ring contents —
    /// the payload for `/debug/requests` and the crash-time sidecar.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.retained() {
            out.push_str(&rec.to_jsonl());
            out.push('\n');
        }
        for rec in self.recent() {
            out.push_str(&rec.to_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::mint();
            assert!(seen.insert(id.0), "duplicate trace id");
            let hex = id.hex();
            assert_eq!(hex.len(), 32);
            assert_eq!(TraceId::parse(&hex), Some(id));
        }
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse(&"0".repeat(31)), None);
    }

    #[test]
    fn stages_accumulate_and_finish_snapshots() {
        let ctx = TraceCtx::start();
        ctx.add(Stage::Parse, 100);
        ctx.add(Stage::Parse, 50);
        ctx.add(Stage::Exec, 1_000);
        ctx.set_tenant("t9");
        ctx.set_request("spmv", 42);
        let rec = ctx.finish(200);
        assert_eq!(rec.stages_ns[Stage::Parse.index()], 150);
        assert_eq!(rec.stages_ns[Stage::Exec.index()], 1_000);
        assert_eq!(rec.stages_sum_ns(), 1_150);
        assert_eq!(rec.tenant, "t9");
        assert_eq!(rec.kernel, "spmv");
        assert!(rec.is_run);
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled();
        ctx.add(Stage::Exec, 999);
        ctx.mark_queued();
        std::thread::sleep(std::time::Duration::from_millis(2));
        ctx.end_queued();
        let out = ctx.time(Stage::Parse, || 7);
        assert_eq!(out, 7);
        let rec = ctx.finish(200);
        assert_eq!(rec.stages_sum_ns(), 0);
        assert_eq!(rec.id.0, 0);
    }

    #[test]
    fn queue_wait_measures_the_marked_span() {
        let ctx = TraceCtx::start();
        ctx.mark_queued();
        ctx.mark_queued(); // idempotent: does not restart the clock
        std::thread::sleep(std::time::Duration::from_millis(5));
        ctx.end_queued();
        let w = ctx.stage_ns(Stage::QueueWait);
        assert!(w >= 4_000_000, "queue wait {w}ns < slept 5ms");
        ctx.end_queued(); // unmatched end is a no-op
        assert_eq!(ctx.stage_ns(Stage::QueueWait), w);
    }

    #[test]
    fn finish_folds_open_queue_mark() {
        let ctx = TraceCtx::start();
        ctx.mark_queued();
        std::thread::sleep(std::time::Duration::from_millis(3));
        let rec = ctx.finish(504); // shed from the queue: end_queued never ran
        assert!(rec.stages_ns[Stage::QueueWait.index()] >= 2_000_000);
    }

    #[test]
    fn record_jsonl_parses_back() {
        let ctx = TraceCtx::start();
        ctx.set_tenant("acme");
        ctx.set_request("spmm", 7);
        ctx.add(Stage::Compile, 123);
        ctx.note_anomaly("shed");
        let rec = ctx.finish(504);
        let line = rec.to_jsonl();
        let j = crate::json::parse(&line).expect("valid json");
        assert_eq!(
            j.get("trace").and_then(|v| v.as_str()),
            Some(rec.id.hex().as_str())
        );
        assert_eq!(j.get("anomaly").and_then(|v| v.as_str()), Some("shed"));
        assert_eq!(
            j.get("stage_ns")
                .and_then(|s| s.get("compile"))
                .and_then(|v| v.as_u64()),
            Some(123)
        );
    }

    #[test]
    fn flight_recorder_promotes_anomalies_and_bounds_retention() {
        let fr = FlightRecorder::new(2, 4, 3);
        let mk = |status: u16| {
            let ctx = TraceCtx::start();
            ctx.add(Stage::Exec, 10);
            ctx.finish(status)
        };
        let ok = fr.record(0, mk(200));
        assert!(ok.anomaly.is_none());
        assert!(fr.lookup(ok.id).is_none(), "2xx not retained");
        let mut retained_ids = Vec::new();
        for _ in 0..5 {
            let r = fr.record(0, mk(500));
            assert_eq!(r.anomaly, Some("error"));
            retained_ids.push(r.id);
        }
        // retain_cap=3: the two oldest were evicted.
        assert!(fr.lookup(retained_ids[0]).is_none());
        assert!(fr.lookup(retained_ids[1]).is_none());
        for id in &retained_ids[2..] {
            assert!(fr.lookup(*id).is_some());
        }
        assert_eq!(fr.retained().len(), 3);
    }

    #[test]
    fn flight_ring_is_bounded_under_churn() {
        let fr = FlightRecorder::new(1, 8, 4);
        for _ in 0..1_000 {
            let ctx = TraceCtx::start();
            let rec = ctx.finish(200);
            fr.record(0, rec);
        }
        assert!(fr.recent().len() <= 8, "ring exceeded its bound");
        assert_eq!(fr.recent().len(), 8, "ring is full after churn");
    }

    #[test]
    fn latency_threshold_arms_after_min_samples() {
        let fr = FlightRecorder::new(1, 4, 8);
        assert_eq!(fr.latency_threshold_ns(), None);
        let mk = |ns: u64| {
            let ctx = TraceCtx::start();
            let mut rec = ctx.finish(200);
            rec.total_ns = ns;
            rec
        };
        for _ in 0..ANOMALY_MIN_SAMPLES {
            fr.record(0, mk(1_000));
        }
        let thr = fr.latency_threshold_ns().expect("armed");
        assert!(thr >= 4_000, "threshold {thr} not near 8×ewma");
        let slow = fr.record(0, mk(1_000_000));
        assert_eq!(slow.anomaly, Some("latency"));
        assert!(fr.lookup(slow.id).is_some());
    }

    #[test]
    fn dump_jsonl_lines_parse() {
        let fr = FlightRecorder::new(1, 4, 4);
        for status in [200u16, 500, 204] {
            let ctx = TraceCtx::start();
            fr.record(0, ctx.finish(status));
        }
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        // 1 retained (the 500) + 3 ring entries.
        assert_eq!(lines.len(), 4);
        for line in lines {
            crate::json::parse(line).expect("dump line is valid json");
        }
    }

    #[test]
    fn flush_stage_metrics_populates_labeled_registry() {
        let ctx = TraceCtx::start();
        ctx.set_tenant("flushy");
        ctx.set_request("spmv", 1);
        ctx.add(Stage::Exec, 5_000_000);
        let rec = ctx.finish(200);
        flush_stage_metrics(&rec, 0); // 0ms objective: any request is over
        let s = metrics::labeled_snapshot();
        let h = s
            .histogram("serve.stage_ns{stage=\"exec\",tenant=\"flushy\"}")
            .expect("stage histogram exists");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 5_000_000);
        assert_eq!(h.exemplars.len(), 1);
        assert_eq!(h.exemplars[0].1, rec.id.0);
        assert!(
            s.counter("serve.slo.over{objective_ms=\"0\",tenant=\"flushy\"}") >= 1,
            "SLO over counter"
        );
        assert!(
            s.histogram("serve.request_ns{tenant=\"flushy\"}").is_some(),
            "request latency histogram"
        );
    }
}
