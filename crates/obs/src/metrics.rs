//! The metrics registry: named monotonic counters and log2-bucketed
//! histograms.
//!
//! Counters use atomic adds under a registry lock taken only on the first
//! touch of a name; histograms allocate a fixed 65-bucket array (one per
//! bit position of a `u64`, plus a zero bucket folded into bucket 0), so
//! recording never allocates after the first observation of a name.
//!
//! The registry is process-global so far-apart layers (the compile cache
//! in `asap-core`, the worker pool in `asap-bench`, budget meters in
//! `asap-ir`) can report into one namespace without plumbing a handle
//! through every API. Names are dotted paths: `cache.hits`,
//! `pool.retries`, `budget.polls`, `vm.dispatch.<opcode>`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Buckets 0..=64: bucket `b` holds observations `v` with
/// `64 - v.leading_zeros() == b`, i.e. bucket 0 is `v == 0`,
/// bucket 1 is `v == 1`, bucket 2 is `2..=3`, bucket 3 is `4..=7`, …
pub const HIST_BUCKETS: usize = 65;

struct Registry {
    counters: BTreeMap<&'static str, &'static AtomicU64>,
    gauges: BTreeMap<&'static str, &'static AtomicI64>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

/// A fixed-size log2 histogram. All fields are atomics so recording
/// after registration is lock-free.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest non-empty bucket (0 if empty).
    pub fn max_bucket_floor(&self) -> u64 {
        for b in (0..HIST_BUCKETS).rev() {
            if self.buckets[b] > 0 {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        0
    }
}

/// Point-in-time copy of the whole registry, in name order (BTreeMap),
/// so two identical runs snapshot to equal values in equal order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    /// Last-value gauges (queue depth, in-flight requests): signed so a
    /// decrement below a racing increment can never wrap.
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Handle to a registered counter: after the first lookup, increments
/// are a single relaxed atomic add.
fn counter_handle(name: &'static str) -> &'static AtomicU64 {
    let mut g = lock();
    g.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn gauge_handle(name: &'static str) -> &'static AtomicI64 {
    let mut g = lock();
    g.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicI64::new(0))))
}

fn histogram_handle(name: &'static str) -> &'static Histogram {
    let mut g = lock();
    g.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Add `n` to the monotonic counter `name` (registering it on first use).
pub fn counter_add(name: &'static str, n: u64) {
    counter_handle(name).fetch_add(n, Ordering::Relaxed);
}

/// Increment the monotonic counter `name` by one.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Set counter `name` to `max(current, v)` — for gauges that mirror an
/// external monotonic source (e.g. the cache's own atomic stats).
pub fn counter_set_max(name: &'static str, v: u64) {
    counter_handle(name).fetch_max(v, Ordering::Relaxed);
}

/// Current value of the counter `name` (0 if never touched). For code
/// that gates on its own prior observations — e.g. a circuit breaker
/// checking how often it has tripped — without a full [`snapshot`].
pub fn counter_get(name: &'static str) -> u64 {
    counter_handle(name).load(Ordering::Relaxed)
}

/// Set the last-value gauge `name` to `v` (registering it on first use).
/// Gauges model instantaneous state — queue depth, in-flight requests —
/// where the *current* value, not an accumulation, is the signal.
pub fn gauge_set(name: &'static str, v: i64) {
    gauge_handle(name).store(v, Ordering::Relaxed);
}

/// Add `delta` to the gauge `name` (atomically; negative deltas allowed).
pub fn gauge_add(name: &'static str, delta: i64) {
    gauge_handle(name).fetch_add(delta, Ordering::Relaxed);
}

/// Subtract `delta` from the gauge `name`.
pub fn gauge_sub(name: &'static str, delta: i64) {
    gauge_handle(name).fetch_sub(delta, Ordering::Relaxed);
}

/// Current value of the gauge `name` (0 if never touched).
pub fn gauge_get(name: &'static str) -> i64 {
    gauge_handle(name).load(Ordering::Relaxed)
}

/// Record one observation into the log2 histogram `name`.
pub fn histogram_record(name: &'static str, v: u64) {
    histogram_handle(name).record(v);
}

/// Copy out every metric, in deterministic (name) order.
pub fn snapshot() -> MetricsSnapshot {
    let g = lock();
    MetricsSnapshot {
        counters: g
            .counters
            .iter()
            .map(|(&n, c)| (n, c.load(Ordering::Relaxed)))
            .collect(),
        gauges: g
            .gauges
            .iter()
            .map(|(&n, v)| (n, v.load(Ordering::Relaxed)))
            .collect(),
        histograms: g
            .histograms
            .iter()
            .map(|(&n, h)| {
                (
                    n,
                    HistogramSnapshot {
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect(),
    }
}

/// Zero every registered metric (names stay registered; the leaked
/// atomics are reused).
pub fn reset() {
    let g = lock();
    for c in g.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for v in g.gauges.values() {
        v.store(0, Ordering::Relaxed);
    }
    for h in g.histograms.values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
}

/// Render a snapshot as a human-readable table (counters first, then
/// histogram summaries). Deterministic for identical snapshots.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name} = {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{name} = {v} (gauge)\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{name}: count={} sum={} mean={:.2}\n",
            h.count,
            h.sum,
            h.mean()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests share the `t.`-prefixed
    // namespace and serialize via the recorder's own coarse behavior
    // (each test uses distinct names, so no lock needed).

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        counter_add("t.zeta", 2);
        counter_inc("t.alpha");
        counter_inc("t.zeta");
        let s = snapshot();
        assert_eq!(s.counter("t.zeta"), 3);
        assert_eq!(s.counter("t.alpha"), 1);
        assert_eq!(s.counter("t.absent"), 0);
        let names: Vec<_> = s.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is name-ordered");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        histogram_record("t.h", 0);
        histogram_record("t.h", 1);
        histogram_record("t.h", 2);
        histogram_record("t.h", 3);
        histogram_record("t.h", 1024);
        let s = snapshot();
        let h = s.histogram("t.h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..=3
        assert_eq!(h.buckets[11], 1); // 1024..=2047
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn gauges_have_last_value_semantics() {
        gauge_set("t.g", 10);
        gauge_set("t.g", 4);
        assert_eq!(gauge_get("t.g"), 4, "set overwrites, never accumulates");
        gauge_add("t.g", 3);
        gauge_sub("t.g", 9);
        assert_eq!(gauge_get("t.g"), -2, "signed arithmetic, no wrap");
        let s = snapshot();
        assert_eq!(s.gauge("t.g"), -2);
        assert_eq!(s.gauge("t.g.absent"), 0);
        let names: Vec<_> = s.gauges.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "gauge snapshot is name-ordered");
    }

    #[test]
    fn gauge_tracking_is_deterministic_across_identical_sequences() {
        let run = || {
            gauge_set("t.g.det", 0);
            for depth in [1i64, 2, 3, 2, 1, 0] {
                gauge_set("t.g.det", depth);
            }
            snapshot().gauge("t.g.det")
        };
        assert_eq!(run(), run());
        // Balanced add/sub from many threads settles back to the start.
        gauge_set("t.g.mt", 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        gauge_add("t.g.mt", 1);
                        gauge_sub("t.g.mt", 1);
                    }
                });
            }
        });
        assert_eq!(gauge_get("t.g.mt"), 0);
    }

    #[test]
    fn render_includes_gauges() {
        gauge_set("t.g.render", 7);
        let text = render(&snapshot());
        assert!(text.contains("t.g.render = 7 (gauge)"), "{text}");
    }

    #[test]
    fn set_max_behaves_like_monotonic_mirror() {
        counter_set_max("t.max", 10);
        counter_set_max("t.max", 4);
        assert_eq!(snapshot().counter("t.max"), 10);
    }

    #[test]
    fn render_is_deterministic() {
        counter_add("t.render", 7);
        let a = render(&snapshot());
        let b = render(&snapshot());
        assert_eq!(a, b);
        assert!(a.contains("t.render = 7"));
    }
}
