//! The metrics registry: named monotonic counters and log2-bucketed
//! histograms.
//!
//! Counters use atomic adds under a registry lock taken only on the first
//! touch of a name; histograms allocate a fixed 65-bucket array (one per
//! bit position of a `u64`, plus a zero bucket folded into bucket 0), so
//! recording never allocates after the first observation of a name.
//!
//! The registry is process-global so far-apart layers (the compile cache
//! in `asap-core`, the worker pool in `asap-bench`, budget meters in
//! `asap-ir`) can report into one namespace without plumbing a handle
//! through every API. Names are dotted paths: `cache.hits`,
//! `pool.retries`, `budget.polls`, `vm.dispatch.<opcode>`.

//! Two registries live here. The original one keys on `&'static str`
//! (hot-path metrics compiled into call sites). The **labeled** one keys
//! on owned strings (`serve.stage_ns{stage="exec",tenant="t0"}`) so the
//! serving layer can fan one metric out per tenant and per stage; its
//! histograms additionally retain **exemplars** — the last 128-bit trace
//! id observed in each bucket, written through a tiny seqlock so a
//! `/metrics` scrape can link a tail bucket to one concrete request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Buckets 0..=64: bucket `b` holds observations `v` with
/// `64 - v.leading_zeros() == b`, i.e. bucket 0 is `v == 0`,
/// bucket 1 is `v == 1`, bucket 2 is `2..=3`, bucket 3 is `4..=7`, …
pub const HIST_BUCKETS: usize = 65;

struct Registry {
    counters: BTreeMap<&'static str, &'static AtomicU64>,
    gauges: BTreeMap<&'static str, &'static AtomicI64>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

/// A fixed-size log2 histogram. All fields are atomics so recording
/// after registration is lock-free.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest non-empty bucket (0 if empty).
    pub fn max_bucket_floor(&self) -> u64 {
        for b in (0..HIST_BUCKETS).rev() {
            if self.buckets[b] > 0 {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        0
    }
}

/// Point-in-time copy of the whole registry, in name order (BTreeMap),
/// so two identical runs snapshot to equal values in equal order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    /// Last-value gauges (queue depth, in-flight requests): signed so a
    /// decrement below a racing increment can never wrap.
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Handle to a registered counter: after the first lookup, increments
/// are a single relaxed atomic add.
fn counter_handle(name: &'static str) -> &'static AtomicU64 {
    let mut g = lock();
    g.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn gauge_handle(name: &'static str) -> &'static AtomicI64 {
    let mut g = lock();
    g.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicI64::new(0))))
}

fn histogram_handle(name: &'static str) -> &'static Histogram {
    let mut g = lock();
    g.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Add `n` to the monotonic counter `name` (registering it on first use).
pub fn counter_add(name: &'static str, n: u64) {
    counter_handle(name).fetch_add(n, Ordering::Relaxed);
}

/// Increment the monotonic counter `name` by one.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Set counter `name` to `max(current, v)` — for gauges that mirror an
/// external monotonic source (e.g. the cache's own atomic stats).
pub fn counter_set_max(name: &'static str, v: u64) {
    counter_handle(name).fetch_max(v, Ordering::Relaxed);
}

/// Current value of the counter `name` (0 if never touched). For code
/// that gates on its own prior observations — e.g. a circuit breaker
/// checking how often it has tripped — without a full [`snapshot`].
pub fn counter_get(name: &'static str) -> u64 {
    counter_handle(name).load(Ordering::Relaxed)
}

/// Set the last-value gauge `name` to `v` (registering it on first use).
/// Gauges model instantaneous state — queue depth, in-flight requests —
/// where the *current* value, not an accumulation, is the signal.
pub fn gauge_set(name: &'static str, v: i64) {
    gauge_handle(name).store(v, Ordering::Relaxed);
}

/// Add `delta` to the gauge `name` (atomically; negative deltas allowed).
pub fn gauge_add(name: &'static str, delta: i64) {
    gauge_handle(name).fetch_add(delta, Ordering::Relaxed);
}

/// Subtract `delta` from the gauge `name`.
pub fn gauge_sub(name: &'static str, delta: i64) {
    gauge_handle(name).fetch_sub(delta, Ordering::Relaxed);
}

/// Current value of the gauge `name` (0 if never touched).
pub fn gauge_get(name: &'static str) -> i64 {
    gauge_handle(name).load(Ordering::Relaxed)
}

/// Record one observation into the log2 histogram `name`.
pub fn histogram_record(name: &'static str, v: u64) {
    histogram_handle(name).record(v);
}

/// Copy out every metric, in deterministic (name) order.
pub fn snapshot() -> MetricsSnapshot {
    let g = lock();
    MetricsSnapshot {
        counters: g
            .counters
            .iter()
            .map(|(&n, c)| (n, c.load(Ordering::Relaxed)))
            .collect(),
        gauges: g
            .gauges
            .iter()
            .map(|(&n, v)| (n, v.load(Ordering::Relaxed)))
            .collect(),
        histograms: g
            .histograms
            .iter()
            .map(|(&n, h)| {
                (
                    n,
                    HistogramSnapshot {
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect(),
    }
}

/// Zero every registered metric (names stay registered; the leaked
/// atomics are reused).
pub fn reset() {
    let g = lock();
    for c in g.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for v in g.gauges.values() {
        v.store(0, Ordering::Relaxed);
    }
    for h in g.histograms.values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
}

/// Render a snapshot as a human-readable table (counters first, then
/// histogram summaries). Deterministic for identical snapshots.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name} = {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{name} = {v} (gauge)\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{name}: count={} sum={} mean={:.2}\n",
            h.count,
            h.sum,
            h.mean()
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Labeled registry (serving telemetry)
// ---------------------------------------------------------------------------
//
// The serving layer needs one histogram per (stage, tenant) pair, and the
// set of tenants is only known at runtime, so these registries key on
// owned `String`s. Recording still costs one registry-lock acquisition
// per call (the name must be hashed either way); the interesting part is
// the exemplar slots: each histogram bucket carries a seqlock-protected
// 128-bit trace id — the last request that landed in that bucket — so
// a `/metrics` scrape can name a concrete request behind a tail bucket.

/// Seqlock-protected 128-bit exemplar slot. Writers bump `seq` to odd,
/// store both halves, bump to even; readers retry until they observe a
/// stable even `seq`. Writers never block (a lost race just means the
/// other request's trace id wins — either is a valid exemplar).
struct ExemplarSlot {
    seq: AtomicU64,
    hi: AtomicU64,
    lo: AtomicU64,
}

impl ExemplarSlot {
    fn new() -> ExemplarSlot {
        ExemplarSlot {
            seq: AtomicU64::new(0),
            hi: AtomicU64::new(0),
            lo: AtomicU64::new(0),
        }
    }

    fn store(&self, id: u128) {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            return; // another writer mid-flight; drop ours
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.hi.store((id >> 64) as u64, Ordering::Relaxed);
        self.lo.store(id as u64, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    fn load(&self) -> Option<u128> {
        for _ in 0..8 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None; // never written
            }
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let hi = self.hi.load(Ordering::Relaxed);
            let lo = self.lo.load(Ordering::Relaxed);
            if self.seq.load(Ordering::Acquire) == s1 {
                return Some(((hi as u128) << 64) | lo as u128);
            }
        }
        None // persistently torn; skip rather than publish garbage
    }
}

/// A log2 histogram whose buckets remember the last trace id observed.
pub struct LabeledHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    exemplars: [ExemplarSlot; HIST_BUCKETS],
}

impl LabeledHistogram {
    fn new() -> LabeledHistogram {
        LabeledHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| ExemplarSlot::new()),
        }
    }

    fn record(&self, v: u64, exemplar: Option<u128>) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(id) = exemplar {
            self.exemplars[b].store(id);
        }
    }
}

struct LabeledRegistry {
    counters: BTreeMap<String, &'static AtomicU64>,
    histograms: BTreeMap<String, &'static LabeledHistogram>,
}

fn labeled_registry() -> &'static Mutex<LabeledRegistry> {
    static REG: OnceLock<Mutex<LabeledRegistry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(LabeledRegistry {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

fn labeled_lock() -> std::sync::MutexGuard<'static, LabeledRegistry> {
    labeled_registry().lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Per-thread handle caches for the hot recording path. Series
    /// handles are `&'static` and are never removed from the registry
    /// ([`labeled_reset`] zeroes values in place), so a cached handle
    /// is valid forever; steady-state recording then takes no lock —
    /// the registry mutex is only paid the first time each thread sees
    /// a series name. Without this, every worker serializes on one
    /// global mutex several times per request, which alone blows the
    /// serving layer's 2% telemetry-overhead budget.
    static TL_COUNTERS: std::cell::RefCell<std::collections::HashMap<String, &'static AtomicU64>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    static TL_HISTOGRAMS:
        std::cell::RefCell<std::collections::HashMap<String, &'static LabeledHistogram>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Format `name{k1="v1",k2="v2"}`. Callers must pass labels in a fixed
/// (alphabetical) key order so the same series always renders the same
/// name — the golden exposition test pins this.
pub fn labeled_name(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Add `n` to the labeled counter `name` (registering it on first use).
pub fn labeled_counter_add(name: &str, n: u64) {
    let h = TL_COUNTERS.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.get(name) {
            Some(c) => *c,
            None => {
                let c = {
                    let mut g = labeled_lock();
                    match g.counters.get(name) {
                        Some(c) => *c,
                        None => {
                            let c: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
                            g.counters.insert(name.to_string(), c);
                            c
                        }
                    }
                };
                cache.insert(name.to_string(), c);
                c
            }
        }
    });
    h.fetch_add(n, Ordering::Relaxed);
}

/// Record one observation into the labeled histogram `name`, optionally
/// stamping `exemplar` (a 128-bit trace id) into the bucket it lands in.
pub fn labeled_histogram_record(name: &str, v: u64, exemplar: Option<u128>) {
    let h = TL_HISTOGRAMS.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.get(name) {
            Some(h) => *h,
            None => {
                let h = {
                    let mut g = labeled_lock();
                    match g.histograms.get(name) {
                        Some(h) => *h,
                        None => {
                            let h: &'static LabeledHistogram =
                                Box::leak(Box::new(LabeledHistogram::new()));
                            g.histograms.insert(name.to_string(), h);
                            h
                        }
                    }
                };
                cache.insert(name.to_string(), h);
                h
            }
        }
    });
    h.record(v, exemplar);
}

/// Point-in-time copy of one labeled histogram. `exemplars` holds
/// `(bucket_index, trace_id)` pairs for buckets that have one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledHistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub exemplars: Vec<(usize, u128)>,
}

impl LabeledHistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of the labeled registry, in name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabeledSnapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, LabeledHistogramSnapshot)>,
}

impl LabeledSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&LabeledHistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Copy out every labeled metric, in deterministic (name) order.
pub fn labeled_snapshot() -> LabeledSnapshot {
    let g = labeled_lock();
    LabeledSnapshot {
        counters: g
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect(),
        histograms: g
            .histograms
            .iter()
            .map(|(n, h)| {
                let mut exemplars = Vec::new();
                for b in 0..HIST_BUCKETS {
                    if h.buckets[b].load(Ordering::Relaxed) > 0 {
                        if let Some(id) = h.exemplars[b].load() {
                            exemplars.push((b, id));
                        }
                    }
                }
                (
                    n.clone(),
                    LabeledHistogramSnapshot {
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        exemplars,
                    },
                )
            })
            .collect(),
    }
}

/// Zero every labeled metric (names stay registered). Exemplar slots are
/// cleared back to the never-written state observers see as absent.
pub fn labeled_reset() {
    let g = labeled_lock();
    for c in g.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for h in g.histograms.values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for e in &h.exemplars {
            e.hi.store(0, Ordering::Relaxed);
            e.lo.store(0, Ordering::Relaxed);
            e.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// How many of the highest non-empty buckets render their exemplar.
/// Tail buckets are the ones a p99 investigation needs; capping the
/// rendered set keeps `/metrics` output bounded per series.
pub const EXEMPLAR_TAIL_BUCKETS: usize = 3;

/// Render the labeled registry. Counters render exactly like unlabeled
/// ones; histograms add a sparse `buckets=[idx:count,…]` listing and an
/// `exemplars=[idx:trace_hex,…]` listing restricted to the top
/// [`EXEMPLAR_TAIL_BUCKETS`] non-empty buckets. The golden exposition
/// test pins this format byte-for-byte.
pub fn render_labeled(snap: &LabeledSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name} = {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let mut nonempty: Vec<usize> = (0..HIST_BUCKETS).filter(|&b| h.buckets[b] > 0).collect();
        let tail_from = nonempty.len().saturating_sub(EXEMPLAR_TAIL_BUCKETS);
        let tail: Vec<usize> = nonempty.split_off(tail_from);
        let head = nonempty; // renamed for clarity: all non-tail buckets
        let mut bstr = String::new();
        for &b in head.iter().chain(tail.iter()) {
            if !bstr.is_empty() {
                bstr.push(',');
            }
            bstr.push_str(&format!("{b}:{}", h.buckets[b]));
        }
        let mut estr = String::new();
        for &(b, id) in h.exemplars.iter().filter(|(b, _)| tail.contains(b)) {
            if !estr.is_empty() {
                estr.push(',');
            }
            estr.push_str(&format!("{b}:{id:032x}"));
        }
        out.push_str(&format!(
            "{name}: count={} sum={} mean={:.2} buckets=[{bstr}] exemplars=[{estr}]\n",
            h.count,
            h.sum,
            h.mean()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests share the `t.`-prefixed
    // namespace and serialize via the recorder's own coarse behavior
    // (each test uses distinct names, so no lock needed).

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        counter_add("t.zeta", 2);
        counter_inc("t.alpha");
        counter_inc("t.zeta");
        let s = snapshot();
        assert_eq!(s.counter("t.zeta"), 3);
        assert_eq!(s.counter("t.alpha"), 1);
        assert_eq!(s.counter("t.absent"), 0);
        let names: Vec<_> = s.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is name-ordered");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        histogram_record("t.h", 0);
        histogram_record("t.h", 1);
        histogram_record("t.h", 2);
        histogram_record("t.h", 3);
        histogram_record("t.h", 1024);
        let s = snapshot();
        let h = s.histogram("t.h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..=3
        assert_eq!(h.buckets[11], 1); // 1024..=2047
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn gauges_have_last_value_semantics() {
        gauge_set("t.g", 10);
        gauge_set("t.g", 4);
        assert_eq!(gauge_get("t.g"), 4, "set overwrites, never accumulates");
        gauge_add("t.g", 3);
        gauge_sub("t.g", 9);
        assert_eq!(gauge_get("t.g"), -2, "signed arithmetic, no wrap");
        let s = snapshot();
        assert_eq!(s.gauge("t.g"), -2);
        assert_eq!(s.gauge("t.g.absent"), 0);
        let names: Vec<_> = s.gauges.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "gauge snapshot is name-ordered");
    }

    #[test]
    fn gauge_tracking_is_deterministic_across_identical_sequences() {
        let run = || {
            gauge_set("t.g.det", 0);
            for depth in [1i64, 2, 3, 2, 1, 0] {
                gauge_set("t.g.det", depth);
            }
            snapshot().gauge("t.g.det")
        };
        assert_eq!(run(), run());
        // Balanced add/sub from many threads settles back to the start.
        gauge_set("t.g.mt", 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        gauge_add("t.g.mt", 1);
                        gauge_sub("t.g.mt", 1);
                    }
                });
            }
        });
        assert_eq!(gauge_get("t.g.mt"), 0);
    }

    #[test]
    fn render_includes_gauges() {
        gauge_set("t.g.render", 7);
        let text = render(&snapshot());
        assert!(text.contains("t.g.render = 7 (gauge)"), "{text}");
    }

    #[test]
    fn set_max_behaves_like_monotonic_mirror() {
        counter_set_max("t.max", 10);
        counter_set_max("t.max", 4);
        assert_eq!(snapshot().counter("t.max"), 10);
    }

    #[test]
    fn render_is_deterministic() {
        counter_add("t.render", 7);
        let a = render(&snapshot());
        let b = render(&snapshot());
        assert_eq!(a, b);
        assert!(a.contains("t.render = 7"));
    }

    #[test]
    fn labeled_name_is_built_in_caller_order() {
        assert_eq!(
            labeled_name("g.stage_ns", &[("stage", "exec"), ("tenant", "t0")]),
            "g.stage_ns{stage=\"exec\",tenant=\"t0\"}"
        );
        assert_eq!(labeled_name("g.plain", &[]), "g.plain{}");
    }

    #[test]
    fn labeled_counters_and_histograms_accumulate() {
        labeled_counter_add("g.lc{tenant=\"a\"}", 2);
        labeled_counter_add("g.lc{tenant=\"a\"}", 3);
        labeled_histogram_record("g.lh{tenant=\"a\"}", 100, Some(0xabc));
        labeled_histogram_record("g.lh{tenant=\"a\"}", 100, None);
        let s = labeled_snapshot();
        assert_eq!(s.counter("g.lc{tenant=\"a\"}"), 5);
        let h = s.histogram("g.lh{tenant=\"a\"}").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 200);
        assert_eq!(h.buckets[7], 2); // 64..=127
        assert_eq!(h.exemplars, vec![(7, 0xabc)]);
    }

    #[test]
    fn exemplar_slot_survives_concurrent_writes() {
        let slot = ExemplarSlot::new();
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let slot = &slot;
                s.spawn(move || {
                    for i in 0..500u128 {
                        // Writer t always stores hi == lo == t*1000+i, so a
                        // torn read (one writer's hi paired with another's
                        // lo) shows up as mismatched halves.
                        let v = t * 1000 + i;
                        slot.store((v << 64) | v);
                        if let Some(got) = slot.load() {
                            assert_eq!(got >> 64, got & u64::MAX as u128, "torn exemplar read");
                        }
                    }
                });
            }
        });
        let fin = slot.load().expect("written at least once");
        assert_eq!(fin >> 64, fin & u64::MAX as u128);
    }

    /// Golden test for the labeled exposition format: names, label order,
    /// sparse bucket layout, and tail-bucket exemplars are pinned so
    /// scrapers and the A/B smokes don't silently break.
    #[test]
    fn labeled_render_golden() {
        let name = labeled_name("g.golden_ns", &[("stage", "exec"), ("tenant", "gold")]);
        // Buckets: 1→b1, 2→b2, 5→b3, 70→b7, 1000→b10, 5000→b13.
        for v in [1u64, 2, 5, 70, 1000, 5000] {
            labeled_histogram_record(&name, v, Some(0x00de_ad00_0000_0000_0000_0000_0000_beef));
        }
        labeled_counter_add("g.golden.over{tenant=\"gold\"}", 4);
        let s = labeled_snapshot();
        let text = render_labeled(&LabeledSnapshot {
            counters: s
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("g.golden"))
                .cloned()
                .collect(),
            histograms: s
                .histograms
                .iter()
                .filter(|(n, _)| n.starts_with("g.golden"))
                .cloned()
                .collect(),
        });
        let want = concat!(
            "g.golden.over{tenant=\"gold\"} = 4\n",
            "g.golden_ns{stage=\"exec\",tenant=\"gold\"}: count=6 sum=6078 mean=1013.00 ",
            "buckets=[1:1,2:1,3:1,7:1,10:1,13:1] ",
            "exemplars=[7:00dead0000000000000000000000beef,",
            "10:00dead0000000000000000000000beef,",
            "13:00dead0000000000000000000000beef]\n",
        );
        assert_eq!(text, want);
    }

    #[test]
    fn labeled_reset_clears_values_and_exemplars() {
        labeled_counter_add("g.reset.c{}", 9);
        labeled_histogram_record("g.reset.h{}", 42, Some(7));
        labeled_reset();
        let s = labeled_snapshot();
        assert_eq!(s.counter("g.reset.c{}"), 0);
        let h = s.histogram("g.reset.h{}").unwrap();
        assert_eq!(h.count, 0);
        assert!(h.exemplars.is_empty());
    }
}
