//! The run manifest: enough provenance stamped into every results file
//! to re-run the experiment — tool name, package version, build profile,
//! and the flag/seed/budget key-values the binary was invoked with.
//!
//! Deliberately git-free: builds are air-gapped and the version from
//! `CARGO_PKG_VERSION` plus the recorded flags is the reproducibility
//! contract, not a commit hash.

use crate::sink::json_escape;

/// Provenance for one run. Serialize with [`RunManifest::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// The binary or subcommand that produced the results.
    pub tool: String,
    /// Workspace package version (compile-time).
    pub version: &'static str,
    /// `release` or `debug` (compile-time).
    pub profile: &'static str,
    /// Invocation key-values: flags, seed, budget, matrix set, …
    /// Serialized in insertion order.
    pub args: Vec<(String, String)>,
}

/// Build profile this crate was compiled under.
pub const BUILD_PROFILE: &str = if cfg!(debug_assertions) {
    "debug"
} else {
    "release"
};

impl RunManifest {
    pub fn new(tool: impl Into<String>) -> RunManifest {
        RunManifest {
            tool: tool.into(),
            version: env!("CARGO_PKG_VERSION"),
            profile: BUILD_PROFILE,
            args: Vec::new(),
        }
    }

    /// Record one invocation key-value (builder-style).
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> RunManifest {
        self.args.push((key.into(), value.to_string()));
        self
    }

    /// Record one invocation key-value (in-place).
    pub fn push(&mut self, key: impl Into<String>, value: impl ToString) {
        self.args.push((key.into(), value.to_string()));
    }

    /// Serialize as a JSON object (single line, deterministic order).
    pub fn to_json(&self) -> String {
        let mut args = String::new();
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        format!(
            "{{\"tool\":\"{}\",\"version\":\"{}\",\"profile\":\"{}\",\"args\":{{{}}}}}",
            json_escape(&self.tool),
            self.version,
            self.profile,
            args
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_order() {
        let m = RunManifest::new("fig6")
            .with("seed", 42)
            .with("size", "small");
        let j = m.to_json();
        assert!(j.starts_with("{\"tool\":\"fig6\",\"version\":\""));
        assert!(j.contains("\"profile\":\""));
        assert!(j.contains("\"args\":{\"seed\":\"42\",\"size\":\"small\"}"));
        assert!(crate::sink::validate_jsonl(&format!(
            "{{\"type\":\"manifest\",\"manifest\":{j}}}\n"
        ))
        .is_ok());
    }

    #[test]
    fn escapes_arg_values() {
        let m = RunManifest::new("t").with("path", "a\"b");
        assert!(m.to_json().contains("a\\\"b"));
    }
}
