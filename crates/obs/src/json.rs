//! The workspace's one JSON implementation.
//!
//! Before this module the JSON *writer* was duplicated three times
//! (the trace sink, the bench result emitter, the run manifest) and the
//! only parser was a bespoke cursor inside `asap-bench::run`. The
//! serving layer needs a general, tolerant reader for request bodies,
//! so writer and parser now live together here, round-trip-tested, and
//! every emitter shares [`escape`]/[`fmt_f64`]/[`ObjWriter`].
//!
//! The parser handles the full value grammar the workspace emits —
//! objects, arrays, strings (with `\uXXXX` escapes), numbers, booleans,
//! `null` — and is *tolerant* in the sense that it accepts any field
//! order and arbitrary nesting; malformed input is a typed
//! [`AsapError::Json`] carrying the byte offset of the failure, never a
//! panic. Numbers keep their raw token ([`Json::Num`]) so integer
//! fields round-trip exactly (no forced trip through `f64`).

use asap_ir::AsapError;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float for JSON output: finite values print their shortest
/// round-trippable representation; NaN/inf (not representable in JSON)
/// degrade to `0.0`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits the decimal point for integral floats; keep one so
        // the token reads back as a float everywhere.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// Incremental writer for one JSON object: `{"k":v,...}` with the
/// commas and escaping handled. The field methods take the key unescaped
/// and escape string *values*; keys are workspace-controlled literals.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.u64(k, v as u64)
    }

    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emit `v` verbatim — for pre-rendered arrays/objects.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// An array of string values, each escaped.
    pub fn str_array<S: AsRef<str>>(&mut self, k: &str, vs: &[S]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "\"{}\"", escape(v.as_ref()));
        }
        self.buf.push(']');
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value. Numbers keep their raw source token so callers
/// can re-parse into the exact target type (`u64` fields never round
/// through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// The raw number token, e.g. `"-12"` or `"3.25e-2"`.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Fields in source order (duplicate keys keep both; lookups take
    /// the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Render back to JSON text (strings escaped, numbers verbatim).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse one JSON value from `text`, rejecting trailing non-whitespace.
/// Malformed input is a typed [`AsapError::Json`] with the byte offset
/// where the parse failed.
pub fn parse(text: &str) -> Result<Json, AsapError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i < p.b.len() {
        return Err(AsapError::json(p.i, "trailing data after JSON value"));
    }
    Ok(v)
}

/// Nesting cap: bounds stack use on hostile request bodies.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> AsapError {
        AsapError::json(self.i, message)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), AsapError> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, AsapError> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.b.get(self.i) {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, AsapError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, AsapError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|_| self.err("expected object key"))?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Json, AsapError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, AsapError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err(format!("bad \\u escape {hex:?}")))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(cp).ok_or_else(|| {
                                    self.err(format!("invalid codepoint {cp:#x}"))
                                })?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Decode the one UTF-8 character starting here from a
                    // bounded window. Validating `&self.b[start..]` instead
                    // would re-scan the whole tail per character — O(n²) on
                    // the multi-hundred-KB inline-matrix strings the serving
                    // layer parses.
                    let start = self.i - 1;
                    let end = (start + 4).min(self.b.len());
                    let window = &self.b[start..end];
                    let s = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // A complete char followed by the start of another
                        // that the 4-byte window truncates is fine.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).expect("valid prefix")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let ch = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(ch);
                    self.i = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, AsapError> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let raw =
            std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad number"))?;
        // Validate the token parses as a float so `Num` is always usable.
        raw.parse::<f64>()
            .map_err(|_| AsapError::json(start, format!("bad number token {raw:?}")))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_value_grammar() {
        let text = r#"{"a":1,"b":-2.5e3,"s":"x\n\"y\"","t":true,"f":false,"n":null,
                       "arr":[1,"two",{"k":3}],"nested":{"deep":[[]]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("f").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("n"), Some(&Json::Null));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("k").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn roundtrips_render_then_parse() {
        let text = r#"{"m":"a\"b\\c","n":18446744073709551615,"f":0.1,"arr":[true,null,"s"]}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.render()).unwrap();
        assert_eq!(v, again);
        // u64::MAX survives exactly — no f64 round trip.
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn writer_output_parses_back() {
        let mut w = ObjWriter::new();
        w.str("name", "a\"b\nc")
            .u64("count", 42)
            .f64("rate", 1.5)
            .f64("whole", 3.0)
            .bool("ok", true)
            .str_array("tags", &["x", "y\\z"])
            .raw("inner", "{\"k\":1}");
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("whole").unwrap().as_f64(), Some(3.0));
        assert_eq!(Json::Num("3.0".into()), v.get("whole").unwrap().clone());
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let tags = v.get("tags").unwrap().as_array().unwrap();
        assert_eq!(tags[1].as_str(), Some("y\\z"));
        assert_eq!(v.get("inner").unwrap().get("k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn malformed_input_is_a_typed_json_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "tru",
            "01a",
            "nul",
            "{\"k\": @}",
            "\"bad \\q escape\"",
        ] {
            let e = parse(bad).unwrap_err();
            assert_eq!(e.kind(), "json", "{bad:?} -> {e}");
        }
    }

    #[test]
    fn hostile_nesting_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.kind(), "json");
        assert!(e.to_string().contains("nesting"), "{e}");
    }

    #[test]
    fn fmt_f64_keeps_a_decimal_point_and_handles_nonfinite() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
