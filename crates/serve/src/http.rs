//! A deliberately minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The daemon speaks exactly the subset its clients need: one request
//! per connection (`Connection: close` on every response), `GET`/`POST`,
//! `Content-Length` bodies only (no chunked encoding), ASCII headers.
//! Anything outside that subset is a typed [`HttpError`] the worker
//! turns into the matching 4xx — never a panic, never an unbounded
//! read. Every dimension of a request is capped *before* allocation:
//!
//! - request line length ([`MAX_REQUEST_LINE`]) → 414
//! - header count ([`MAX_HEADERS`]) and total head bytes
//!   ([`MAX_HEAD_BYTES`]) → 431
//! - body bytes (per-server `max_body_bytes`) → 413
//! - wall-clock read time (2× the per-read timeout) → 408, so a
//!   slow-loris drip cannot hold a worker by resetting the socket
//!   timeout one byte at a time

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line + headers. Generous for hand-written
/// clients, small enough that a garbage stream cannot balloon memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on distinct header lines; beyond it the request is a 431.
pub const MAX_HEADERS: usize = 64;

/// Cap on the request line (method + path + version); beyond it, 414.
pub const MAX_REQUEST_LINE: usize = 4096;

/// Per-connection socket timeout: a client that stops mid-request (or
/// never sends one) releases the worker within this bound.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Debug)]
pub enum HttpError {
    /// The stream closed before a complete request arrived.
    Closed,
    /// Request line, headers, or framing violated the supported subset.
    Malformed(String),
    /// Body exceeded the configured cap.
    TooLarge(String),
    /// Too many headers, or the head as a whole exceeded its cap.
    HeaderLimit(String),
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    LineLimit(String),
    /// The client fed bytes too slowly: the wall-clock deadline for
    /// reading one request expired before it completed.
    Timeout,
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this error should be answered with, or `None`
    /// when there is nobody left to answer (close / transport error).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::Timeout => Some(408),
            HttpError::TooLarge(_) => Some(413),
            HttpError::LineLimit(_) => Some(414),
            HttpError::HeaderLimit(_) => Some(431),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a complete request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::HeaderLimit(m) => write!(f, "header limit exceeded: {m}"),
            HttpError::LineLimit(m) => write!(f, "request line too long: {m}"),
            HttpError::Timeout => write!(f, "timed out reading the request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    /// Parsed headers, names lowercased, values trimmed, wire order
    /// preserved. Bounded by [`MAX_HEADERS`]/[`MAX_HEAD_BYTES`].
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request (head + `Content-Length` body) from the stream.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, HttpError> {
    read_request_timeout(stream, max_body, IO_TIMEOUT)
}

/// [`read_request`] with an explicit per-read timeout. The whole request
/// is bounded by twice the timeout. A lying `Content-Length` (larger
/// than the bytes that ever arrive) stalls a worker for the full
/// timeout, so servers expecting hostile traffic should pass something
/// much shorter than the 10 s default.
pub fn read_request_with_timeout(
    stream: &mut TcpStream,
    max_body: usize,
    timeout: Duration,
) -> Result<HttpRequest, HttpError> {
    read_request_timeout(stream, max_body, timeout)
}

/// Best-effort read-and-discard of one request so a rejection response
/// survives the close: dropping a socket with unread request bytes in
/// its receive buffer makes the kernel send RST, which can destroy the
/// in-flight response before the client reads it. Short timeout so a
/// slow client cannot wedge the (single) thread rejections run on.
pub fn drain_request(stream: &mut TcpStream, max_body: usize) {
    let _ = read_request_timeout(stream, max_body, Duration::from_secs(1));
}

fn read_request_timeout(
    stream: &mut TcpStream,
    max_body: usize,
    timeout: Duration,
) -> Result<HttpRequest, HttpError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(HttpError::Io)?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(HttpError::Io)?;
    // The socket timeout bounds one read; this bounds the whole
    // request. A drip client resets the former with every byte but can
    // never reset the latter.
    let deadline = Instant::now() + timeout * 2;
    let overdue = |d: Instant| {
        if Instant::now() >= d {
            Err(HttpError::Timeout)
        } else {
            Ok(())
        }
    };

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeaderLimit(format!(
                "head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        overdue(deadline)?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    // The in-loop check catches unterminated garbage; a terminated head
    // can still land past the cap on the read that found the terminator.
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeaderLimit(format!(
            "head of {head_end} bytes exceeds {MAX_HEAD_BYTES}"
        )));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()))?;
    if head.contains('\0') {
        return Err(HttpError::Malformed("NUL byte in request head".into()));
    }

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::LineLimit(format!(
            "{} bytes exceeds the {MAX_REQUEST_LINE} byte cap",
            request_line.len()
        )));
    }
    let mut first = request_line.split_whitespace();
    let method = first
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = first
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    match first.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("expected HTTP/1.x".into())),
    }

    // Parse every header once, strictly: a line without a colon (or
    // with an empty name) is framing junk, not a header to skip over —
    // skipping is how request-smuggling bugs start.
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeaderLimit(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header line without a colon: {:?}",
                truncate_for_log(line)
            )));
        };
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::Malformed(format!(
                "invalid header name: {:?}",
                truncate_for_log(line)
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let header_all = |name: &str| -> Vec<&str> {
        headers
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    };
    let content_length: usize = match header_all("content-length")[..] {
        [] => 0,
        [v] => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        // Duplicates — even agreeing ones — are the classic smuggling
        // vector; reject rather than pick one.
        [..] => {
            return Err(HttpError::Malformed(
                "multiple content-length headers".into(),
            ))
        }
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body} byte cap"
        )));
    }
    if !header_all("transfer-encoding").is_empty() {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send content-length".into(),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        overdue(deadline)?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            return Err(HttpError::Malformed("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    // Anything past the declared length is pipelined junk: dropped, not
    // parsed (one request per connection).
    body.truncate(content_length);
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

fn truncate_for_log(line: &str) -> String {
    let mut s: String = line.chars().take(48).collect();
    if s.len() < line.len() {
        s.push('…');
    }
    s
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete response and flush. Every response closes the
/// connection (one request per connection keeps the admission-control
/// accounting exact: one accepted socket == one unit of queued work).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// Write a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response(stream, status, extra_headers, "application/json", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<HttpRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Close the write half so truncated requests hit EOF.
            s.shutdown(std::net::Shutdown::Write).ok();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let r = read_request(&mut server_side, 1024);
        client.join().unwrap();
        r
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn header_lookup_is_case_insensitive_first_match_trimmed() {
        let req = roundtrip(
            b"POST /v1/run HTTP/1.1\r\nX-Asap-Tenant:  team-a \r\nx-asap-tenant: team-b\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.header("X-ASAP-TENANT"), Some("team-a"));
        assert_eq!(req.header("x-asap-tenant"), Some("team-a"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_zero_length_post() {
        let req = roundtrip(b"POST /v1/run HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(roundtrip(b""), Err(HttpError::Closed)));
        assert!(matches!(
            roundtrip(b"not an http request\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn content_length_smaller_than_body_drops_the_excess() {
        // Extra bytes past the declared length are pipelined junk the
        // parser must ignore, not a second request to serve.
        let req =
            roundtrip(b"POST /v1/run HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdEXTRA").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn content_length_larger_than_body_is_a_truncated_request() {
        let err = roundtrip(b"POST /v1/run HTTP/1.1\r\nContent-Length: 9\r\n\r\nabcd").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn duplicate_content_length_is_rejected_even_when_agreeing() {
        for raw in [
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd".as_slice(),
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nabcd".as_slice(),
        ] {
            let err = roundtrip(raw).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        }
    }

    #[test]
    fn request_line_at_limit_parses_and_over_limit_is_414() {
        // Exactly at the cap: "GET /aaa...a HTTP/1.1" == MAX_REQUEST_LINE bytes.
        let path_len = MAX_REQUEST_LINE - "GET / HTTP/1.1".len();
        let at = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(path_len));
        let req = roundtrip(at.as_bytes()).unwrap();
        assert_eq!(req.path.len(), path_len + 1);

        let over = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(path_len + 1));
        let err = roundtrip(over.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::LineLimit(_)), "{err}");
        assert_eq!(err.status(), Some(414));
    }

    #[test]
    fn header_count_over_limit_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = roundtrip(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::HeaderLimit(_)), "{err}");
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn oversized_head_is_431() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEAD_BYTES + 1)
        );
        let err = roundtrip(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::HeaderLimit(_)), "{err}");
    }

    #[test]
    fn crlf_split_header_values_cannot_smuggle_content_length() {
        // A client "value" carrying its own CRLF materializes as an
        // extra header line on the wire. If that line smuggles a second
        // Content-Length, the duplicate check fires; if it is junk
        // without a colon, strict parsing fires. Either way: 400.
        let smuggle =
            b"POST /x HTTP/1.1\r\nX-A: v\r\nContent-Length: 2\r\nContent-Length: 0\r\n\r\nok";
        assert!(matches!(
            roundtrip(smuggle).unwrap_err(),
            HttpError::Malformed(_)
        ));
        let junk = b"GET / HTTP/1.1\r\nX-A: v\r\ninjected junk line\r\n\r\n";
        assert!(matches!(
            roundtrip(junk).unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn nul_bytes_in_head_are_rejected() {
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\nX-A: a\x00b\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }
}
