//! A deliberately minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The daemon speaks exactly the subset its clients need: one request
//! per connection (`Connection: close` on every response), `GET`/`POST`,
//! `Content-Length` bodies only (no chunked encoding), ASCII headers.
//! Anything outside that subset is a typed [`HttpError`] the worker
//! turns into a 400 — never a panic, never an unbounded read: header
//! and body sizes are capped before allocation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers. Generous for hand-written
/// clients, small enough that a garbage stream cannot balloon memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection socket timeout: a client that stops mid-request (or
/// never sends one) releases the worker within this bound.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Debug)]
pub enum HttpError {
    /// The stream closed before a complete request arrived.
    Closed,
    /// Request line, headers, or framing violated the supported subset.
    Malformed(String),
    /// Head or body exceeded the configured cap.
    TooLarge(String),
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a complete request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().skip(1).find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Read one request (head + `Content-Length` body) from the stream.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, HttpError> {
    read_request_timeout(stream, max_body, IO_TIMEOUT)
}

/// Best-effort read-and-discard of one request so a rejection response
/// survives the close: dropping a socket with unread request bytes in
/// its receive buffer makes the kernel send RST, which can destroy the
/// in-flight response before the client reads it. Short timeout so a
/// slow client cannot wedge the (single) thread rejections run on.
pub fn drain_request(stream: &mut TcpStream, max_body: usize) {
    let _ = read_request_timeout(stream, max_body, Duration::from_secs(1));
}

fn read_request_timeout(
    stream: &mut TcpStream,
    max_body: usize,
    timeout: Duration,
) -> Result<HttpRequest, HttpError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(HttpError::Io)?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(HttpError::Io)?;

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "headers exceed {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()))?
        .to_string();
    let mut first = head.lines().next().unwrap_or("").split_whitespace();
    let method = first
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = first
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    match first.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("expected HTTP/1.x".into())),
    }

    let content_length: usize = match header_value(&head, "content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body} byte cap"
        )));
    }
    if header_value(&head, "transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send content-length".into(),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete response and flush. Every response closes the
/// connection (one request per connection keeps the admission-control
/// accounting exact: one accepted socket == one unit of queued work).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// Write a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response(stream, status, extra_headers, "application/json", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<HttpRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Close the write half so truncated requests hit EOF.
            s.shutdown(std::net::Shutdown::Write).ok();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let r = read_request(&mut server_side, 1024);
        client.join().unwrap();
        r
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(roundtrip(b""), Err(HttpError::Closed)));
        assert!(matches!(
            roundtrip(b"not an http request\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }
}
