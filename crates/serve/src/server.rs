//! Server lifecycle: the accept loop, the worker pool, the disconnect
//! reaper, and graceful drain-then-stop shutdown.
//!
//! Thread structure (all plain `std::thread`, joined on shutdown):
//!
//! - **accept** — non-blocking `TcpListener` polled at ~1ms. Admission
//!   control happens *here*, before any parsing: a connection either
//!   enters the bounded queue or is answered 429 + `Retry-After`
//!   immediately. When draining starts, the loop closes the queue and
//!   exits — already-queued connections still get served.
//! - **workers** (N) — pop connections, parse HTTP, route, execute.
//!   Each request runs under `catch_unwind`: a panic becomes a 500 for
//!   that one client and a `serve.panics` tick, never a dead worker
//!   (the same isolation contract as the bench pool).
//! - **reaper** — polls in-flight clients with a non-blocking peek;
//!   a closed socket fires the request's [`CancelToken`], so an
//!   abandoned SpMM stops burning CPU at the budget's next poll slot
//!   instead of running to completion.
//!
//! Shutdown (`POST /control/shutdown` or [`Server::join`]) is
//! drain-then-stop: stop admitting, serve everything queued, join every
//! thread. No request that got a 2xx admission is dropped.

use crate::batcher::SingleFlight;
use crate::http::{drain_request, read_request, write_json, write_response, HttpError};
use crate::matrix::MatrixCatalog;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{parse_run_request, render_error, render_outcome};
use asap_ir::CancelToken;
use asap_matrices::SizeClass;
use asap_obs::ObjWriter;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Reaper poll interval for in-flight client sockets.
const REAPER_POLL: Duration = Duration::from_millis(10);

#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bound on accepted-but-not-yet-served connections; beyond it,
    /// clients get an immediate 429.
    pub queue_bound: usize,
    /// Size class for named collection matrices.
    pub size: SizeClass,
    /// Deadline applied when a request does not set `deadline_ms`
    /// (0 = none).
    pub default_deadline_ms: u64,
    /// Cap on request body bytes (inline MatrixMarket can be big).
    pub max_body_bytes: usize,
    /// Test-only: sleep this long after claiming each connection,
    /// simulating a slow worker so overload tests are deterministic.
    pub worker_delay_ms: u64,
    /// Test-only: expose `POST /debug/panic` to exercise per-request
    /// panic isolation end to end.
    pub enable_fault_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_bound: 64,
            size: SizeClass::Tiny,
            default_deadline_ms: 10_000,
            max_body_bytes: 4 * 1024 * 1024,
            worker_delay_ms: 0,
            enable_fault_endpoints: false,
        }
    }
}

/// In-flight socket registry the reaper sweeps.
#[derive(Default)]
struct Reaper {
    inflight: Mutex<HashMap<u64, (CancelToken, TcpStream)>>,
    next_id: AtomicU64,
}

impl Reaper {
    /// Register an executing request; the stream clone is switched to
    /// non-blocking so the sweep's peek never stalls.
    fn register(&self, token: &CancelToken, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        clone.set_nonblocking(true).ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, (token.clone(), clone));
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }

    /// One sweep: cancel every request whose client hung up.
    fn sweep(&self) {
        let g = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        let mut buf = [0u8; 1];
        for (token, stream) in g.values() {
            match stream.peek(&mut buf) {
                // EOF: the client closed its end.
                Ok(0) => {
                    if !token.is_cancelled() {
                        asap_obs::counter_inc("serve.client_disconnects");
                        token.cancel();
                    }
                }
                // Bytes pending or nothing yet: still connected.
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                // Reset / broken pipe: gone.
                Err(_) => {
                    if !token.is_cancelled() {
                        asap_obs::counter_inc("serve.client_disconnects");
                        token.cancel();
                    }
                }
            }
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<TcpStream>,
    draining: AtomicBool,
    reaper_stop: AtomicBool,
    flights: SingleFlight,
    catalog: MatrixCatalog,
    reaper: Reaper,
    // Per-server health counters ( /metrics shows the process-global
    // registry; /healthz must describe *this* server instance).
    served: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`Server::join`] (or send `POST /control/shutdown` and then `join`).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start the accept loop, workers, and reaper.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_bound),
            draining: AtomicBool::new(false),
            reaper_stop: AtomicBool::new(false),
            flights: SingleFlight::new(),
            catalog: MatrixCatalog::new(cfg.size),
            reaper: Reaper::default(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            cfg,
        });

        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let reaper = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-reaper".into())
                .spawn(move || {
                    while !shared.reaper_stop.load(Ordering::Acquire) {
                        shared.reaper.sweep();
                        std::thread::sleep(REAPER_POLL);
                    }
                })?
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start draining: stop admitting, let queued and in-flight work
    /// finish. Idempotent; returns immediately.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Daemon mode: block until a drain is requested (via
    /// `POST /control/shutdown` or another handle's [`Server::begin_drain`]),
    /// then finish the drain and join every thread.
    pub fn run_until_drained(self) {
        while !self.shared.draining.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Drain and block until every thread has exited. Queued
    /// connections are served before workers stop.
    pub fn join(mut self) {
        self.begin_drain();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.reaper_stop.store(true, Ordering::Release);
        if let Some(r) = self.reaper.take() {
            let _ = r.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            // Stop admitting; wake workers to drain what's queued.
            shared.queue.close();
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                asap_obs::counter_inc("serve.accepted");
                // The accepted socket must block normally for the
                // worker's reads regardless of listener flags.
                let _ = stream.set_nonblocking(false);
                admit(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept failure (EMFILE, aborted handshake):
            // back off and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn admit(stream: TcpStream, shared: &Shared) {
    match shared.queue.try_push(stream) {
        Ok(depth) => {
            asap_obs::gauge_set("serve.queue_depth", depth as i64);
            asap_obs::counter_set_max("serve.queue_depth_peak", depth as u64);
        }
        Err(PushError::Full(mut stream)) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            drain_request(&mut stream, shared.cfg.max_body_bytes);
            let _ = write_json(
                &mut stream,
                429,
                &[("Retry-After", "1".to_string())],
                &render_error("overloaded", "admission", "queue full; retry after 1s"),
            );
        }
        Err(PushError::Closed(mut stream)) => {
            drain_request(&mut stream, shared.cfg.max_body_bytes);
            let _ = write_json(
                &mut stream,
                503,
                &[],
                &render_error("draining", "admission", "server is shutting down"),
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut stream) = shared.queue.pop() {
        asap_obs::gauge_set("serve.queue_depth", shared.queue.len() as i64);
        if shared.cfg.worker_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.cfg.worker_delay_ms));
        }
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        asap_obs::gauge_add("serve.in_flight", 1);
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &mut stream)));
        asap_obs::gauge_sub("serve.in_flight", 1);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Err(payload) = outcome {
            asap_obs::counter_inc("serve.panics");
            let msg = panic_message(payload.as_ref());
            let _ = write_json(&mut stream, 500, &[], &render_error("panic", "panic", &msg));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request handler panicked".to_string()
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let req = match read_request(stream, shared.cfg.max_body_bytes) {
        Ok(r) => r,
        // Client connected and went away without a request: nothing to
        // answer, nobody to answer it to.
        Err(HttpError::Closed) => return,
        Err(e @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
            asap_obs::counter_inc("serve.bad_requests");
            let _ = write_json(
                stream,
                400,
                &[],
                &render_error("bad_request", "http", &e.to_string()),
            );
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/run") => handle_run(shared, stream, &req.body),
        ("GET", "/healthz") => {
            let _ = write_json(stream, 200, &[], &healthz_body(shared));
        }
        ("GET", "/metrics") => {
            let body = asap_obs::render_metrics(&asap_obs::metrics_snapshot());
            let _ = write_response(stream, 200, &[], "text/plain; charset=utf-8", &body);
        }
        ("POST", "/control/shutdown") => {
            shared.draining.store(true, Ordering::Release);
            let _ = write_json(
                stream,
                200,
                &[],
                &render_error("draining", "control", "drain started"),
            );
        }
        ("POST", "/debug/panic") if shared.cfg.enable_fault_endpoints => {
            panic!("injected panic via /debug/panic");
        }
        ("POST" | "GET", _) => {
            let _ = write_json(
                stream,
                404,
                &[],
                &render_error("not_found", "http", &format!("no route {}", req.path)),
            );
        }
        _ => {
            let _ = write_json(
                stream,
                405,
                &[],
                &render_error("method_not_allowed", "http", &req.method),
            );
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    let mut w = ObjWriter::new();
    w.str(
        "status",
        if shared.draining.load(Ordering::Acquire) {
            "draining"
        } else {
            "ok"
        },
    )
    .usize("queue_depth", shared.queue.len())
    .u64("in_flight", shared.in_flight.load(Ordering::Relaxed))
    .u64("served", shared.served.load(Ordering::Relaxed))
    .u64("rejected", shared.rejected.load(Ordering::Relaxed))
    .usize("workers", shared.cfg.workers);
    w.finish()
}

fn handle_run(shared: &Shared, stream: &mut TcpStream, body: &[u8]) {
    let run = match parse_run_request(body, &shared.catalog, shared.cfg.default_deadline_ms) {
        Ok(r) => r,
        Err(e) => {
            asap_obs::counter_inc("serve.bad_requests");
            let _ = write_json(
                stream,
                400,
                &[],
                &render_error("bad_request", e.kind(), &e.to_string()),
            );
            return;
        }
    };
    let cancel = CancelToken::new();
    let reaper_id = shared.reaper.register(&cancel, stream);
    let result = shared
        .flights
        .compile(run.kernel, &run.sparse, &run.strategy)
        .and_then(|(ck, cache_hit, compile_ns)| {
            asap_core::execute_request(
                &ck,
                run.kernel,
                &run.sparse,
                run.engine,
                &run.budget(&cancel),
                cache_hit,
                compile_ns,
            )
        });
    if let Some(id) = reaper_id {
        shared.reaper.unregister(id);
    }
    match result {
        Ok(outcome) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.served");
            asap_obs::histogram_record("serve.exec_ns", outcome.exec_ns);
            let _ = write_json(stream, 200, &[], &render_outcome(&run, &outcome));
        }
        // A tripped budget is governed termination, not failure: the
        // deadline (or the client disconnecting, via the cancel token)
        // stopped the run. 504 mirrors a gateway timeout.
        Err(e) if e.kind() == "budget" => {
            asap_obs::counter_inc("serve.deadline_exceeded");
            let _ = write_json(
                stream,
                504,
                &[],
                &render_error("deadline_exceeded", e.kind(), &e.to_string()),
            );
        }
        // Anything else the pipeline rejects (bad spec, binding) is a
        // property of the request.
        Err(e) => {
            asap_obs::counter_inc("serve.bad_requests");
            let _ = write_json(
                stream,
                400,
                &[],
                &render_error("bad_request", e.kind(), &e.to_string()),
            );
        }
    }
}
