//! Server lifecycle: the accept loop, the supervised worker pool, the
//! disconnect reaper, and graceful drain-then-stop shutdown.
//!
//! Thread structure (all plain `std::thread`, joined on shutdown):
//!
//! - **accept** — non-blocking `TcpListener` polled at ~1ms. Raw
//!   connections either enter the scheduler's bounded connection FIFO
//!   or are answered 429 + `Retry-After` immediately. When draining
//!   starts, the loop closes the scheduler and exits —
//!   already-admitted work still gets served.
//! - **workers** (N) — drain the [`TenantScheduler`]: connections
//!   first (parse HTTP, classify by `X-Asap-Tenant`, run the admission
//!   ladder, submit the job), then jobs, interleaved across tenants by
//!   weighted deficit round-robin. Each request runs under
//!   `catch_unwind`: a panic becomes a 500 for that one client and a
//!   `serve.panics` tick, never a dead worker.
//! - **supervisor** — polls worker handles for death. `catch_unwind`
//!   covers request handlers, but a worker thread can still die (a
//!   panic outside the guard, an unwind-through-FFI abort path, the
//!   test-only `/debug/kill_worker`); crash-only design says the
//!   answer is restart, not hope. Each death is journaled (panic
//!   digest + fingerprint of the last request the worker read) and the
//!   worker is respawned under consecutive-crash backoff, so a
//!   crash-looping input cannot turn the pool into a fork bomb.
//! - **reaper** — polls in-flight clients with a non-blocking peek;
//!   a closed socket fires the request's [`CancelToken`], so an
//!   abandoned SpMM stops burning CPU at the budget's next poll slot
//!   instead of running to completion.
//!
//! The admission ladder for `POST /v1/run`, in order (each step is a
//! typed rejection that never reaches a later step):
//!
//! 1. tenant resolution — bad names 400, registry full 429;
//! 2. per-tenant token bucket — empty 429 + computed `Retry-After`;
//! 3. brownout — under queue pressure, first refuse inline-`.mtx`
//!    uploads (level 1), then shed lowest-weight tenants (level 2);
//! 4. parse + matrix residency — store admission failures are typed
//!    413/429 on the tenant's own account;
//! 5. lane submit — a full tenant lane is that tenant's 429; the
//!    global job cap is everyone's.
//!
//! Queued jobs whose deadline expires before a worker picks them up are
//! shed as 504 (`kind: "shed"`) without executing anything.
//!
//! Shutdown (`POST /control/shutdown` or [`Server::join`]) is
//! drain-then-stop: stop admitting, serve everything queued, join every
//! thread. No request that got a 2xx admission is dropped.

use crate::batcher::SingleFlight;
use crate::http::{drain_request, read_request_with_timeout, write_response, HttpRequest};
use crate::matrix::MatrixCatalog;
use crate::queue::{PushError, SubmitError, TenantScheduler, Work};
use crate::request::{parse_run_request, render_error, render_outcome, RequestCtx, RunRequest};
use crate::store::MatrixStore;
use crate::tenant::{TenantError, TenantQuotas, TenantRegistry, TenantState};
use asap_core::fingerprint64;
use asap_ir::CancelToken;
use asap_matrices::SizeClass;
use asap_obs::{flush_stage_metrics, FlightRecorder, ObjWriter, Stage, TraceCtx, TraceId};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Accept-loop poll interval while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Reaper poll interval for in-flight client sockets.
const REAPER_POLL: Duration = Duration::from_millis(10);

/// Supervisor poll interval for worker-thread death.
const SUPERVISOR_POLL: Duration = Duration::from_millis(20);

/// Two crashes closer together than this count as consecutive.
const CRASH_COALESCE_MS: u64 = 5_000;

/// Restart backoff: `BASE << (consecutive-1)`, capped. A worker that
/// dies once is back in 50ms; a crash loop converges to one restart
/// every two seconds instead of a respawn storm.
const BACKOFF_BASE_MS: u64 = 50;
const BACKOFF_CAP_MS: u64 = 2_000;

#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bound on accepted-but-not-yet-parsed connections; beyond it,
    /// clients get an immediate 429.
    pub queue_bound: usize,
    /// Size class for named collection matrices.
    pub size: SizeClass,
    /// Deadline applied when a request does not set `deadline_ms`
    /// (0 = none).
    pub default_deadline_ms: u64,
    /// Cap on request body bytes (inline MatrixMarket can be big).
    pub max_body_bytes: usize,
    /// Test-only: sleep this long at the start of each job execution,
    /// simulating a slow worker so overload tests are deterministic.
    pub worker_delay_ms: u64,
    /// Test-only: expose `POST /debug/panic` (per-request isolation)
    /// and `POST /debug/kill_worker` (whole-thread death, exercising
    /// the supervisor restart path) end to end.
    pub enable_fault_endpoints: bool,
    /// Append one JSON line per crash (worker death or caught request
    /// panic) to this file. `None` keeps the journal counters only.
    pub crash_journal: Option<PathBuf>,
    /// Per-read socket timeout while parsing a request, in milliseconds
    /// (the whole request is bounded by twice this). The 10 s default
    /// suits trusted clients; chaos/soak runs set a few hundred ms so a
    /// lying `Content-Length` cannot pin a worker for long.
    pub io_timeout_ms: u64,
    /// Resident matrix store byte ceiling (0 disables residency and
    /// every request re-parses/re-generates its matrix).
    pub store_bytes: u64,
    /// Per-tenant resident-byte quota in the store (0 = unlimited).
    pub tenant_store_bytes: u64,
    /// Per-tenant sustained requests/second (token bucket; 0 = off).
    pub tenant_rps: f64,
    /// Token-bucket burst headroom above the sustained rate.
    pub tenant_burst: f64,
    /// Bound on one tenant's queued (parsed, unexecuted) jobs.
    pub tenant_queue_bound: usize,
    /// Global bound on queued jobs across all tenants; also the
    /// brownout ladder's pressure scale (level 1 at ≥ 1/2, level 2 at
    /// ≥ 3/4 of this).
    pub job_bound: usize,
    /// Per-request execution byte budget (0 = unlimited).
    pub exec_bytes: u64,
    /// DRR weights per tenant name; unlisted tenants weigh 1.
    pub tenant_weights: Vec<(String, u32)>,
    /// Hard cap on distinct tenants the registry will mint.
    pub max_tenants: usize,
    /// Request-scoped telemetry: trace ids on every response, per-stage
    /// histograms, the flight recorder. Off = the A/B baseline where
    /// every trace call is one branch on a dormant context.
    pub telemetry: bool,
    /// Latency objective for the per-tenant SLO over/under counters
    /// (`/v1/run` wall time, milliseconds).
    pub slo_ms: u64,
    /// Flight-recorder ring capacity per worker (plus one accept ring).
    pub flight_ring: usize,
    /// Bound on retained anomalous request records.
    pub flight_retain: usize,
    /// Append one JSON line per completed request to this file. Heavy;
    /// the telemetry overhead gate runs with this off.
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_bound: 64,
            size: SizeClass::Tiny,
            default_deadline_ms: 10_000,
            max_body_bytes: 4 * 1024 * 1024,
            worker_delay_ms: 0,
            enable_fault_endpoints: false,
            crash_journal: None,
            io_timeout_ms: 10_000,
            store_bytes: 64 * 1024 * 1024,
            tenant_store_bytes: 16 * 1024 * 1024,
            tenant_rps: 0.0,
            tenant_burst: 16.0,
            tenant_queue_bound: 64,
            job_bound: 256,
            exec_bytes: 0,
            tenant_weights: Vec::new(),
            max_tenants: 64,
            telemetry: true,
            slo_ms: 250,
            flight_ring: 64,
            flight_retain: 256,
            access_log: None,
        }
    }
}

/// JSONL crash journal: what died, why (digest + message), and what it
/// was chewing on (request fingerprint). Counting always works; the
/// file sink is optional.
struct CrashJournal {
    file: Mutex<Option<std::fs::File>>,
    entries: AtomicU64,
}

impl CrashJournal {
    fn open(path: Option<&PathBuf>) -> CrashJournal {
        let file = path.and_then(|p| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .ok()
        });
        CrashJournal {
            file: Mutex::new(file),
            entries: AtomicU64::new(0),
        }
    }

    fn record(&self, worker: usize, kind: &str, message: &str, fingerprint: u64) {
        self.entries.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc("serve.crashes_journaled");
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut w = ObjWriter::new();
        w.u64("ts_ms", ts_ms)
            .usize("worker", worker)
            .str("kind", kind)
            .str(
                "digest",
                &format!("{:016x}", fingerprint64(message.as_bytes())),
            )
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .str("message", message);
        let line = w.finish();
        if let Some(f) = self.file.lock().unwrap_or_else(|p| p.into_inner()).as_mut() {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

/// One supervised worker: its thread handle plus the fingerprint of the
/// last request it read (published by `handle_connection`, read by the
/// supervisor when the thread dies).
struct WorkerSlot {
    id: usize,
    fingerprint: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

struct Supervisor {
    slots: Mutex<Vec<WorkerSlot>>,
    restarts: AtomicU64,
    consecutive_crashes: AtomicU64,
    backoff_ms: AtomicU64,
    /// Milliseconds since server start of the previous crash;
    /// `u64::MAX` = never.
    last_crash_ms: AtomicU64,
    journal: CrashJournal,
}

/// In-flight socket registry the reaper sweeps.
#[derive(Default)]
struct Reaper {
    inflight: Mutex<HashMap<u64, (CancelToken, TcpStream)>>,
    next_id: AtomicU64,
}

impl Reaper {
    /// Register an executing request; the stream clone is switched to
    /// non-blocking so the sweep's peek never stalls.
    fn register(&self, token: &CancelToken, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        clone.set_nonblocking(true).ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, (token.clone(), clone));
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }

    /// One sweep: cancel every request whose client hung up.
    fn sweep(&self) {
        let g = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        let mut buf = [0u8; 1];
        for (token, stream) in g.values() {
            match stream.peek(&mut buf) {
                // EOF: the client closed its end.
                Ok(0) => {
                    if !token.is_cancelled() {
                        asap_obs::counter_inc("serve.client_disconnects");
                        token.cancel();
                    }
                }
                // Bytes pending or nothing yet: still connected.
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                // Reset / broken pipe: gone.
                Err(_) => {
                    if !token.is_cancelled() {
                        asap_obs::counter_inc("serve.client_disconnects");
                        token.cancel();
                    }
                }
            }
        }
    }
}

/// An accepted connection waiting in the conn FIFO, carrying the trace
/// context minted at accept time (queue wait starts ticking here).
struct Accepted {
    stream: TcpStream,
    trace: Arc<TraceCtx>,
}

/// A parsed `/v1/run` waiting in its tenant's lane. Holding the
/// [`RunRequest`] holds the store pin: a queued job's matrix cannot be
/// evicted out from under it.
struct Job {
    stream: TcpStream,
    run: RunRequest,
    tenant: Arc<TenantState>,
    /// Wall-clock instant the client's deadline lands (None = no
    /// deadline). Queue time counts: jobs past this are shed unrun.
    deadline_at: Option<Instant>,
    /// The request's trace context, following it across threads.
    trace: Arc<TraceCtx>,
}

struct Shared {
    cfg: ServeConfig,
    sched: TenantScheduler<Accepted, Job>,
    tenants: TenantRegistry,
    store: Arc<MatrixStore>,
    draining: AtomicBool,
    reaper_stop: AtomicBool,
    supervisor_stop: AtomicBool,
    flights: SingleFlight,
    catalog: MatrixCatalog,
    reaper: Reaper,
    supervisor: Supervisor,
    flight: FlightRecorder,
    /// Access-log sink (append mode), `None` when `--access-log` is off.
    access: Mutex<Option<std::fs::File>>,
    started: Instant,
    // Per-server health counters ( /metrics shows the process-global
    // registry; /healthz must describe *this* server instance).
    served: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    shed_expired: AtomicU64,
}

/// What a handled connection asks of its worker afterwards.
enum ConnOutcome {
    Done,
    /// Test-only: die for real (outside `catch_unwind`), exercising the
    /// supervisor's detect-journal-restart path end to end.
    KillWorker,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`Server::join`] (or send `POST /control/shutdown` and then `join`).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start the accept loop, workers, supervisor, and reaper.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let journal = CrashJournal::open(cfg.crash_journal.as_ref());
        let tenants = TenantRegistry::new(TenantQuotas {
            rps: cfg.tenant_rps,
            burst: cfg.tenant_burst,
            store_bytes: cfg.tenant_store_bytes,
            max_tenants: cfg.max_tenants,
            weights: cfg.tenant_weights.clone(),
        });
        let shared = Arc::new(Shared {
            sched: TenantScheduler::new(cfg.queue_bound, cfg.tenant_queue_bound, cfg.job_bound),
            tenants,
            store: Arc::new(MatrixStore::new(cfg.store_bytes)),
            draining: AtomicBool::new(false),
            reaper_stop: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            flights: SingleFlight::new(),
            catalog: MatrixCatalog::new(cfg.size),
            reaper: Reaper::default(),
            flight: FlightRecorder::new(cfg.workers.max(1) + 1, cfg.flight_ring, cfg.flight_retain),
            access: Mutex::new(cfg.access_log.as_ref().and_then(|p| {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .ok()
            })),
            supervisor: Supervisor {
                slots: Mutex::new(Vec::new()),
                restarts: AtomicU64::new(0),
                consecutive_crashes: AtomicU64::new(0),
                backoff_ms: AtomicU64::new(0),
                last_crash_ms: AtomicU64::new(u64::MAX),
                journal,
            },
            started: Instant::now(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            cfg,
        });

        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        {
            let mut slots = lock_slots(&shared.supervisor);
            for id in 0..shared.cfg.workers.max(1) {
                let fingerprint = Arc::new(AtomicU64::new(0));
                let handle = spawn_worker(shared.clone(), id, fingerprint.clone())?;
                slots.push(WorkerSlot {
                    id,
                    fingerprint,
                    handle: Some(handle),
                });
            }
        }
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))?
        };
        let reaper = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-reaper".into())
                .spawn(move || {
                    while !shared.reaper_stop.load(Ordering::Acquire) {
                        shared.reaper.sweep();
                        std::thread::sleep(REAPER_POLL);
                    }
                })?
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            supervisor: Some(supervisor),
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start draining: stop admitting, let queued and in-flight work
    /// finish. Idempotent; returns immediately.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Daemon mode: block until a drain is requested (via
    /// `POST /control/shutdown` or another handle's [`Server::begin_drain`]),
    /// then finish the drain and join every thread.
    pub fn run_until_drained(self) {
        while !self.shared.draining.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Drain and block until every thread has exited. Queued
    /// connections are served before workers stop.
    pub fn join(mut self) {
        self.begin_drain();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        // Stop the supervisor before joining workers so it cannot race
        // a respawn against our handle collection below.
        self.shared.supervisor_stop.store(true, Ordering::Release);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = lock_slots(&self.shared.supervisor);
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.shared.reaper_stop.store(true, Ordering::Release);
        if let Some(r) = self.reaper.take() {
            let _ = r.join();
        }
    }
}

fn lock_slots(sup: &Supervisor) -> std::sync::MutexGuard<'_, Vec<WorkerSlot>> {
    sup.slots.lock().unwrap_or_else(|p| p.into_inner())
}

impl Shared {
    /// Flight-recorder ring index for the accept thread (workers own
    /// rings `0..workers`; the accept loop gets the extra last ring).
    fn accept_ring(&self) -> usize {
        self.cfg.workers.max(1)
    }

    /// Mint a request trace context (dormant when telemetry is off).
    /// Shared via `Arc` so the context can move with the job while the
    /// conn path keeps a handle for its panic-500 response.
    fn new_trace(&self) -> Arc<TraceCtx> {
        Arc::new(if self.cfg.telemetry {
            TraceCtx::start()
        } else {
            TraceCtx::disabled()
        })
    }
}

/// Complete a request's telemetry: collapse the context into a
/// [`asap_obs::RequestRecord`], flush the per-stage histograms (with
/// the trace id as exemplar) and SLO counters, file the record in the
/// flight recorder's ring for `ring`, and append the access-log line.
fn complete(shared: &Shared, ring: usize, trace: &TraceCtx, status: u16) {
    if !trace.enabled() {
        return;
    }
    let rec = trace.finish(status);
    flush_stage_metrics(&rec, shared.cfg.slo_ms);
    let rec = shared.flight.record(ring, rec);
    let mut g = shared.access.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(f) = g.as_mut() {
        let _ = writeln!(f, "{}", rec.to_jsonl());
    }
}

/// Write a response stamped with `X-Asap-Trace`, attribute the write to
/// [`Stage::Write`], and complete the request's telemetry. Every
/// response the server emits — 2xx, 4xx, 5xx, any route — funnels
/// through here (or [`respond_json`]), which is what makes the trace
/// header universal.
#[allow(clippy::too_many_arguments)]
fn respond(
    shared: &Shared,
    ring: usize,
    stream: &mut TcpStream,
    trace: &TraceCtx,
    status: u16,
    extra: &[(&str, String)],
    content_type: &str,
    body: &str,
) {
    if !trace.enabled() {
        let _ = write_response(stream, status, extra, content_type, body);
        return;
    }
    let mut headers: Vec<(&str, String)> = extra.to_vec();
    headers.push(("X-Asap-Trace", trace.id().hex()));
    let t0 = Instant::now();
    let _ = write_response(stream, status, &headers, content_type, body);
    trace.add(Stage::Write, t0.elapsed().as_nanos() as u64);
    complete(shared, ring, trace, status);
}

/// [`respond`] with the JSON content type.
fn respond_json(
    shared: &Shared,
    ring: usize,
    stream: &mut TcpStream,
    trace: &TraceCtx,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
) {
    respond(
        shared,
        ring,
        stream,
        trace,
        status,
        extra,
        "application/json",
        body,
    );
}

fn spawn_worker(
    shared: Arc<Shared>,
    id: usize,
    fingerprint: Arc<AtomicU64>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn(move || worker_loop(&shared, id, &fingerprint))
}

/// Detect dead workers, journal the crash, and respawn under backoff.
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        if shared.supervisor_stop.load(Ordering::Acquire) {
            return;
        }
        // Claim at most one finished handle per pass (the lock is
        // released before the potentially-slow join + backoff).
        let dead = {
            let mut slots = lock_slots(&shared.supervisor);
            slots.iter_mut().find_map(|s| {
                s.handle
                    .as_ref()
                    .is_some_and(JoinHandle::is_finished)
                    .then(|| (s.id, s.handle.take().unwrap(), s.fingerprint.clone()))
            })
        };
        let Some((id, handle, fingerprint)) = dead else {
            std::thread::sleep(SUPERVISOR_POLL);
            continue;
        };
        let result = handle.join();
        if shared.draining.load(Ordering::Acquire) {
            // Normal drain exit (or a crash racing the drain — either
            // way nobody needs this worker back).
            continue;
        }
        let message = match &result {
            Ok(()) => "worker exited unexpectedly".to_string(),
            Err(payload) => panic_message(payload.as_ref()),
        };
        shared.supervisor.journal.record(
            id,
            "worker_crash",
            &message,
            fingerprint.load(Ordering::Relaxed),
        );
        // Dump the flight recorder alongside the crash journal: the
        // retained anomalies plus recent rings are exactly the context
        // a post-mortem needs next to the panic digest.
        if let Some(journal_path) = shared.cfg.crash_journal.as_ref() {
            let sidecar = format!("{}.flight.jsonl", journal_path.display());
            let _ = std::fs::write(sidecar, shared.flight.dump_jsonl());
        }

        // Consecutive-crash backoff: crashes spaced under the coalesce
        // window escalate the delay geometrically up to the cap.
        let now_ms = shared.started.elapsed().as_millis() as u64;
        let last = shared
            .supervisor
            .last_crash_ms
            .swap(now_ms, Ordering::Relaxed);
        let consecutive = if last != u64::MAX && now_ms.saturating_sub(last) < CRASH_COALESCE_MS {
            shared
                .supervisor
                .consecutive_crashes
                .fetch_add(1, Ordering::Relaxed)
                + 1
        } else {
            shared
                .supervisor
                .consecutive_crashes
                .store(1, Ordering::Relaxed);
            1
        };
        let backoff = (BACKOFF_BASE_MS << (consecutive - 1).min(8)).min(BACKOFF_CAP_MS);
        shared
            .supervisor
            .backoff_ms
            .store(backoff, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(backoff));
        if shared.draining.load(Ordering::Acquire) || shared.supervisor_stop.load(Ordering::Acquire)
        {
            continue;
        }

        fingerprint.store(0, Ordering::Relaxed);
        if let Ok(h) = spawn_worker(shared.clone(), id, fingerprint) {
            let mut slots = lock_slots(&shared.supervisor);
            if let Some(slot) = slots.iter_mut().find(|s| s.id == id) {
                slot.handle = Some(h);
                shared.supervisor.restarts.fetch_add(1, Ordering::Relaxed);
                asap_obs::counter_inc("serve.worker_restarts");
            }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            // Stop admitting; wake workers to drain what's queued.
            shared.sched.close();
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                asap_obs::counter_inc("serve.accepted");
                // The accepted socket must block normally for the
                // worker's reads regardless of listener flags.
                let _ = stream.set_nonblocking(false);
                admit(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept failure (EMFILE, aborted handshake):
            // back off and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn admit(stream: TcpStream, shared: &Shared) {
    let trace = shared.new_trace();
    trace.mark_queued();
    match shared.sched.try_push_conn(Accepted { stream, trace }) {
        Ok(depth) => {
            asap_obs::gauge_set("serve.queue_depth", depth as i64);
            asap_obs::counter_set_max("serve.queue_depth_peak", depth as u64);
        }
        Err(PushError::Full(mut acc)) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            drain_request(&mut acc.stream, shared.cfg.max_body_bytes);
            respond_json(
                shared,
                shared.accept_ring(),
                &mut acc.stream,
                &acc.trace,
                429,
                &[("Retry-After", "1".to_string())],
                &render_error("overloaded", "admission", "queue full; retry after 1s"),
            );
        }
        Err(PushError::Closed(mut acc)) => {
            drain_request(&mut acc.stream, shared.cfg.max_body_bytes);
            respond_json(
                shared,
                shared.accept_ring(),
                &mut acc.stream,
                &acc.trace,
                503,
                &[],
                &render_error("draining", "admission", "server is shutting down"),
            );
        }
    }
}

fn worker_loop(shared: &Shared, id: usize, fingerprint: &AtomicU64) {
    while let Some(work) = shared.sched.next_work() {
        match work {
            Work::Conn(acc) => {
                asap_obs::gauge_set("serve.queue_depth", shared.sched.conn_depth() as i64);
                let Accepted { stream, trace } = acc;
                trace.end_queued();
                // The slot keeps the stream reachable across a panic in
                // the handler, so the client still gets its 500; the
                // /v1/run path takes it out to move it into a job.
                let mut slot = Some(stream);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(shared, &mut slot, &trace, fingerprint, id)
                }));
                shared.sched.done_conn();
                match outcome {
                    Ok(ConnOutcome::Done) => {}
                    // Deliberate thread death, *outside* catch_unwind:
                    // the supervisor must notice, journal, and respawn.
                    Ok(ConnOutcome::KillWorker) => {
                        panic!("worker {id} killed via /debug/kill_worker");
                    }
                    Err(payload) => {
                        asap_obs::counter_inc("serve.panics");
                        let msg = panic_message(payload.as_ref());
                        shared.supervisor.journal.record(
                            id,
                            "request_panic",
                            &msg,
                            fingerprint.load(Ordering::Relaxed),
                        );
                        if let Some(mut stream) = slot.take() {
                            trace.note_anomaly("panic");
                            respond_json(
                                shared,
                                id,
                                &mut stream,
                                &trace,
                                500,
                                &[],
                                &render_error("panic", "panic", &msg),
                            );
                        }
                    }
                }
            }
            Work::Job(job) => {
                asap_obs::gauge_set("serve.jobs_depth", shared.sched.job_depth() as i64);
                shared.in_flight.fetch_add(1, Ordering::Relaxed);
                asap_obs::gauge_add("serve.in_flight", 1);
                let Job {
                    mut stream,
                    run,
                    tenant,
                    deadline_at,
                    trace,
                } = job;
                trace.end_queued();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute_run(shared, &mut stream, &run, &tenant, deadline_at, &trace, id)
                }));
                asap_obs::gauge_sub("serve.in_flight", 1);
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                if let Err(payload) = outcome {
                    asap_obs::counter_inc("serve.panics");
                    let msg = panic_message(payload.as_ref());
                    shared.supervisor.journal.record(
                        id,
                        "request_panic",
                        &msg,
                        fingerprint.load(Ordering::Relaxed),
                    );
                    trace.note_anomaly("panic");
                    respond_json(
                        shared,
                        id,
                        &mut stream,
                        &trace,
                        500,
                        &[],
                        &render_error("panic", "panic", &msg),
                    );
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request handler panicked".to_string()
    }
}

fn handle_connection(
    shared: &Shared,
    slot: &mut Option<TcpStream>,
    trace: &Arc<TraceCtx>,
    fingerprint: &AtomicU64,
    ring: usize,
) -> ConnOutcome {
    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    let req = {
        let stream = slot.as_mut().expect("worker slot holds the connection");
        // Reading + parsing HTTP (including waiting out a slow client)
        // is the request's parse stage.
        let parsed = trace.time(Stage::Parse, || {
            read_request_with_timeout(stream, shared.cfg.max_body_bytes, io_timeout)
        });
        match parsed {
            Ok(r) => r,
            Err(e) => {
                // Closed / transport errors have nobody to answer;
                // protocol violations get their typed status
                // (400/408/413/414/431).
                if let Some(status) = e.status() {
                    asap_obs::counter_inc("serve.bad_requests");
                    asap_obs::counter_inc(match status {
                        408 => "serve.http.timeout",
                        413 => "serve.http.body_too_large",
                        414 => "serve.http.line_too_long",
                        431 => "serve.http.header_limit",
                        _ => "serve.http.malformed",
                    });
                    let label = match status {
                        408 => "timeout",
                        413 => "payload_too_large",
                        414 => "uri_too_long",
                        431 => "header_fields_too_large",
                        _ => "bad_request",
                    };
                    respond_json(
                        shared,
                        ring,
                        stream,
                        trace,
                        status,
                        &[],
                        &render_error(label, "http", &e.to_string()),
                    );
                } else {
                    // Nobody to answer; still file the flight record.
                    complete(shared, ring, trace, 0);
                }
                return ConnOutcome::Done;
            }
        }
    };
    // Publish what this worker is chewing on; if the thread dies, the
    // supervisor journals this fingerprint next to the panic digest.
    let mut fp_bytes = Vec::with_capacity(req.method.len() + req.path.len() + req.body.len() + 2);
    fp_bytes.extend_from_slice(req.method.as_bytes());
    fp_bytes.push(b' ');
    fp_bytes.extend_from_slice(req.path.as_bytes());
    fp_bytes.push(b' ');
    fp_bytes.extend_from_slice(&req.body);
    fingerprint.store(fingerprint64(&fp_bytes), Ordering::Relaxed);

    if req.method == "POST" && req.path == "/v1/run" {
        admit_run(shared, slot, trace, &req, ring);
        return ConnOutcome::Done;
    }
    let stream = slot.as_mut().expect("worker slot holds the connection");
    if req.method == "GET" {
        if let Some(hex) = req.path.strip_prefix("/debug/trace/") {
            // Stage breakdown for a retained (anomalous) request.
            match TraceId::parse(hex).and_then(|id| shared.flight.lookup(id)) {
                Some(rec) => {
                    respond_json(shared, ring, stream, trace, 200, &[], &rec.to_jsonl());
                }
                None => {
                    respond_json(
                        shared,
                        ring,
                        stream,
                        trace,
                        404,
                        &[],
                        &render_error(
                            "not_found",
                            "trace",
                            "trace id not retained (only anomalous requests are)",
                        ),
                    );
                }
            }
            return ConnOutcome::Done;
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            respond_json(shared, ring, stream, trace, 200, &[], &healthz_body(shared));
        }
        ("GET", "/metrics") => {
            // Refresh the occupancy gauges from the authoritative
            // per-shard counters at scrape time, so a scrape always sees
            // the live totals even if no traffic updated the gauges
            // recently.
            let cache = asap_core::cache_stats_full();
            asap_obs::gauge_set("cache.bytes", cache.bytes as i64);
            asap_obs::gauge_set("serve.store.bytes", shared.store.bytes() as i64);
            asap_obs::gauge_set("serve.store.entries", shared.store.entries() as i64);
            let body = asap_obs::render_metrics_all();
            respond(
                shared,
                ring,
                stream,
                trace,
                200,
                &[],
                "text/plain; charset=utf-8",
                &body,
            );
        }
        ("GET", "/debug/requests") => {
            // Flight-recorder dump: retained anomalies + ring contents.
            let body = shared.flight.dump_jsonl();
            respond(
                shared,
                ring,
                stream,
                trace,
                200,
                &[],
                "application/jsonl",
                &body,
            );
        }
        ("POST", "/control/shutdown") => {
            shared.draining.store(true, Ordering::Release);
            respond_json(
                shared,
                ring,
                stream,
                trace,
                200,
                &[],
                &render_error("draining", "control", "drain started"),
            );
        }
        ("POST", "/debug/panic") if shared.cfg.enable_fault_endpoints => {
            panic!("injected panic via /debug/panic");
        }
        ("POST", "/debug/kill_worker") if shared.cfg.enable_fault_endpoints => {
            // Answer first — the death is the worker's, not the client's.
            respond_json(
                shared,
                ring,
                stream,
                trace,
                200,
                &[],
                &render_error("ok", "control", "worker death scheduled"),
            );
            return ConnOutcome::KillWorker;
        }
        ("POST" | "GET", _) => {
            respond_json(
                shared,
                ring,
                stream,
                trace,
                404,
                &[],
                &render_error("not_found", "http", &format!("no route {}", req.path)),
            );
        }
        _ => {
            respond_json(
                shared,
                ring,
                stream,
                trace,
                405,
                &[],
                &render_error("method_not_allowed", "http", &req.method),
            );
        }
    }
    ConnOutcome::Done
}

/// Write a rejection with an optional `Retry-After` and account it.
#[allow(clippy::too_many_arguments)]
fn bounce(
    shared: &Shared,
    ring: usize,
    stream: &mut TcpStream,
    trace: &TraceCtx,
    status: u16,
    retry_after_secs: Option<u64>,
    status_label: &str,
    kind: &str,
    message: &str,
) {
    let extra: Vec<(&str, String)> = match retry_after_secs {
        Some(s) => vec![("Retry-After", s.to_string())],
        None => Vec::new(),
    };
    respond_json(
        shared,
        ring,
        stream,
        trace,
        status,
        &extra,
        &render_error(status_label, kind, message),
    );
}

/// The brownout ladder's current level from global job-queue pressure:
/// 0 below half the job bound, 1 (shed inline uploads) at ≥ 1/2,
/// 2 (also shed lowest-weight tenants) at ≥ 3/4.
fn brownout_level(shared: &Shared) -> u8 {
    let depth = shared.sched.job_depth();
    let bound = shared.sched.job_bound();
    let level = if depth * 4 >= bound * 3 {
        2
    } else if depth * 2 >= bound {
        1
    } else {
        0
    };
    asap_obs::gauge_set("serve.brownout.level", i64::from(level));
    level
}

/// The admission ladder for one `POST /v1/run` (see module docs):
/// tenant → token bucket → brownout → parse/residency → lane submit.
/// Success moves the stream into a queued [`Job`]; every failure writes
/// its typed rejection here and now.
fn admit_run(
    shared: &Shared,
    slot: &mut Option<TcpStream>,
    trace: &Arc<TraceCtx>,
    req: &HttpRequest,
    ring: usize,
) {
    let stream = slot.as_mut().expect("worker slot holds the connection");
    // Quota stage: tenant resolution, token bucket, brownout. Ends when
    // the ladder reaches parsing (or bounces).
    let quota_start = Instant::now();
    let quota_ns = |t0: Instant| t0.elapsed().as_nanos() as u64;
    let tenant = match shared.tenants.resolve(req.header("x-asap-tenant")) {
        Ok(t) => t,
        Err(e @ TenantError::BadName(_)) => {
            asap_obs::counter_inc("serve.bad_requests");
            trace.add(Stage::Quota, quota_ns(quota_start));
            bounce(
                shared,
                ring,
                stream,
                trace,
                400,
                None,
                "bad_request",
                "tenant",
                &e.to_string(),
            );
            return;
        }
        Err(e @ TenantError::TooMany(_)) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            asap_obs::counter_inc("serve.tenant_rejected");
            trace.add(Stage::Quota, quota_ns(quota_start));
            bounce(
                shared,
                ring,
                stream,
                trace,
                429,
                Some(5),
                "overloaded",
                "tenant",
                &e.to_string(),
            );
            return;
        }
    };
    trace.set_tenant(&tenant.name);
    if let Err(retry_after) = tenant.try_admit() {
        tenant.count_rejected();
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc("serve.rejected");
        asap_obs::counter_inc("serve.quota_rejected");
        trace.add(Stage::Quota, quota_ns(quota_start));
        bounce(
            shared,
            ring,
            stream,
            trace,
            429,
            Some(retry_after),
            "overloaded",
            "quota",
            &format!(
                "tenant {:?} is over its request rate; retry after {retry_after}s",
                tenant.name
            ),
        );
        return;
    }
    let level = brownout_level(shared);
    if level >= 2 {
        // Shed lowest-weight tenants — but only when weights actually
        // differ; with one weight class there is nobody "lowest".
        let (min_w, max_w) = shared.tenants.weight_band();
        if min_w < max_w && tenant.weight == min_w {
            tenant.count_shed();
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            asap_obs::counter_inc("serve.brownout.shed");
            trace.add(Stage::Quota, quota_ns(quota_start));
            trace.note_anomaly("shed");
            bounce(
                shared,
                ring,
                stream,
                trace,
                429,
                Some(1),
                "overloaded",
                "brownout",
                "server is under sustained pressure and shedding low-weight tenants; retry later",
            );
            return;
        }
    }
    trace.add(Stage::Quota, quota_ns(quota_start));
    let ctx = RequestCtx {
        catalog: &shared.catalog,
        store: &shared.store,
        tenant: &tenant,
        default_deadline_ms: shared.cfg.default_deadline_ms,
        exec_bytes: shared.cfg.exec_bytes,
        allow_inline: level == 0,
        trace: Some(trace.as_ref()),
    };
    // Body parsing and matrix residency interleave inside
    // `parse_run_request` (the store work is timed by the ctx's trace
    // ref); the remainder of the call is the parse stage proper.
    let store_before = trace.stage_ns(Stage::Store);
    let parse_start = Instant::now();
    let parsed = parse_run_request(&req.body, &ctx);
    let parse_total = parse_start.elapsed().as_nanos() as u64;
    let store_delta = trace.stage_ns(Stage::Store).saturating_sub(store_before);
    trace.add(Stage::Parse, parse_total.saturating_sub(store_delta));
    let run = match parsed {
        Ok(r) => r,
        Err(rej) => {
            let status = rej.status();
            if status == 400 {
                asap_obs::counter_inc("serve.bad_requests");
            } else {
                tenant.count_rejected();
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                asap_obs::counter_inc("serve.rejected");
                if rej.kind() == "brownout" {
                    asap_obs::counter_inc("serve.brownout.inline_rejected");
                }
            }
            let label = match status {
                400 => "bad_request",
                413 => "payload_too_large",
                _ => "overloaded",
            };
            let retry = (status == 429).then_some(1);
            bounce(
                shared,
                ring,
                stream,
                trace,
                status,
                retry,
                label,
                rej.kind(),
                &rej.message(),
            );
            return;
        }
    };
    trace.set_request(
        run.kernel.label(),
        fingerprint64(run.matrix_label.as_bytes()),
    );
    let deadline_at =
        (run.deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(run.deadline_ms));
    let stream = slot.take().expect("worker slot holds the connection");
    let weight = tenant.weight;
    let name = tenant.name.clone();
    // The job leaves this thread with a handle to the same context.
    // Queue wait in the tenant lane starts now.
    trace.mark_queued();
    let job = Job {
        stream,
        run,
        tenant,
        deadline_at,
        trace: trace.clone(),
    };
    match shared.sched.submit_job(&name, weight, job) {
        Ok(depth) => {
            asap_obs::gauge_set("serve.jobs_depth", depth as i64);
            asap_obs::counter_set_max("serve.jobs_depth_peak", depth as u64);
        }
        Err(SubmitError::TenantFull(job)) => {
            let Job {
                mut stream,
                tenant,
                trace,
                ..
            } = job;
            tenant.count_rejected();
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            asap_obs::counter_inc("serve.lane_rejected");
            bounce(
                shared,
                ring,
                &mut stream,
                &trace,
                429,
                Some(1),
                "overloaded",
                "admission",
                &format!("tenant {name:?} queue is full; retry after 1s"),
            );
        }
        Err(SubmitError::TotalFull(job)) => {
            let Job {
                mut stream,
                tenant,
                trace,
                ..
            } = job;
            tenant.count_rejected();
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.rejected");
            bounce(
                shared,
                ring,
                &mut stream,
                &trace,
                429,
                Some(1),
                "overloaded",
                "admission",
                "job queue is full; retry after 1s",
            );
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    let workers_alive = {
        let slots = lock_slots(&shared.supervisor);
        slots
            .iter()
            .filter(|s| s.handle.as_ref().is_some_and(|h| !h.is_finished()))
            .count()
    };
    let mut w = ObjWriter::new();
    w.str(
        "status",
        if shared.draining.load(Ordering::Acquire) {
            "draining"
        } else {
            "ok"
        },
    )
    .usize(
        "queue_depth",
        shared.sched.conn_depth() + shared.sched.job_depth(),
    )
    .usize("conn_depth", shared.sched.conn_depth())
    .usize("job_depth", shared.sched.job_depth())
    .usize("active_lanes", shared.sched.active_lanes())
    .u64("in_flight", shared.in_flight.load(Ordering::Relaxed))
    .u64("served", shared.served.load(Ordering::Relaxed))
    .u64("rejected", shared.rejected.load(Ordering::Relaxed))
    .u64("shed_expired", shared.shed_expired.load(Ordering::Relaxed))
    .u64("brownout_level", u64::from(brownout_level(shared)))
    .u64("store_bytes", shared.store.bytes())
    .u64("store_ceiling", shared.store.ceiling())
    .usize("store_entries", shared.store.entries())
    .usize("tenants", shared.tenants.snapshot().len())
    .usize("workers", shared.cfg.workers)
    .usize("workers_alive", workers_alive)
    .u64(
        "worker_restarts",
        shared.supervisor.restarts.load(Ordering::Relaxed),
    )
    .u64(
        "consecutive_crashes",
        shared
            .supervisor
            .consecutive_crashes
            .load(Ordering::Relaxed),
    )
    .u64(
        "supervisor_backoff_ms",
        shared.supervisor.backoff_ms.load(Ordering::Relaxed),
    )
    .u64(
        "crashes_journaled",
        shared.supervisor.journal.entries.load(Ordering::Relaxed),
    );
    w.finish()
}

/// Execute a popped job — or shed it with a 504 if its deadline expired
/// while it sat in the lane (a worker writes the response but never
/// pays compile/execute/delay for a request nobody is waiting on).
fn execute_run(
    shared: &Shared,
    stream: &mut TcpStream,
    run: &RunRequest,
    tenant: &Arc<TenantState>,
    deadline_at: Option<Instant>,
    trace: &TraceCtx,
    ring: usize,
) {
    let now = Instant::now();
    if let Some(d) = deadline_at {
        if now >= d {
            shared.shed_expired.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("serve.shed.expired");
            asap_obs::counter_inc("serve.deadline_exceeded");
            tenant.count_shed();
            trace.note_anomaly("shed");
            respond_json(
                shared,
                ring,
                stream,
                trace,
                504,
                &[],
                &render_error(
                    "deadline_exceeded",
                    "shed",
                    "deadline expired while queued; request shed unrun",
                ),
            );
            return;
        }
    }
    if shared.cfg.worker_delay_ms > 0 {
        // The injected delay models slow kernel work: exec stage.
        trace.time(Stage::Exec, || {
            std::thread::sleep(Duration::from_millis(shared.cfg.worker_delay_ms));
        });
    }
    // Queue time already spent counts against the client's deadline:
    // budget with what is left, not the original span.
    let remaining_ms = deadline_at
        .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
        .unwrap_or(0);
    let cancel = CancelToken::new();
    let reaper_id = shared.reaper.register(&cancel, stream);
    let result = trace
        .time(Stage::Compile, || {
            shared
                .flights
                .compile(run.kernel, run.sparse(), &run.strategy)
        })
        .and_then(|(ck, cache_hit, compile_ns)| {
            trace.time(Stage::Exec, || {
                asap_core::execute_request(
                    &ck,
                    run.kernel,
                    run.sparse(),
                    run.engine,
                    &run.budget_with_remaining(&cancel, remaining_ms),
                    cache_hit,
                    compile_ns,
                )
            })
        });
    if let Some(id) = reaper_id {
        shared.reaper.unregister(id);
    }
    match result {
        Ok(outcome) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            tenant.count_served();
            asap_obs::counter_inc("serve.served");
            asap_obs::histogram_record("serve.exec_ns", outcome.exec_ns);
            if run.resident.store_hit {
                asap_obs::counter_inc("serve.served_store_hits");
            }
            let body = render_outcome(run, &outcome, Some(trace));
            respond_json(shared, ring, stream, trace, 200, &[], &body);
        }
        // A tripped budget is governed termination, not failure: the
        // deadline (or the client disconnecting, via the cancel token)
        // stopped the run. 504 mirrors a gateway timeout.
        Err(e) if e.kind() == "budget" => {
            asap_obs::counter_inc("serve.deadline_exceeded");
            trace.note_anomaly("deadline");
            respond_json(
                shared,
                ring,
                stream,
                trace,
                504,
                &[],
                &render_error("deadline_exceeded", e.kind(), &e.to_string()),
            );
        }
        // Anything else the pipeline rejects (bad spec, binding) is a
        // property of the request.
        Err(e) => {
            asap_obs::counter_inc("serve.bad_requests");
            respond_json(
                shared,
                ring,
                stream,
                trace,
                400,
                &[],
                &render_error("bad_request", e.kind(), &e.to_string()),
            );
        }
    }
}
