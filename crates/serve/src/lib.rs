//! # asap-serve — a concurrent compile-and-execute kernel service
//!
//! The workspace's batch story (figure sweeps, `asap_cli`) compiles and
//! runs kernels one process at a time. This crate turns the same
//! pipeline into a long-lived daemon: clients POST a request naming a
//! kernel (SpMV/SpMM), a matrix (collection name, `gen:` spec, or
//! inline MatrixMarket), a prefetch strategy, an engine, and a
//! deadline; the server compiles through the sharded kernel cache,
//! executes on the bytecode VM under a `Budget`, and answers with a
//! checksum and timings — bit-identical to a direct `asap-core` call.
//!
//! Production concerns, all std-only:
//!
//! - **Admission control** ([`queue`]): a bounded accept queue; overload
//!   is an immediate 429 + `Retry-After`, never latency collapse.
//! - **Request coalescing** ([`batcher`]): concurrent cold compiles of
//!   the same kernel single-flight; exactly one request pays.
//! - **Panic isolation** ([`server`]): a panicking request is a 500 for
//!   that client, not a dead worker.
//! - **Cancellation**: a reaper thread detects client disconnects and
//!   fires the request's `CancelToken`, stopping abandoned work at the
//!   budget's next poll slot.
//! - **Supervision** ([`server`]): worker-thread death is detected,
//!   journaled (JSONL crash journal: panic digest + request
//!   fingerprint), and healed by respawn under consecutive-crash
//!   backoff.
//! - **Protocol hygiene** ([`http`]): request-line, header-count,
//!   head-bytes, and body caps with typed 4xx answers (414/431/413),
//!   plus a wall-clock read deadline so slow-loris drips cannot pin
//!   workers.
//! - **Self-healing clients** ([`client`]): jittered exponential
//!   backoff honoring `Retry-After`, checksum-witnessed idempotent
//!   responses, and a closed/open/half-open circuit breaker.
//! - **Graceful drain** (`POST /control/shutdown`): stop admitting,
//!   serve everything queued, join every thread.
//! - **Observability**: `/healthz`, `/metrics` (the `asap-obs`
//!   registry: `serve.*` counters, queue-depth/in-flight gauges).
//!
//! The protocol and endpoints are documented in DESIGN.md §11; the load
//! harness (`asap_loadgen` in `asap-bench`) drives open-loop traffic
//! against this server and reports throughput and latency percentiles.

pub mod batcher;
pub mod client;
pub mod http;
pub mod matrix;
pub mod queue;
pub mod request;
pub mod server;

pub use batcher::SingleFlight;
pub use client::{
    exchange, get, post, BreakerState, CircuitBreaker, ClientError, HttpReply, ResilientClient,
    RetryPolicy,
};
pub use http::{MAX_HEADERS, MAX_HEAD_BYTES, MAX_REQUEST_LINE};
pub use matrix::MatrixCatalog;
pub use queue::{BoundedQueue, PushError};
pub use request::{parse_run_request, render_error, render_outcome, RunRequest, DEFAULT_SPMM_COLS};
pub use server::{ServeConfig, Server};
