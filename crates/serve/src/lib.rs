//! # asap-serve — a concurrent compile-and-execute kernel service
//!
//! The workspace's batch story (figure sweeps, `asap_cli`) compiles and
//! runs kernels one process at a time. This crate turns the same
//! pipeline into a long-lived daemon: clients POST a request naming a
//! kernel (SpMV/SpMM), a matrix (collection name, `gen:` spec, or
//! inline MatrixMarket), a prefetch strategy, an engine, and a
//! deadline; the server compiles through the sharded kernel cache,
//! executes on the bytecode VM under a `Budget`, and answers with a
//! checksum and timings — bit-identical to a direct `asap-core` call.
//!
//! Production concerns, all std-only:
//!
//! - **Admission control** ([`queue`]): a bounded accept queue; overload
//!   is an immediate 429 + `Retry-After`, never latency collapse.
//! - **Request coalescing** ([`batcher`]): concurrent cold compiles of
//!   the same kernel single-flight; exactly one request pays.
//! - **Panic isolation** ([`server`]): a panicking request is a 500 for
//!   that client, not a dead worker.
//! - **Cancellation**: a reaper thread detects client disconnects and
//!   fires the request's `CancelToken`, stopping abandoned work at the
//!   budget's next poll slot.
//! - **Supervision** ([`server`]): worker-thread death is detected,
//!   journaled (JSONL crash journal: panic digest + request
//!   fingerprint), and healed by respawn under consecutive-crash
//!   backoff.
//! - **Protocol hygiene** ([`http`]): request-line, header-count,
//!   head-bytes, and body caps with typed 4xx answers (414/431/413),
//!   plus a wall-clock read deadline so slow-loris drips cannot pin
//!   workers.
//! - **Self-healing clients** ([`client`]): jittered exponential
//!   backoff honoring `Retry-After`, checksum-witnessed idempotent
//!   responses, and a closed/open/half-open circuit breaker.
//! - **Graceful drain** (`POST /control/shutdown`): stop admitting,
//!   serve everything queued, join every thread.
//! - **Observability**: `/healthz`, `/metrics` (the `asap-obs`
//!   registry: `serve.*` counters, queue-depth/in-flight gauges).
//!
//! - **Tenant isolation** ([`tenant`], [`store`], [`queue`]): requests
//!   are classified by `X-Asap-Tenant`; each tenant gets a token-bucket
//!   request quota, a resident-byte quota in the bounded matrix store,
//!   and a weighted deficit-round-robin lane in the job scheduler, so
//!   one hostile tenant degrades itself, not its neighbours. Under
//!   sustained pressure a brownout ladder sheds inline uploads first,
//!   then lowest-weight tenants; queued jobs whose deadline lapses are
//!   shed as 504 without occupying a worker.
//!
//! The protocol and endpoints are documented in DESIGN.md §11 and §14;
//! the load harness (`asap_loadgen` in `asap-bench`) drives open-loop
//! (optionally multi-tenant zipfian) traffic against this server and
//! reports per-tenant throughput and CO-aware latency percentiles.

#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod http;
pub mod matrix;
pub mod queue;
pub mod request;
pub mod server;
pub mod store;
pub mod tenant;

pub use batcher::SingleFlight;
pub use client::{
    exchange, exchange_with_headers, get, post, BreakerState, CircuitBreaker, ClientError,
    HttpReply, ResilientClient, RetryPolicy,
};
pub use http::{MAX_HEADERS, MAX_HEAD_BYTES, MAX_REQUEST_LINE};
pub use matrix::MatrixCatalog;
pub use queue::{BoundedQueue, PushError, SubmitError, TenantScheduler, Work};
pub use request::{
    parse_run_request, render_error, render_outcome, RequestCtx, RunReject, RunRequest,
    DEFAULT_SPMM_COLS,
};
pub use server::{ServeConfig, Server};
pub use store::{MatrixStore, Resident, StoreError, STORE_SHARDS};
pub use tenant::{TenantError, TenantQuotas, TenantRegistry, TenantState, DEFAULT_TENANT};
