//! The bounded accept→worker queues behind admission control.
//!
//! Two layers live here:
//!
//! - [`BoundedQueue`] — the original single FIFO. `try_push` never
//!   blocks: a full queue is an immediate [`PushError::Full`] so the
//!   accept loop can answer 429 with `Retry-After` instead of letting
//!   latency collapse under overload. `pop` blocks until an item
//!   arrives or the queue is closed *and* drained — the
//!   graceful-shutdown contract: closing stops admission, workers
//!   finish what was queued.
//!
//! - [`TenantScheduler`] — the multi-tenant replacement the server now
//!   runs on. Raw connections enter one bounded FIFO (parsing is cheap
//!   and tenant-blind: the tenant is only known after the headers are
//!   read). Parsed jobs enter **per-tenant lanes** drained by weighted
//!   deficit round-robin: each time a lane reaches the head of the
//!   active ring with no deficit it is credited `weight` units, each
//!   popped job costs one unit, and the lane rotates to the back when
//!   its credit is spent. Service is therefore weight-proportional
//!   across backlogged tenants — a tenant bursting 10× the offered
//!   load fills only its own lane (per-tenant 429) and cannot starve
//!   anyone else's. Workers take connections first (a parse either
//!   becomes a lane entry or an immediate rejection; letting conns
//!   queue behind an aggressor's jobs would turn per-tenant 429s back
//!   into global ones).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

#[derive(Debug)]
pub enum PushError<T> {
    /// At the bound; the item is handed back for the 429 path.
    Full(T),
    /// Closed for draining; the item is handed back for the 503 path.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    bound: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(bound: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// Non-blocking admission: enqueue or hand the item straight back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.bound {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (`Some`) or the queue is closed
    /// and fully drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop admitting; wake all poppers so they can drain and exit.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed
    }
}

/// What a worker gets from [`TenantScheduler::next_work`].
pub enum Work<C, J> {
    /// A raw connection to parse (hold the implicit lease; call
    /// [`TenantScheduler::done_conn`] when parsing is finished).
    Conn(C),
    /// A parsed job popped from a tenant lane under DRR.
    Job(J),
}

/// Why a parsed job could not be queued.
#[derive(Debug)]
pub enum SubmitError<J> {
    /// This tenant's lane is at its bound — the per-tenant 429 path.
    /// Other tenants are unaffected; that is the point.
    TenantFull(J),
    /// The global job cap is hit (sum over lanes) — backpressure even
    /// when no single tenant is over its share.
    TotalFull(J),
}

struct Lane<J> {
    jobs: VecDeque<J>,
    /// Remaining DRR credit; refilled to `weight` when the lane reaches
    /// the head of the active ring with zero credit.
    deficit: u64,
    weight: u32,
}

struct SchedInner<C, J> {
    conns: VecDeque<C>,
    /// Non-empty lanes only; a lane is dropped (deficit forgotten) the
    /// moment it drains, so an idle tenant carries no credit into its
    /// next burst.
    lanes: HashMap<String, Lane<J>>,
    /// Round-robin ring over `lanes` keys; each key appears exactly once.
    active: VecDeque<String>,
    jobs_total: usize,
    /// Connections popped but not yet `done_conn`-ed. A parse in flight
    /// may still submit a job, so workers must not exit — even closed
    /// and empty — while leases are outstanding.
    leases: usize,
    closed: bool,
}

/// Connection FIFO + weighted deficit-round-robin job lanes, drained by
/// one shared worker pool.
pub struct TenantScheduler<C, J> {
    inner: Mutex<SchedInner<C, J>>,
    ready: Condvar,
    conn_bound: usize,
    lane_bound: usize,
    job_bound: usize,
}

impl<C, J> TenantScheduler<C, J> {
    /// `conn_bound` caps raw connections awaiting parse, `lane_bound`
    /// caps one tenant's queued jobs, `job_bound` caps jobs across all
    /// lanes (and feeds the brownout ladder's pressure signal).
    pub fn new(conn_bound: usize, lane_bound: usize, job_bound: usize) -> TenantScheduler<C, J> {
        TenantScheduler {
            inner: Mutex::new(SchedInner {
                conns: VecDeque::new(),
                lanes: HashMap::new(),
                active: VecDeque::new(),
                jobs_total: 0,
                leases: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            conn_bound: conn_bound.max(1),
            lane_bound: lane_bound.max(1),
            job_bound: job_bound.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedInner<C, J>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Non-blocking connection admission (the accept loop's 429/503
    /// decision point, same contract as [`BoundedQueue::try_push`]).
    pub fn try_push_conn(&self, conn: C) -> Result<usize, PushError<C>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(conn));
        }
        if g.conns.len() >= self.conn_bound {
            return Err(PushError::Full(conn));
        }
        g.conns.push_back(conn);
        let depth = g.conns.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Queue a parsed job into `tenant`'s lane. Deliberately allowed
    /// after `close()`: a connection popped before the close is admitted
    /// work, and shutdown drains admitted work.
    pub fn submit_job(&self, tenant: &str, weight: u32, job: J) -> Result<usize, SubmitError<J>> {
        let mut g = self.lock();
        if g.jobs_total >= self.job_bound {
            return Err(SubmitError::TotalFull(job));
        }
        if let Some(lane) = g.lanes.get(tenant) {
            if lane.jobs.len() >= self.lane_bound {
                return Err(SubmitError::TenantFull(job));
            }
        }
        let lane = g.lanes.entry(tenant.to_string()).or_insert_with(|| Lane {
            jobs: VecDeque::new(),
            deficit: 0,
            weight: weight.max(1),
        });
        let newly_active = lane.jobs.is_empty();
        lane.jobs.push_back(job);
        if newly_active {
            g.active.push_back(tenant.to_string());
        }
        g.jobs_total += 1;
        let depth = g.jobs_total;
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block for the next unit of work. Connections win over jobs; jobs
    /// are drained lane-by-lane under deficit round-robin. Returns
    /// `None` only when the scheduler is closed, both queues are empty,
    /// and no popped connection could still submit a job.
    pub fn next_work(&self) -> Option<Work<C, J>> {
        let mut g = self.lock();
        loop {
            if let Some(c) = g.conns.pop_front() {
                g.leases += 1;
                return Some(Work::Conn(c));
            }
            if g.jobs_total > 0 {
                return Some(Work::Job(Self::drr_pop(&mut g)));
            }
            if g.closed && g.leases == 0 {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn drr_pop(g: &mut SchedInner<C, J>) -> J {
        let name = g
            .active
            .front()
            .cloned()
            .expect("jobs_total > 0 implies an active lane");
        let lane = g.lanes.get_mut(&name).expect("active lane exists");
        if lane.deficit == 0 {
            lane.deficit = u64::from(lane.weight);
        }
        let job = lane.jobs.pop_front().expect("active lane is non-empty");
        lane.deficit -= 1;
        g.jobs_total -= 1;
        if lane.jobs.is_empty() {
            g.active.pop_front();
            g.lanes.remove(&name);
        } else if lane.deficit == 0 {
            g.active.pop_front();
            g.active.push_back(name);
        }
        job
    }

    /// Release the parse lease taken by `next_work` handing out a
    /// connection. Must be called exactly once per popped connection
    /// (panics in the handler included — run it after `catch_unwind`).
    pub fn done_conn(&self) {
        let mut g = self.lock();
        g.leases = g.leases.saturating_sub(1);
        let all_idle = g.closed && g.leases == 0 && g.conns.is_empty() && g.jobs_total == 0;
        drop(g);
        if all_idle {
            // Last lease gone with nothing queued: wake blocked workers
            // so they observe the exit condition.
            self.ready.notify_all();
        }
    }

    /// Stop admitting connections; wake everyone to drain and exit.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Raw connections awaiting parse.
    pub fn conn_depth(&self) -> usize {
        self.lock().conns.len()
    }

    /// Parsed jobs across all lanes — the brownout pressure signal.
    pub fn job_depth(&self) -> usize {
        self.lock().jobs_total
    }

    /// The global job cap this scheduler was built with.
    pub fn job_bound(&self) -> usize {
        self.job_bound
    }

    /// Lanes with at least one queued job.
    pub fn active_lanes(&self) -> usize {
        self.lock().lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_bounces_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_releases_poppers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        match q.try_push(12) {
            Err(PushError::Closed(v)) => assert_eq!(v, 12),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Queued work survives the close; only then does pop return None.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(1).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(1)]);
    }

    #[test]
    fn producers_and_consumers_conserve_items() {
        let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0usize;
        let mut i = 1usize;
        while pushed < 100 {
            if q.try_push(i).is_ok() {
                pushed += 1;
                i += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (1..=100).sum::<usize>());
    }

    #[test]
    fn pop_after_close_drains_in_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        // Close stops admission but never reorders or drops: the five
        // queued items come out exactly as they went in.
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_after_close_hands_item_back_closed() {
        let q = BoundedQueue::new(2);
        q.close();
        match q.try_push("job") {
            Err(PushError::Closed(v)) => assert_eq!(v, "job"),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Still Closed, not Full, even though the queue has room.
        assert!(matches!(q.try_push("again"), Err(PushError::Closed(_))));
    }

    #[test]
    fn concurrent_close_vs_pop_loses_no_wakeups() {
        // Race close() against a pack of blocked poppers, many rounds:
        // every popper must return (no lost wakeup leaves one parked
        // forever) and every pushed item must surface exactly once.
        for round in 0..50 {
            let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(64));
            let poppers: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let pusher = {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut pushed = 0usize;
                    for i in 0..(round % 7) {
                        if q.try_push(i).is_ok() {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            };
            let closer = {
                let q = q.clone();
                std::thread::spawn(move || q.close())
            };
            let pushed = pusher.join().unwrap();
            closer.join().unwrap();
            let mut seen: Vec<usize> = poppers
                .into_iter()
                .flat_map(|p| p.join().expect("popper must exit, not hang"))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen.len(), pushed, "round {round}: item lost or duplicated");
        }
    }

    // --- TenantScheduler ---

    #[test]
    fn conns_win_over_jobs_and_drr_is_weight_proportional() {
        let s: TenantScheduler<&str, (&str, u32)> = TenantScheduler::new(8, 64, 256);
        // Backlog two tenants, weight 2 vs 1, eight jobs each.
        for i in 0..8 {
            s.submit_job("heavy", 2, ("heavy", i)).unwrap();
            s.submit_job("light", 1, ("light", i)).unwrap();
        }
        s.try_push_conn("c1").unwrap();
        // The connection is served first even though jobs were queued
        // earlier.
        match s.next_work() {
            Some(Work::Conn(c)) => assert_eq!(c, "c1"),
            _ => panic!("conn must win over queued jobs"),
        }
        s.done_conn();
        // Drain all 16 jobs; in any aligned window of 3 pops the heavy
        // lane gets 2 and the light lane 1 (quantum = weight, cost = 1).
        let mut order = Vec::new();
        for _ in 0..16 {
            match s.next_work() {
                Some(Work::Job((who, _))) => order.push(who),
                _ => panic!("16 jobs queued"),
            }
        }
        let heavy_first_cycle = order[..3].iter().filter(|w| **w == "heavy").count();
        assert_eq!(
            heavy_first_cycle, 2,
            "weight-2 lane gets 2 of every 3: {order:?}"
        );
        assert_eq!(order.iter().filter(|w| **w == "heavy").count(), 8);
        assert_eq!(order.iter().filter(|w| **w == "light").count(), 8);
        // Interleaved, not head-of-line: the light tenant's first job is
        // served within the first weight-sum window.
        let first_light = order.iter().position(|w| *w == "light").unwrap();
        assert!(first_light <= 2, "light tenant starved: {order:?}");
    }

    #[test]
    fn lane_bound_is_per_tenant_and_total_bound_global() {
        let s: TenantScheduler<(), u32> = TenantScheduler::new(4, 2, 3);
        s.submit_job("a", 1, 1).unwrap();
        s.submit_job("a", 1, 2).unwrap();
        // Tenant a is at its lane bound; tenant b is unaffected.
        assert!(matches!(
            s.submit_job("a", 1, 3),
            Err(SubmitError::TenantFull(3))
        ));
        s.submit_job("b", 1, 4).unwrap();
        // Global cap (3) now binds before b's lane bound does.
        assert!(matches!(
            s.submit_job("b", 1, 5),
            Err(SubmitError::TotalFull(5))
        ));
        assert_eq!(s.job_depth(), 3);
        assert_eq!(s.active_lanes(), 2);
    }

    #[test]
    fn close_waits_for_parse_leases_before_releasing_workers() {
        let s: Arc<TenantScheduler<&str, u32>> = Arc::new(TenantScheduler::new(4, 8, 8));
        s.try_push_conn("c").unwrap();
        let Some(Work::Conn(_)) = s.next_work() else {
            panic!("conn expected")
        };
        s.close();
        // A worker holding a parse lease may still submit; a second
        // worker must block rather than observe a premature drain.
        let waiter = {
            let s = s.clone();
            std::thread::spawn(move || s.next_work())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !waiter.is_finished(),
            "worker exited while a lease was live"
        );
        // The lease-holder submits after close (admitted work drains)…
        s.submit_job("t", 1, 7).unwrap();
        s.done_conn();
        match waiter.join().unwrap() {
            Some(Work::Job(7)) => {}
            _ => panic!("post-close submit from a leased parse must be served"),
        }
        // …and with the lease released and queues empty, workers exit.
        assert!(s.next_work().is_none());
    }

    #[test]
    fn closed_scheduler_bounces_conns_but_drains_jobs() {
        let s: TenantScheduler<u8, u8> = TenantScheduler::new(4, 8, 8);
        s.submit_job("t", 1, 9).unwrap();
        s.close();
        assert!(matches!(s.try_push_conn(1), Err(PushError::Closed(1))));
        match s.next_work() {
            Some(Work::Job(9)) => {}
            _ => panic!("queued job survives close"),
        }
        assert!(s.next_work().is_none());
    }

    #[test]
    fn drained_lane_forgets_its_deficit() {
        let s: TenantScheduler<(), (&str, u32)> = TenantScheduler::new(4, 64, 256);
        // Burst, drain, burst again: the second burst must not inherit
        // credit or debt from the first.
        s.submit_job("a", 3, ("a", 0)).unwrap();
        let Some(Work::Job(_)) = s.next_work() else {
            panic!()
        };
        assert_eq!(s.active_lanes(), 0, "drained lane is dropped");
        s.submit_job("a", 3, ("a", 1)).unwrap();
        s.submit_job("b", 1, ("b", 0)).unwrap();
        let mut order = Vec::new();
        for _ in 0..2 {
            if let Some(Work::Job((who, _))) = s.next_work() {
                order.push(who);
            }
        }
        assert_eq!(order, vec!["a", "b"], "fresh burst starts a fresh quantum");
    }
}
