//! The bounded accept→worker queue behind admission control.
//!
//! `try_push` never blocks: a full queue is an immediate
//! [`PushError::Full`] so the accept loop can answer 429 with
//! `Retry-After` instead of letting latency collapse under overload —
//! the "bounded queue depth, not queueing collapse" property the load
//! harness asserts. `pop` blocks until an item arrives or the queue is
//! closed *and* drained, which is exactly the graceful-shutdown
//! contract: closing stops admission, workers finish what was queued.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
pub enum PushError<T> {
    /// At the bound; the item is handed back for the 429 path.
    Full(T),
    /// Closed for draining; the item is handed back for the 503 path.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    bound: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(bound: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// Non-blocking admission: enqueue or hand the item straight back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.bound {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (`Some`) or the queue is closed
    /// and fully drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop admitting; wake all poppers so they can drain and exit.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_bounces_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_releases_poppers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        match q.try_push(12) {
            Err(PushError::Closed(v)) => assert_eq!(v, 12),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Queued work survives the close; only then does pop return None.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(1).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(1)]);
    }

    #[test]
    fn producers_and_consumers_conserve_items() {
        let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0usize;
        let mut i = 1usize;
        while pushed < 100 {
            if q.try_push(i).is_ok() {
                pushed += 1;
                i += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (1..=100).sum::<usize>());
    }
}
