//! Tenant identity, quotas, and accounting.
//!
//! Every request is attributed to a tenant, named by the
//! `X-Asap-Tenant` header (anonymous traffic falls into
//! [`DEFAULT_TENANT`]). A tenant is the unit of isolation for the whole
//! serving layer:
//!
//! - **request quota** — a token bucket (`rps` sustained, `burst`
//!   headroom) refilled on demand; an empty bucket is a per-tenant 429
//!   with a computed `Retry-After`, and never affects other tenants;
//! - **byte quota** — resident bytes the tenant may hold in the matrix
//!   store ([`crate::store`]); charged on insert, refunded on eviction;
//! - **weight** — the tenant's share in the deficit-round-robin queue
//!   ([`crate::queue::TenantScheduler`]) and its survival rank in the
//!   brownout ladder (lowest weights are shed first).
//!
//! The registry is bounded: a hostile client cannot mint unbounded
//! tenants (each costs two leaked metric names) — past
//! [`TenantQuotas::max_tenants`] new names are a typed rejection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// The tenant anonymous requests are accounted under.
pub const DEFAULT_TENANT: &str = "default";

/// Cap on tenant-name length (header values are hostile input).
pub const MAX_TENANT_NAME: usize = 64;

/// Per-tenant policy knobs, set once at server construction.
#[derive(Debug, Clone)]
pub struct TenantQuotas {
    /// Sustained requests/second per tenant (0 = unlimited).
    pub rps: f64,
    /// Token-bucket burst capacity (requests above the sustained rate a
    /// quiet tenant may fire at once).
    pub burst: f64,
    /// Resident matrix-store bytes one tenant may hold (0 = unlimited).
    pub store_bytes: u64,
    /// Hard cap on distinct tenants; beyond it, new names are rejected.
    pub max_tenants: usize,
    /// Per-name scheduling weights; unlisted tenants get weight 1.
    pub weights: Vec<(String, u32)>,
}

impl Default for TenantQuotas {
    fn default() -> TenantQuotas {
        TenantQuotas {
            rps: 0.0,
            burst: 16.0,
            store_bytes: 16 * 1024 * 1024,
            max_tenants: 64,
            weights: Vec::new(),
        }
    }
}

/// Why a tenant could not be resolved.
#[derive(Debug)]
pub enum TenantError {
    /// The header value is not a valid tenant name (→ 400).
    BadName(String),
    /// The registry is at `max_tenants` (→ 429; pick an existing name).
    TooMany(usize),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::BadName(n) => write!(
                f,
                "invalid tenant name {n:?}: expected 1..={MAX_TENANT_NAME} chars of [A-Za-z0-9._-]"
            ),
            TenantError::TooMany(cap) => {
                write!(f, "tenant registry full ({cap}); reuse an existing tenant")
            }
        }
    }
}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// One tenant's live state. Shared (`Arc`) between the scheduler lanes,
/// the store's byte accounting, and the response paths.
#[derive(Debug)]
pub struct TenantState {
    pub name: String,
    pub weight: u32,
    /// Sustained rate; 0 disables the bucket.
    rps: f64,
    burst: f64,
    /// Resident store-byte quota; 0 = unlimited.
    pub store_quota: u64,
    bucket: Mutex<TokenBucket>,
    /// Bytes currently resident in the matrix store on this tenant's
    /// account.
    pub resident_bytes: AtomicU64,
    // Per-tenant tallies, mirrored into leaked-name obs counters so
    // /metrics breaks them out (bounded by max_tenants).
    pub served: AtomicU64,
    pub rejected: AtomicU64,
    pub shed: AtomicU64,
    m_served: &'static str,
    m_rejected: &'static str,
    m_shed: &'static str,
}

impl TenantState {
    fn new(name: &str, weight: u32, q: &TenantQuotas) -> TenantState {
        // Leaked once per registered tenant; the registry cap bounds the
        // total leak at max_tenants × 3 short strings.
        let leak = |suffix: &str| -> &'static str {
            Box::leak(format!("serve.tenant.{name}.{suffix}").into_boxed_str())
        };
        TenantState {
            name: name.to_string(),
            weight: weight.max(1),
            rps: q.rps,
            burst: q.burst.max(1.0),
            store_quota: q.store_bytes,
            bucket: Mutex::new(TokenBucket {
                tokens: q.burst.max(1.0),
                last: Instant::now(),
            }),
            resident_bytes: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            m_served: leak("served"),
            m_rejected: leak("rejected"),
            m_shed: leak("shed"),
        }
    }

    /// Take one request token. `Err(retry_after_secs)` means the bucket
    /// is empty; the caller answers 429 with that hint.
    pub fn try_admit(&self) -> Result<(), u64> {
        if self.rps <= 0.0 {
            return Ok(());
        }
        let mut b = self.bucket.lock().unwrap_or_else(|p| p.into_inner());
        let now = Instant::now();
        let dt = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + dt * self.rps).min(self.burst);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            // Whole seconds until one token refills (ceil, min 1): the
            // honest hint for a client that must wait out its own quota.
            let secs = ((1.0 - b.tokens) / self.rps).ceil().max(1.0);
            Err(secs as u64)
        }
    }

    /// Try to reserve store bytes against the tenant quota.
    pub fn try_charge_bytes(&self, bytes: u64) -> Result<(), u64> {
        if self.store_quota == 0 {
            self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
            return Ok(());
        }
        let mut cur = self.resident_bytes.load(Ordering::Relaxed);
        loop {
            if cur.saturating_add(bytes) > self.store_quota {
                return Err(self.store_quota);
            }
            match self.resident_bytes.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Refund store bytes (entry evicted or insert abandoned).
    pub fn uncharge_bytes(&self, bytes: u64) {
        let mut cur = self.resident_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.resident_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc(self.m_served);
    }

    pub fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc(self.m_rejected);
    }

    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc(self.m_shed);
    }
}

/// The bounded name → state map. Weighted tenants from the config are
/// pre-registered; everything else registers on first sight.
pub struct TenantRegistry {
    quotas: TenantQuotas,
    map: Mutex<HashMap<String, Arc<TenantState>>>,
    default_tenant: Arc<TenantState>,
}

impl TenantRegistry {
    pub fn new(quotas: TenantQuotas) -> TenantRegistry {
        let default_weight = weight_for(DEFAULT_TENANT, &quotas.weights);
        let default_tenant = Arc::new(TenantState::new(DEFAULT_TENANT, default_weight, &quotas));
        let mut map = HashMap::new();
        map.insert(DEFAULT_TENANT.to_string(), default_tenant.clone());
        for (name, w) in quotas.weights.clone() {
            map.entry(name.clone())
                .or_insert_with(|| Arc::new(TenantState::new(&name, w, &quotas)));
        }
        asap_obs::gauge_set("serve.tenants", map.len() as i64);
        TenantRegistry {
            quotas,
            map: Mutex::new(map),
            default_tenant,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<TenantState>>> {
        // Tenant states are append-only registrations; a poisoning panic
        // cannot have left a half-written entry worth discarding.
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn default_tenant(&self) -> Arc<TenantState> {
        self.default_tenant.clone()
    }

    /// Resolve an `X-Asap-Tenant` header value (or its absence) to a
    /// tenant, registering new valid names up to the cap.
    pub fn resolve(&self, header: Option<&str>) -> Result<Arc<TenantState>, TenantError> {
        let Some(raw) = header else {
            return Ok(self.default_tenant.clone());
        };
        let name = raw.trim();
        if name.is_empty()
            || name.len() > MAX_TENANT_NAME
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        {
            return Err(TenantError::BadName(truncate(raw)));
        }
        let mut g = self.lock();
        if let Some(t) = g.get(name) {
            return Ok(t.clone());
        }
        if g.len() >= self.quotas.max_tenants {
            return Err(TenantError::TooMany(self.quotas.max_tenants));
        }
        let weight = weight_for(name, &self.quotas.weights);
        let t = Arc::new(TenantState::new(name, weight, &self.quotas));
        g.insert(name.to_string(), t.clone());
        asap_obs::gauge_set("serve.tenants", g.len() as i64);
        Ok(t)
    }

    /// All registered tenants (for the /metrics per-tenant section).
    pub fn snapshot(&self) -> Vec<Arc<TenantState>> {
        let mut v: Vec<Arc<TenantState>> = self.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// `(min, max)` weight across registered tenants. The brownout
    /// ladder sheds min-weight tenants only when min < max — with one
    /// weight class there is nobody "lowest" to sacrifice.
    pub fn weight_band(&self) -> (u32, u32) {
        let g = self.lock();
        let mut min = u32::MAX;
        let mut max = 0;
        for t in g.values() {
            min = min.min(t.weight);
            max = max.max(t.weight);
        }
        (min.min(max), max)
    }
}

fn weight_for(name: &str, weights: &[(String, u32)]) -> u32 {
    weights
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, w)| *w)
        .unwrap_or(1)
        .max(1)
}

fn truncate(s: &str) -> String {
    let mut out: String = s.chars().take(MAX_TENANT_NAME).collect();
    if out.len() < s.len() {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn anonymous_maps_to_default_and_names_register_once() {
        let r = TenantRegistry::new(TenantQuotas::default());
        let a = r.resolve(None).unwrap();
        assert_eq!(a.name, DEFAULT_TENANT);
        let b = r.resolve(Some("team-a")).unwrap();
        let c = r.resolve(Some("team-a")).unwrap();
        assert!(Arc::ptr_eq(&b, &c), "same name, same state");
        assert_eq!(r.snapshot().len(), 2);
    }

    #[test]
    fn hostile_names_are_typed_rejections() {
        let r = TenantRegistry::new(TenantQuotas::default());
        for bad in [
            "",
            "   ",
            "a b",
            "a\u{7f}b",
            &"x".repeat(MAX_TENANT_NAME + 1),
        ] {
            assert!(
                matches!(r.resolve(Some(bad)), Err(TenantError::BadName(_))),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn registry_is_bounded() {
        let r = TenantRegistry::new(TenantQuotas {
            max_tenants: 3,
            ..TenantQuotas::default()
        });
        r.resolve(Some("a")).unwrap();
        r.resolve(Some("b")).unwrap();
        match r.resolve(Some("c")) {
            Err(TenantError::TooMany(3)) => {}
            other => panic!("expected TooMany, got {other:?}"),
        }
        // Existing names still resolve at the cap.
        r.resolve(Some("a")).unwrap();
        r.resolve(None).unwrap();
    }

    #[test]
    fn token_bucket_drains_then_refills() {
        let r = TenantRegistry::new(TenantQuotas {
            rps: 50.0,
            burst: 2.0,
            ..TenantQuotas::default()
        });
        let t = r.resolve(Some("bursty")).unwrap();
        assert!(t.try_admit().is_ok());
        assert!(t.try_admit().is_ok());
        let retry = t.try_admit().expect_err("burst spent");
        assert!(retry >= 1, "retry-after is at least a second");
        std::thread::sleep(Duration::from_millis(60));
        assert!(t.try_admit().is_ok(), "tokens refill at rps");
    }

    #[test]
    fn byte_quota_charges_and_refunds() {
        let r = TenantRegistry::new(TenantQuotas {
            store_bytes: 100,
            ..TenantQuotas::default()
        });
        let t = r.resolve(Some("hoarder")).unwrap();
        t.try_charge_bytes(60).unwrap();
        assert_eq!(t.try_charge_bytes(50), Err(100), "over quota");
        t.uncharge_bytes(60);
        t.try_charge_bytes(100).unwrap();
        t.uncharge_bytes(999); // saturates, never underflows
        assert_eq!(t.resident_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn weights_come_from_config_with_floor_one() {
        let r = TenantRegistry::new(TenantQuotas {
            weights: vec![("vip".into(), 4), ("zero".into(), 0)],
            ..TenantQuotas::default()
        });
        assert_eq!(r.resolve(Some("vip")).unwrap().weight, 4);
        assert_eq!(r.resolve(Some("zero")).unwrap().weight, 1, "floor");
        assert_eq!(r.resolve(Some("other")).unwrap().weight, 1, "default");
        assert_eq!(r.weight_band(), (1, 4));
    }
}
