//! The wire protocol: `POST /v1/run` bodies in, response JSON out.
//!
//! Requests are strict JSON — unknown fields are rejected (the same
//! contract as the bench result reader: a typo'd `"distanse"` must be a
//! 400, not a silently-defaulted 45). Responses carry the checksum as a
//! fixed-width hex *string*: a u64 does not survive JSON readers that
//! funnel numbers through f64, and the checksum is the bit-exactness
//! witness the whole test story hangs on.
//!
//! Parsing is tenant-aware: matrix references resolve through the
//! resident [`MatrixStore`] on the calling tenant's account, so a
//! rejection is typed with the HTTP status it deserves —
//! [`RunReject::Bad`] (400) for malformed bodies,
//! [`RunReject::Oversized`] (413) for matrices that could never fit the
//! store, [`RunReject::StoreBusy`] / [`RunReject::Brownout`] (429) for
//! quota, pin-pressure, and load-shed conditions that a client should
//! retry later.

use crate::matrix::MatrixCatalog;
use crate::store::{MatrixStore, Resident, StoreError};
use crate::tenant::TenantState;
use asap_core::{ExecEngine, PrefetchStrategy, ServiceKernel, ServiceOutcome};
use asap_ir::{AsapError, Budget, CancelToken};
use asap_obs::{Json, ObjWriter, Stage, TraceCtx, STAGES};
use std::sync::Arc;

/// Default SpMM dense-operand width when the request omits `cols`.
pub const DEFAULT_SPMM_COLS: usize = 8;

const KNOWN_FIELDS: [&str; 8] = [
    "kernel",
    "matrix",
    "mtx",
    "cols",
    "strategy",
    "distance",
    "engine",
    "deadline_ms",
];

/// Everything a parse needs beyond the body: where matrices come from
/// and on whose account.
pub struct RequestCtx<'a> {
    pub catalog: &'a MatrixCatalog,
    pub store: &'a Arc<MatrixStore>,
    pub tenant: &'a Arc<TenantState>,
    pub default_deadline_ms: u64,
    /// Per-request execution byte budget (0 = unlimited).
    pub exec_bytes: u64,
    /// Brownout lever: when false, inline `mtx` uploads are refused
    /// with a retryable 429 before any parsing or allocation happens.
    pub allow_inline: bool,
    /// Request trace context: store resolution time is attributed to
    /// [`Stage::Store`] through this. `None` (or a dormant context)
    /// records nothing.
    pub trace: Option<&'a TraceCtx>,
}

impl RequestCtx<'_> {
    /// Run `f`, attributing its wall time to the store stage.
    fn timed_store<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.trace {
            Some(t) => t.time(Stage::Store, f),
            None => f(),
        }
    }
}

/// A typed parse/resolve failure carrying its HTTP status.
#[derive(Debug)]
pub enum RunReject {
    /// Malformed body or unknown reference (→ 400).
    Bad(AsapError),
    /// The matrix can never become resident (→ 413).
    Oversized(String),
    /// Tenant byte quota or fully-pinned store (→ 429, retryable).
    StoreBusy(String),
    /// Inline uploads shed under brownout (→ 429, retryable).
    Brownout,
}

impl RunReject {
    pub fn status(&self) -> u16 {
        match self {
            RunReject::Bad(_) => 400,
            RunReject::Oversized(_) => 413,
            RunReject::StoreBusy(_) | RunReject::Brownout => 429,
        }
    }

    /// The `kind` field of the error body.
    pub fn kind(&self) -> &str {
        match self {
            RunReject::Bad(e) => e.kind(),
            RunReject::Oversized(_) | RunReject::StoreBusy(_) => "store",
            RunReject::Brownout => "brownout",
        }
    }

    pub fn message(&self) -> String {
        match self {
            RunReject::Bad(e) => e.to_string(),
            RunReject::Oversized(m) | RunReject::StoreBusy(m) => m.clone(),
            RunReject::Brownout => {
                "server is shedding inline matrix uploads under load; retry later or use a named matrix".into()
            }
        }
    }
}

impl From<AsapError> for RunReject {
    fn from(e: AsapError) -> RunReject {
        RunReject::Bad(e)
    }
}

impl From<StoreError> for RunReject {
    fn from(e: StoreError) -> RunReject {
        match e {
            StoreError::Oversized { .. } => RunReject::Oversized(e.to_string()),
            StoreError::TenantQuota { .. } | StoreError::Busy => {
                RunReject::StoreBusy(e.to_string())
            }
        }
    }
}

/// A parsed, resolved, ready-to-execute request. Holds the matrix as a
/// store [`Resident`]: while the request lives, the entry is pinned.
#[derive(Debug)]
pub struct RunRequest {
    pub kernel: ServiceKernel,
    pub resident: Resident,
    /// What the client called the matrix (echoed in the response).
    pub matrix_label: String,
    pub strategy: PrefetchStrategy,
    pub strategy_label: &'static str,
    pub engine: ExecEngine,
    pub deadline_ms: u64,
    /// Execution byte budget threaded from the server config.
    pub exec_bytes: u64,
}

impl RunRequest {
    pub fn sparse(&self) -> &Arc<asap_tensor::SparseTensor> {
        &self.resident.tensor
    }

    /// The execution budget: the per-request deadline plus the client
    /// disconnect token (a `deadline_ms` of 0 means "no deadline").
    pub fn budget(&self, cancel: &CancelToken) -> Budget {
        self.budget_with_remaining(cancel, self.deadline_ms)
    }

    /// [`budget`](RunRequest::budget) with the deadline replaced by the
    /// time actually left — queue time counts against the client's
    /// deadline, so the executor passes `deadline_at - now`, not the
    /// original span.
    pub fn budget_with_remaining(&self, cancel: &CancelToken, remaining_ms: u64) -> Budget {
        let mut b = Budget::unlimited().with_cancel(cancel);
        if self.exec_bytes > 0 {
            b = b.with_bytes(self.exec_bytes);
        }
        if self.deadline_ms > 0 {
            b = b.with_deadline_ms(remaining_ms.max(1));
        }
        b
    }
}

fn want_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, AsapError> {
    v.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| AsapError::binding(format!("field {field:?} must be a string")))
}

fn opt_usize(v: &Json, field: &str) -> Result<Option<usize>, AsapError> {
    match v.get(field) {
        None => Ok(None),
        Some(n) => n.as_usize().map(Some).ok_or_else(|| {
            AsapError::binding(format!("field {field:?} must be a non-negative integer"))
        }),
    }
}

/// Resolve a named/`gen:` reference through the store (hit → pinned
/// resident; miss → build once, admit on the tenant's account).
fn resolve_named(ctx: &RequestCtx, name: &str) -> Result<Resident, RunReject> {
    ctx.timed_store(|| {
        if !ctx.store.enabled() {
            // Store disabled: the legacy catalog cache keeps the warm path.
            return Ok(Resident::unmanaged(ctx.catalog.resolve(name)?));
        }
        let key = format!("ref:{name}");
        if let Some(r) = ctx.store.lookup(&key) {
            return Ok(r);
        }
        let tensor = ctx.catalog.build(name)?;
        Ok(ctx.store.admit(&key, tensor, ctx.tenant)?)
    })
}

/// Resolve inline MatrixMarket text: keyed by content digest, so the
/// second request with the same bytes is a store hit that skips the
/// O(nnz) parse entirely.
fn resolve_inline(ctx: &RequestCtx, text: &str) -> Result<Resident, RunReject> {
    if !ctx.allow_inline {
        return Err(RunReject::Brownout);
    }
    ctx.timed_store(|| {
        if !ctx.store.enabled() {
            return Ok(Resident::unmanaged(ctx.catalog.resolve_inline(text)?));
        }
        let key = format!("mtx:{:016x}", asap_core::fingerprint64(text.as_bytes()));
        if let Some(r) = ctx.store.lookup(&key) {
            return Ok(r);
        }
        let tensor = ctx.catalog.resolve_inline(text)?;
        Ok(ctx.store.admit(&key, tensor, ctx.tenant)?)
    })
}

/// Parse and resolve one `/v1/run` body. Every failure is a typed
/// [`RunReject`] the worker maps to its HTTP status.
pub fn parse_run_request(body: &[u8], ctx: &RequestCtx) -> Result<RunRequest, RunReject> {
    let text =
        std::str::from_utf8(body).map_err(|_| AsapError::binding("request body is not UTF-8"))?;
    let v = asap_obs::parse_json(text)?;
    let Json::Obj(fields) = &v else {
        return Err(AsapError::binding("request body must be a JSON object").into());
    };
    for (k, _) in fields {
        if !KNOWN_FIELDS.contains(&k.as_str()) {
            return Err(AsapError::binding(format!("unknown field {k:?}")).into());
        }
    }

    let cols = opt_usize(&v, "cols")?;
    let kernel = match want_str(&v, "kernel")? {
        "spmv" => {
            if cols.is_some() {
                return Err(AsapError::binding("field \"cols\" only applies to spmm").into());
            }
            ServiceKernel::Spmv
        }
        "spmm" => ServiceKernel::Spmm {
            cols: cols.unwrap_or(DEFAULT_SPMM_COLS),
        },
        other => {
            return Err(AsapError::binding(format!(
                "unknown kernel {other:?}: expected spmv or spmm"
            ))
            .into())
        }
    };

    let (resident, matrix_label) = match (v.get("matrix"), v.get("mtx")) {
        (Some(_), Some(_)) => {
            return Err(
                AsapError::binding("give either \"matrix\" or inline \"mtx\", not both").into(),
            )
        }
        (Some(_), None) => {
            let name = want_str(&v, "matrix")?;
            (resolve_named(ctx, name)?, name.to_string())
        }
        (None, Some(_)) => {
            let text = want_str(&v, "mtx")?;
            (resolve_inline(ctx, text)?, "inline".to_string())
        }
        (None, None) => {
            return Err(AsapError::binding(
                "a matrix is required: \"matrix\" (name or gen: spec) or inline \"mtx\"",
            )
            .into())
        }
    };

    let distance = opt_usize(&v, "distance")?.unwrap_or(45);
    let (strategy, strategy_label) = match v.get("strategy").map(|s| s.as_str()) {
        None => (PrefetchStrategy::asap(distance), "asap"),
        Some(Some("asap")) => (PrefetchStrategy::asap(distance), "asap"),
        Some(Some("aj")) => (PrefetchStrategy::aj(distance), "ainsworth-jones"),
        Some(Some("baseline")) => (PrefetchStrategy::none(), "baseline"),
        Some(Some(other)) => {
            return Err(AsapError::binding(format!(
                "unknown strategy {other:?}: expected baseline, asap, or aj"
            ))
            .into())
        }
        Some(None) => return Err(AsapError::binding("field \"strategy\" must be a string").into()),
    };

    let engine = match v.get("engine").map(|s| s.as_str()) {
        None | Some(Some("auto")) => ExecEngine::Auto,
        Some(Some("bytecode")) => ExecEngine::Bytecode,
        Some(Some("tree-walk")) => ExecEngine::TreeWalk,
        Some(Some("tier2")) => ExecEngine::Tier2,
        Some(Some(other)) => {
            return Err(AsapError::binding(format!(
                "unknown engine {other:?}: expected auto, bytecode, tree-walk, or tier2"
            ))
            .into())
        }
        Some(None) => return Err(AsapError::binding("field \"engine\" must be a string").into()),
    };

    let deadline_ms = match v.get("deadline_ms") {
        None => ctx.default_deadline_ms,
        Some(n) => n.as_u64().ok_or_else(|| {
            AsapError::binding("field \"deadline_ms\" must be a non-negative integer")
        })?,
    };

    Ok(RunRequest {
        kernel,
        resident,
        matrix_label,
        strategy,
        strategy_label,
        engine,
        deadline_ms,
        exec_bytes: ctx.exec_bytes,
    })
}

/// Render the success body for an executed request. When a live trace
/// context is supplied, the body carries a `trace` id and a `stage_ns`
/// object with the per-stage breakdown so far (the write stage is
/// excluded — the response is rendered before it is written), which is
/// what `asap_loadgen --latency-breakdown` aggregates.
pub fn render_outcome(
    req: &RunRequest,
    outcome: &ServiceOutcome,
    trace: Option<&TraceCtx>,
) -> String {
    let mut w = ObjWriter::new();
    w.str("status", "ok")
        .str("kernel", req.kernel.label())
        .str("matrix", &req.matrix_label)
        .str("strategy", req.strategy_label)
        .str("engine", outcome.engine_used)
        .str("checksum", &format!("{:016x}", outcome.checksum))
        .usize("rows", outcome.rows)
        .usize("cols", outcome.cols)
        .usize("nnz", outcome.nnz)
        .usize("prefetch_ops", outcome.prefetch_ops)
        .u64("compile_ns", outcome.compile_ns)
        .u64("exec_ns", outcome.exec_ns)
        .bool("cache_hit", outcome.cache_hit)
        .bool("store_hit", req.resident.store_hit)
        .bool("degraded", outcome.degraded)
        .str_array("warnings", &outcome.warnings);
    if let Some(t) = trace.filter(|t| t.enabled()) {
        w.str("trace", &t.id().hex());
        let mut stages = String::from("{");
        let mut first = true;
        for st in STAGES {
            if st == Stage::Write {
                continue;
            }
            if !first {
                stages.push(',');
            }
            first = false;
            stages.push_str(&format!("\"{}\":{}", st.label(), t.stage_ns(st)));
        }
        stages.push('}');
        w.raw("stage_ns", &stages);
    }
    w.finish()
}

/// Render an error body: `{"status":..., "error":..., "kind":...}`.
pub fn render_error(status: &str, kind: &str, message: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("status", status)
        .str("kind", kind)
        .str("error", message);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantQuotas, TenantRegistry};
    use asap_matrices::SizeClass;

    struct Fixture {
        catalog: MatrixCatalog,
        store: Arc<MatrixStore>,
        tenant: Arc<TenantState>,
    }

    impl Fixture {
        fn new(store_bytes: u64) -> Fixture {
            Fixture {
                catalog: MatrixCatalog::new(SizeClass::Tiny),
                store: Arc::new(MatrixStore::new(store_bytes)),
                tenant: TenantRegistry::new(TenantQuotas::default()).default_tenant(),
            }
        }

        fn ctx(&self) -> RequestCtx<'_> {
            self.ctx_deadline(1000)
        }

        fn ctx_deadline(&self, default_deadline_ms: u64) -> RequestCtx<'_> {
            RequestCtx {
                catalog: &self.catalog,
                store: &self.store,
                tenant: &self.tenant,
                default_deadline_ms,
                exec_bytes: 0,
                allow_inline: true,
                trace: None,
            }
        }
    }

    #[test]
    fn parses_a_full_request() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let body = br#"{"kernel":"spmm","matrix":"gen:banded:256:4","cols":3,
                        "strategy":"aj","distance":16,"engine":"tree-walk","deadline_ms":250}"#;
        let r = parse_run_request(body, &fx.ctx()).unwrap();
        assert_eq!(r.kernel, ServiceKernel::Spmm { cols: 3 });
        assert_eq!(r.strategy_label, "ainsworth-jones");
        assert_eq!(r.engine, ExecEngine::TreeWalk);
        assert_eq!(r.deadline_ms, 250);
        assert_eq!(r.sparse().dims(), &[256, 256]);
        assert!(!r.resident.store_hit, "first sight is a miss");
    }

    #[test]
    fn second_resolve_is_a_store_hit() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;
        let a = parse_run_request(body, &fx.ctx()).unwrap();
        let b = parse_run_request(body, &fx.ctx()).unwrap();
        assert!(!a.resident.store_hit);
        assert!(b.resident.store_hit);
        assert!(Arc::ptr_eq(a.sparse(), b.sparse()), "same resident tensor");
    }

    #[test]
    fn inline_mtx_is_stored_by_content_digest() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let body = br#"{"kernel":"spmv","mtx":"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.0\n3 2 -1.5\n"}"#;
        let a = parse_run_request(body, &fx.ctx()).unwrap();
        assert!(!a.resident.store_hit);
        let b = parse_run_request(body, &fx.ctx()).unwrap();
        assert!(b.resident.store_hit, "identical bytes skip the re-parse");
        assert_eq!(b.matrix_label, "inline");
    }

    #[test]
    fn brownout_refuses_inline_but_not_named() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let mut ctx = fx.ctx();
        ctx.allow_inline = false;
        let inline = br#"{"kernel":"spmv","mtx":"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.0\n"}"#;
        match parse_run_request(inline, &ctx) {
            Err(RunReject::Brownout) => {}
            other => panic!("expected Brownout, got {:?}", other.err()),
        }
        parse_run_request(br#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#, &ctx)
            .expect("named matrices keep working under brownout");
    }

    #[test]
    fn oversized_matrix_is_413_not_alloc() {
        let fx = Fixture::new(8 * 1024); // 1 KiB per shard
        let body = br#"{"kernel":"spmv","matrix":"gen:er:4096:8"}"#;
        let e = parse_run_request(body, &fx.ctx()).unwrap_err();
        assert_eq!(e.status(), 413);
        assert_eq!(e.kind(), "store");
    }

    #[test]
    fn tenant_quota_exhaustion_is_429() {
        let reg = TenantRegistry::new(TenantQuotas {
            store_bytes: 1024,
            ..TenantQuotas::default()
        });
        let fx = Fixture::new(64 * 1024 * 1024);
        let tenant = reg.resolve(Some("capped")).unwrap();
        let ctx = RequestCtx {
            catalog: &fx.catalog,
            store: &fx.store,
            tenant: &tenant,
            default_deadline_ms: 1000,
            exec_bytes: 0,
            allow_inline: true,
            trace: None,
        };
        let e =
            parse_run_request(br#"{"kernel":"spmv","matrix":"gen:er:2048:8"}"#, &ctx).unwrap_err();
        assert_eq!(e.status(), 429);
        assert_eq!(e.kind(), "store");
    }

    #[test]
    fn disabled_store_still_parses() {
        let fx = Fixture::new(0);
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;
        let r = parse_run_request(body, &fx.ctx()).unwrap();
        assert!(!r.resident.store_hit);
        assert_eq!(fx.store.entries(), 0);
    }

    #[test]
    fn parses_the_tier2_engine() {
        let fx = Fixture::new(0);
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4","engine":"tier2"}"#;
        let r = parse_run_request(body, &fx.ctx()).unwrap();
        assert_eq!(r.engine, ExecEngine::Tier2);
    }

    #[test]
    fn defaults_fill_in() {
        let fx = Fixture::new(0);
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;
        let r = parse_run_request(body, &fx.ctx_deadline(750)).unwrap();
        assert_eq!(r.kernel, ServiceKernel::Spmv);
        assert_eq!(r.strategy_label, "asap");
        assert_eq!(r.engine, ExecEngine::Auto);
        assert_eq!(r.deadline_ms, 750);
    }

    #[test]
    fn rejects_bad_requests_with_typed_errors() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let cases: [(&[u8], &str); 8] = [
            (b"not json", "json"),
            (br#"[1,2]"#, "binding"),
            (br#"{"matrix":"gen:er:256:4"}"#, "binding"),
            (br#"{"kernel":"spgemm","matrix":"gen:er:256:4"}"#, "binding"),
            (br#"{"kernel":"spmv"}"#, "binding"),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","distanse":9}"#,
                "binding",
            ),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","cols":4}"#,
                "binding",
            ),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","engine":"jit"}"#,
                "binding",
            ),
        ];
        for (body, kind) in cases {
            let e = parse_run_request(body, &fx.ctx()).unwrap_err();
            assert_eq!(e.status(), 400, "{:?}", String::from_utf8_lossy(body));
            assert_eq!(
                e.kind(),
                kind,
                "{:?} -> {}",
                String::from_utf8_lossy(body),
                e.message()
            );
        }
    }

    #[test]
    fn outcome_renders_parseable_json_with_hex_checksum() {
        let fx = Fixture::new(64 * 1024 * 1024);
        let req = parse_run_request(
            br#"{"kernel":"spmv","matrix":"gen:banded:256:2"}"#,
            &fx.ctx(),
        )
        .unwrap();
        let cancel = CancelToken::new();
        let outcome = asap_core::serve_request(
            req.kernel,
            req.sparse(),
            &req.strategy,
            req.engine,
            &req.budget(&cancel),
        )
        .unwrap();
        let body = render_outcome(&req, &outcome, None);
        let v = asap_obs::parse_json(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert!(v.get("stage_ns").is_none(), "no trace, no stage breakdown");
        // And with a live trace the breakdown appears.
        let t = TraceCtx::start();
        t.add(Stage::Exec, 1234);
        let traced = render_outcome(&req, &outcome, Some(&t));
        let tv = asap_obs::parse_json(&traced).unwrap();
        assert_eq!(
            tv.get("stage_ns").unwrap().get("exec").unwrap().as_u64(),
            Some(1234)
        );
        assert_eq!(
            tv.get("trace").unwrap().as_str().unwrap(),
            t.id().hex().as_str()
        );
        let hex = v.get("checksum").unwrap().as_str().unwrap();
        assert_eq!(hex.len(), 16);
        assert_eq!(u64::from_str_radix(hex, 16).unwrap(), outcome.checksum);
        assert_eq!(v.get("nnz").unwrap().as_usize(), Some(outcome.nnz));
        assert_eq!(v.get("store_hit").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn zero_deadline_means_unlimited() {
        let fx = Fixture::new(0);
        let req = parse_run_request(
            br#"{"kernel":"spmv","matrix":"gen:er:256:4","deadline_ms":0}"#,
            &fx.ctx(),
        )
        .unwrap();
        let cancel = CancelToken::new();
        // Unlimited budget: the run completes rather than trapping.
        asap_core::serve_request(
            req.kernel,
            req.sparse(),
            &req.strategy,
            req.engine,
            &req.budget(&cancel),
        )
        .unwrap();
    }
}
