//! The wire protocol: `POST /v1/run` bodies in, response JSON out.
//!
//! Requests are strict JSON — unknown fields are rejected (the same
//! contract as the bench result reader: a typo'd `"distanse"` must be a
//! 400, not a silently-defaulted 45). Responses carry the checksum as a
//! fixed-width hex *string*: a u64 does not survive JSON readers that
//! funnel numbers through f64, and the checksum is the bit-exactness
//! witness the whole test story hangs on.

use crate::matrix::MatrixCatalog;
use asap_core::{ExecEngine, PrefetchStrategy, ServiceKernel, ServiceOutcome};
use asap_ir::{AsapError, Budget, CancelToken};
use asap_obs::{Json, ObjWriter};
use asap_tensor::SparseTensor;
use std::sync::Arc;

/// Default SpMM dense-operand width when the request omits `cols`.
pub const DEFAULT_SPMM_COLS: usize = 8;

const KNOWN_FIELDS: [&str; 8] = [
    "kernel",
    "matrix",
    "mtx",
    "cols",
    "strategy",
    "distance",
    "engine",
    "deadline_ms",
];

/// A parsed, resolved, ready-to-execute request.
#[derive(Debug)]
pub struct RunRequest {
    pub kernel: ServiceKernel,
    pub sparse: Arc<SparseTensor>,
    /// What the client called the matrix (echoed in the response).
    pub matrix_label: String,
    pub strategy: PrefetchStrategy,
    pub strategy_label: &'static str,
    pub engine: ExecEngine,
    pub deadline_ms: u64,
}

impl RunRequest {
    /// The execution budget: the per-request deadline plus the client
    /// disconnect token (a `deadline_ms` of 0 means "no deadline").
    pub fn budget(&self, cancel: &CancelToken) -> Budget {
        let b = Budget::unlimited().with_cancel(cancel);
        if self.deadline_ms > 0 {
            b.with_deadline_ms(self.deadline_ms)
        } else {
            b
        }
    }
}

fn want_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, AsapError> {
    v.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| AsapError::binding(format!("field {field:?} must be a string")))
}

fn opt_usize(v: &Json, field: &str) -> Result<Option<usize>, AsapError> {
    match v.get(field) {
        None => Ok(None),
        Some(n) => n.as_usize().map(Some).ok_or_else(|| {
            AsapError::binding(format!("field {field:?} must be a non-negative integer"))
        }),
    }
}

/// Parse and resolve one `/v1/run` body. Every failure is a typed error
/// the worker maps to a 400.
pub fn parse_run_request(
    body: &[u8],
    catalog: &MatrixCatalog,
    default_deadline_ms: u64,
) -> Result<RunRequest, AsapError> {
    let text =
        std::str::from_utf8(body).map_err(|_| AsapError::binding("request body is not UTF-8"))?;
    let v = asap_obs::parse_json(text)?;
    let Json::Obj(fields) = &v else {
        return Err(AsapError::binding("request body must be a JSON object"));
    };
    for (k, _) in fields {
        if !KNOWN_FIELDS.contains(&k.as_str()) {
            return Err(AsapError::binding(format!("unknown field {k:?}")));
        }
    }

    let cols = opt_usize(&v, "cols")?;
    let kernel = match want_str(&v, "kernel")? {
        "spmv" => {
            if cols.is_some() {
                return Err(AsapError::binding("field \"cols\" only applies to spmm"));
            }
            ServiceKernel::Spmv
        }
        "spmm" => ServiceKernel::Spmm {
            cols: cols.unwrap_or(DEFAULT_SPMM_COLS),
        },
        other => {
            return Err(AsapError::binding(format!(
                "unknown kernel {other:?}: expected spmv or spmm"
            )))
        }
    };

    let (sparse, matrix_label) = match (v.get("matrix"), v.get("mtx")) {
        (Some(_), Some(_)) => {
            return Err(AsapError::binding(
                "give either \"matrix\" or inline \"mtx\", not both",
            ))
        }
        (Some(_), None) => {
            let name = want_str(&v, "matrix")?;
            (catalog.resolve(name)?, name.to_string())
        }
        (None, Some(_)) => {
            let text = want_str(&v, "mtx")?;
            (catalog.resolve_inline(text)?, "inline".to_string())
        }
        (None, None) => {
            return Err(AsapError::binding(
                "a matrix is required: \"matrix\" (name or gen: spec) or inline \"mtx\"",
            ))
        }
    };

    let distance = opt_usize(&v, "distance")?.unwrap_or(45);
    let (strategy, strategy_label) = match v.get("strategy").map(|s| s.as_str()) {
        None => (PrefetchStrategy::asap(distance), "asap"),
        Some(Some("asap")) => (PrefetchStrategy::asap(distance), "asap"),
        Some(Some("aj")) => (PrefetchStrategy::aj(distance), "ainsworth-jones"),
        Some(Some("baseline")) => (PrefetchStrategy::none(), "baseline"),
        Some(Some(other)) => {
            return Err(AsapError::binding(format!(
                "unknown strategy {other:?}: expected baseline, asap, or aj"
            )))
        }
        Some(None) => return Err(AsapError::binding("field \"strategy\" must be a string")),
    };

    let engine = match v.get("engine").map(|s| s.as_str()) {
        None | Some(Some("auto")) => ExecEngine::Auto,
        Some(Some("bytecode")) => ExecEngine::Bytecode,
        Some(Some("tree-walk")) => ExecEngine::TreeWalk,
        Some(Some("tier2")) => ExecEngine::Tier2,
        Some(Some(other)) => {
            return Err(AsapError::binding(format!(
                "unknown engine {other:?}: expected auto, bytecode, tree-walk, or tier2"
            )))
        }
        Some(None) => return Err(AsapError::binding("field \"engine\" must be a string")),
    };

    let deadline_ms = match v.get("deadline_ms") {
        None => default_deadline_ms,
        Some(n) => n.as_u64().ok_or_else(|| {
            AsapError::binding("field \"deadline_ms\" must be a non-negative integer")
        })?,
    };

    Ok(RunRequest {
        kernel,
        sparse,
        matrix_label,
        strategy,
        strategy_label,
        engine,
        deadline_ms,
    })
}

/// Render the success body for an executed request.
pub fn render_outcome(req: &RunRequest, outcome: &ServiceOutcome) -> String {
    let mut w = ObjWriter::new();
    w.str("status", "ok")
        .str("kernel", req.kernel.label())
        .str("matrix", &req.matrix_label)
        .str("strategy", req.strategy_label)
        .str("engine", outcome.engine_used)
        .str("checksum", &format!("{:016x}", outcome.checksum))
        .usize("rows", outcome.rows)
        .usize("cols", outcome.cols)
        .usize("nnz", outcome.nnz)
        .usize("prefetch_ops", outcome.prefetch_ops)
        .u64("compile_ns", outcome.compile_ns)
        .u64("exec_ns", outcome.exec_ns)
        .bool("cache_hit", outcome.cache_hit)
        .bool("degraded", outcome.degraded)
        .str_array("warnings", &outcome.warnings);
    w.finish()
}

/// Render an error body: `{"status":..., "error":..., "kind":...}`.
pub fn render_error(status: &str, kind: &str, message: &str) -> String {
    let mut w = ObjWriter::new();
    w.str("status", status)
        .str("kind", kind)
        .str("error", message);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_matrices::SizeClass;

    fn catalog() -> MatrixCatalog {
        MatrixCatalog::new(SizeClass::Tiny)
    }

    #[test]
    fn parses_a_full_request() {
        let body = br#"{"kernel":"spmm","matrix":"gen:banded:256:4","cols":3,
                        "strategy":"aj","distance":16,"engine":"tree-walk","deadline_ms":250}"#;
        let r = parse_run_request(body, &catalog(), 1000).unwrap();
        assert_eq!(r.kernel, ServiceKernel::Spmm { cols: 3 });
        assert_eq!(r.strategy_label, "ainsworth-jones");
        assert_eq!(r.engine, ExecEngine::TreeWalk);
        assert_eq!(r.deadline_ms, 250);
        assert_eq!(r.sparse.dims(), &[256, 256]);
    }

    #[test]
    fn parses_the_tier2_engine() {
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4","engine":"tier2"}"#;
        let r = parse_run_request(body, &catalog(), 1000).unwrap();
        assert_eq!(r.engine, ExecEngine::Tier2);
    }

    #[test]
    fn defaults_fill_in() {
        let body = br#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;
        let r = parse_run_request(body, &catalog(), 750).unwrap();
        assert_eq!(r.kernel, ServiceKernel::Spmv);
        assert_eq!(r.strategy_label, "asap");
        assert_eq!(r.engine, ExecEngine::Auto);
        assert_eq!(r.deadline_ms, 750);
    }

    #[test]
    fn rejects_bad_requests_with_typed_errors() {
        let cat = catalog();
        let cases: [(&[u8], &str); 8] = [
            (b"not json", "json"),
            (br#"[1,2]"#, "binding"),
            (br#"{"matrix":"gen:er:256:4"}"#, "binding"),
            (br#"{"kernel":"spgemm","matrix":"gen:er:256:4"}"#, "binding"),
            (br#"{"kernel":"spmv"}"#, "binding"),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","distanse":9}"#,
                "binding",
            ),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","cols":4}"#,
                "binding",
            ),
            (
                br#"{"kernel":"spmv","matrix":"gen:er:256:4","engine":"jit"}"#,
                "binding",
            ),
        ];
        for (body, kind) in cases {
            let e = parse_run_request(body, &cat, 1000).unwrap_err();
            assert_eq!(e.kind(), kind, "{:?} -> {e}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn outcome_renders_parseable_json_with_hex_checksum() {
        let cat = catalog();
        let req = parse_run_request(
            br#"{"kernel":"spmv","matrix":"gen:banded:256:2"}"#,
            &cat,
            1000,
        )
        .unwrap();
        let cancel = CancelToken::new();
        let outcome = asap_core::serve_request(
            req.kernel,
            &req.sparse,
            &req.strategy,
            req.engine,
            &req.budget(&cancel),
        )
        .unwrap();
        let body = render_outcome(&req, &outcome);
        let v = asap_obs::parse_json(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        let hex = v.get("checksum").unwrap().as_str().unwrap();
        assert_eq!(hex.len(), 16);
        assert_eq!(u64::from_str_radix(hex, 16).unwrap(), outcome.checksum);
        assert_eq!(v.get("nnz").unwrap().as_usize(), Some(outcome.nnz));
    }

    #[test]
    fn zero_deadline_means_unlimited() {
        let cat = catalog();
        let req = parse_run_request(
            br#"{"kernel":"spmv","matrix":"gen:er:256:4","deadline_ms":0}"#,
            &cat,
            1000,
        )
        .unwrap();
        let cancel = CancelToken::new();
        // Unlimited budget: the run completes rather than trapping.
        asap_core::serve_request(
            req.kernel,
            &req.sparse,
            &req.strategy,
            req.engine,
            &req.budget(&cancel),
        )
        .unwrap();
    }
}
