//! HTTP clients for the daemon's own subset.
//!
//! Two tiers, both dependency-free:
//!
//! - [`exchange`]/[`post`]/[`get`] — one blocking request/response
//!   exchange, no policy. The integration tests use these so a test
//!   observes exactly one wire interaction.
//! - [`ResilientClient`] — the self-healing tier the load generator
//!   (and any real client) uses against a chaotic network: capped
//!   jittered exponential-backoff retries that honor `Retry-After`, a
//!   closed/open/half-open circuit breaker exported through the
//!   `asap-obs` metrics registry, and checksum-based validation of
//!   idempotent responses (the served `checksum` field must agree
//!   across repeats of the same request — a corrupted byte stream that
//!   still parses is caught here and retried).

use asap_matrices::Rng64;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
pub struct HttpReply {
    pub status: u16,
    /// Headers as lowercase `name: value` lines (no parsing beyond the
    /// split; callers look up e.g. `retry-after`).
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpReply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// The response's `X-Asap-Trace` id, if the server stamped one —
    /// the correlation handle for `/debug/trace/<id>` lookups.
    pub fn trace(&self) -> Option<&str> {
        self.header("x-asap-trace")
    }
}

/// One request/response exchange. `timeout` bounds connect, send, and
/// receive individually.
pub fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    exchange_with_headers(addr, method, path, &[], body, timeout)
}

/// [`exchange`] with extra request headers (e.g. `X-Asap-Tenant`).
pub fn exchange_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nHost: asap\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        req.push_str(k);
        req.push_str(": ");
        req.push_str(v);
        req.push_str("\r\n");
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// POST a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    exchange(addr, "POST", path, body, timeout)
}

/// GET a path.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpReply> {
    exchange(addr, "GET", path, "", timeout)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let text = std::str::from_utf8(raw).map_err(|_| bad("non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: body.to_string(),
    })
}

// ---------------------------------------------------------------------
// Self-healing tier
// ---------------------------------------------------------------------

/// Retry schedule: up to `max_attempts` tries, sleeping a *full-jitter*
/// backoff between them — uniform in `[0, min(max_backoff,
/// base_backoff << (attempt-1)))`, deterministic per seed. Full jitter
/// (rather than jitter *around* the exponential midpoint) is what
/// actually desynchronizes a fleet: two clients that fail at the same
/// instant draw independent points across the whole window, so their
/// retries cannot re-collide attempt after attempt.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed for the jitter stream (deterministic runs in the harness).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0x5eed,
        }
    }
}

/// Circuit breaker state, exported as the `client.breaker_state` gauge
/// (0 = closed, 1 = open, 2 = half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    Closed,
    /// Fast-fail everything until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is in flight; its
    /// outcome decides Closed vs back to Open.
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// Closed/open/half-open circuit breaker. `threshold` consecutive
/// failures open it; after `cooldown` one probe is admitted, and its
/// result closes or re-opens the circuit.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// May a request proceed? `Err(retry_in)` is a fast-fail with the
    /// remaining cooldown.
    pub fn admit(&self) -> Result<(), Duration> {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Ok(()),
            BreakerState::HalfOpen => {
                // A probe is already in flight; others keep failing fast.
                Err(self.cooldown)
            }
            BreakerState::Open => {
                let elapsed = g.opened_at.map(|t| t.elapsed()).unwrap_or(self.cooldown);
                if elapsed >= self.cooldown {
                    g.state = BreakerState::HalfOpen;
                    asap_obs::gauge_set("client.breaker_state", 2);
                    asap_obs::counter_inc("client.breaker_probes");
                    Ok(())
                } else {
                    Err(self.cooldown - elapsed)
                }
            }
        }
    }

    /// The admitted request succeeded: close the circuit.
    pub fn on_success(&self) {
        let mut g = self.lock();
        g.consecutive_failures = 0;
        if g.state != BreakerState::Closed {
            g.state = BreakerState::Closed;
            asap_obs::gauge_set("client.breaker_state", 0);
        }
    }

    /// The admitted request failed (transport error or 5xx overload).
    pub fn on_failure(&self) {
        let mut g = self.lock();
        g.consecutive_failures += 1;
        let trip = match g.state {
            BreakerState::Closed => g.consecutive_failures >= self.threshold,
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            g.state = BreakerState::Open;
            g.opened_at = Some(Instant::now());
            asap_obs::gauge_set("client.breaker_state", 1);
            asap_obs::counter_inc("client.breaker_opens");
        }
    }
}

/// Why a [`ResilientClient`] request ultimately did not produce a reply.
#[derive(Debug)]
pub enum ClientError {
    /// The circuit is open: failed fast without touching the network.
    CircuitOpen { retry_in: Duration },
    /// Every attempt failed; `last` is the final failure.
    Exhausted { attempts: u32, last: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::CircuitOpen { retry_in } => {
                write!(f, "circuit open; retry in {retry_in:?}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "exhausted {attempts} attempts; last: {last}")
            }
        }
    }
}

/// The full-jitter backoff for one attempt: `unit` (a uniform draw in
/// `[0, 1)`) scaled by the capped exponential ceiling. Pure so the
/// desynchronization property is unit-testable without sleeping.
fn backoff_duration(policy: &RetryPolicy, attempt: u32, unit: f64) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let ceiling = policy
        .base_backoff
        .saturating_mul(1u32 << shift)
        .min(policy.max_backoff);
    ceiling.mul_f64(unit)
}

/// The self-healing client: retries with jittered exponential backoff,
/// honors `Retry-After`, fast-fails through a [`CircuitBreaker`], and
/// cross-checks the served `checksum` field across repeats of the same
/// idempotent request.
///
/// Shared across threads (`&self` methods, internal locks), so a whole
/// load-generator fleet shares one breaker — which is the point: the
/// breaker models the *server's* health, not one connection's.
pub struct ResilientClient {
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    timeout: Duration,
    rng: Mutex<Rng64>,
    /// request fingerprint → the `checksum` field of the last verified
    /// 200 for that request.
    witnessed: Mutex<HashMap<u64, String>>,
}

impl ResilientClient {
    /// Default breaker: 5 consecutive failures open it for 250ms.
    pub fn new(policy: RetryPolicy, timeout: Duration) -> ResilientClient {
        let breaker = CircuitBreaker::new(5, Duration::from_millis(250));
        ResilientClient::with_breaker(policy, breaker, timeout)
    }

    pub fn with_breaker(
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        timeout: Duration,
    ) -> ResilientClient {
        let rng = Mutex::new(Rng64::seed_from_u64(policy.seed));
        ResilientClient {
            policy,
            breaker,
            timeout,
            rng,
            witnessed: Mutex::new(HashMap::new()),
        }
    }

    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    pub fn post(&self, addr: SocketAddr, path: &str, body: &str) -> Result<HttpReply, ClientError> {
        self.request(addr, "POST", path, &[], body)
    }

    /// [`post`](ResilientClient::post) with extra request headers
    /// (e.g. `X-Asap-Tenant` for multi-tenant load generation).
    pub fn post_with_headers(
        &self,
        addr: SocketAddr,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<HttpReply, ClientError> {
        self.request(addr, "POST", path, headers, body)
    }

    pub fn get(&self, addr: SocketAddr, path: &str) -> Result<HttpReply, ClientError> {
        self.request(addr, "GET", path, &[], "")
    }

    fn backoff(&self, attempt: u32) {
        let unit = self.rng.lock().unwrap_or_else(|p| p.into_inner()).gen_f64();
        std::thread::sleep(backoff_duration(&self.policy, attempt, unit));
    }

    /// Sleep for a server-provided `Retry-After` (seconds), clamped to
    /// the policy's backoff cap — the server's hint is advisory, the
    /// client's patience is bounded.
    fn honor_retry_after(&self, reply: &HttpReply) {
        let hinted = reply
            .header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(self.policy.base_backoff);
        std::thread::sleep(hinted.min(self.policy.max_backoff));
    }

    fn request(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<HttpReply, ClientError> {
        let key =
            asap_core::fingerprint64(format!("{method} {path} {headers:?} {body}").as_bytes());
        let mut last = String::new();
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if let Err(retry_in) = self.breaker.admit() {
                asap_obs::counter_inc("client.fast_fails");
                if attempt == self.policy.max_attempts.max(1) {
                    return Err(ClientError::CircuitOpen { retry_in });
                }
                // The circuit says the server is struggling: don't add
                // to the pile, but this request still has attempts
                // left — wait out (a bounded slice of) the cooldown
                // rather than failing work that could succeed.
                std::thread::sleep(retry_in.min(self.policy.max_backoff));
                last = "circuit open".to_string();
                continue;
            }
            if attempt > 1 {
                asap_obs::counter_inc("client.retries");
            }
            match exchange_with_headers(addr, method, path, headers, body, self.timeout) {
                Ok(reply) => match reply.status {
                    200 => {
                        if let Some(mismatch) = self.checksum_mismatch(key, &reply) {
                            // One of the two disagreeing responses was
                            // corrupted in flight; drop the stored
                            // witness and re-ask rather than guess.
                            asap_obs::counter_inc("client.checksum_mismatches");
                            self.breaker.on_failure();
                            last = mismatch;
                            self.backoff(attempt);
                            continue;
                        }
                        self.breaker.on_success();
                        return Ok(reply);
                    }
                    // Explicit pushback: the server is alive and
                    // answering; wait as told and try again. Not a
                    // breaker failure.
                    429 => {
                        self.breaker.on_success();
                        last = "429 overloaded".to_string();
                        self.honor_retry_after(&reply);
                    }
                    // Server-side failure: retryable, counts against
                    // the breaker.
                    500 | 502 | 503 => {
                        self.breaker.on_failure();
                        last = format!("{} {}", reply.status, reply.body);
                        self.backoff(attempt);
                    }
                    // Everything else (4xx, 504 deadline) is a property
                    // of the request: retrying the same bytes cannot
                    // help, and the server answered competently.
                    _ => {
                        self.breaker.on_success();
                        return Ok(reply);
                    }
                },
                Err(e) => {
                    asap_obs::counter_inc("client.transport_errors");
                    self.breaker.on_failure();
                    last = format!("transport: {e}");
                    self.backoff(attempt);
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts.max(1),
            last,
        })
    }

    /// Validate an idempotent 200 against the recorded witness for this
    /// request. Returns a description of the mismatch, if any. Replies
    /// without a `checksum` field (healthz, metrics) are not witnessed.
    fn checksum_mismatch(&self, key: u64, reply: &HttpReply) -> Option<String> {
        let checksum = asap_obs::parse_json(&reply.body).ok().and_then(|v| {
            v.get("checksum")
                .and_then(|c| c.as_str().map(str::to_string))
        })?;
        let mut witnessed = self.witnessed.lock().unwrap_or_else(|p| p.into_inner());
        match witnessed.get(&key) {
            Some(prev) if *prev != checksum => {
                let msg = format!("checksum mismatch: witnessed {prev}, got {checksum}");
                witnessed.remove(&key);
                Some(msg)
            }
            _ => {
                witnessed.insert(key, checksum);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let b = CircuitBreaker::new(3, Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold trips");
        assert!(b.admit().is_err(), "open fast-fails");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit().is_ok(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit().is_err(), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed, "probe success closes");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit().is_ok());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(3, Duration::from_millis(10));
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "streak broke; threshold needs consecutive failures"
        );
    }

    #[test]
    fn full_jitter_desynchronizes_two_clients() {
        let policy = |seed| RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
            seed,
        };
        let (pa, pb) = (policy(1), policy(2));
        // Two clients failing in lockstep draw their backoff schedules
        // from independent jitter streams.
        let mut rng_a = Rng64::seed_from_u64(pa.seed);
        let mut rng_b = Rng64::seed_from_u64(pb.seed);
        let mut distinct = 0;
        let mut below_half = 0;
        for attempt in 1..=pa.max_attempts {
            let ceiling = Duration::from_millis(10)
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(Duration::from_millis(400));
            let a = backoff_duration(&pa, attempt, rng_a.gen_f64());
            let b = backoff_duration(&pb, attempt, rng_b.gen_f64());
            assert!(a < ceiling && b < ceiling, "jitter stays in [0, ceiling)");
            if a != b {
                distinct += 1;
            }
            // Full jitter spans the whole window; the old
            // [0.5, 1.5)-scaled scheme never slept below half the
            // ceiling, which is exactly the region that breaks herds.
            if a < ceiling / 2 {
                below_half += 1;
            }
            if b < ceiling / 2 {
                below_half += 1;
            }
        }
        assert!(
            distinct >= 6,
            "schedules must diverge ({distinct}/8 attempts differ)"
        );
        assert!(
            below_half > 0,
            "full jitter must sometimes draw below half the ceiling"
        );
    }

    #[test]
    fn exhausted_client_reports_the_last_failure() {
        // Nothing listens on this address (bound then dropped), so
        // every attempt is a transport error.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = ResilientClient::new(
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                seed: 1,
            },
            Duration::from_millis(100),
        );
        match client.get(addr, "/healthz") {
            Err(ClientError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 2);
                assert!(last.starts_with("transport:"), "{last}");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }
}
