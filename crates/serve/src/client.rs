//! A tiny blocking HTTP client for the daemon's own subset — the load
//! generator and the integration tests talk to the server with this,
//! so the whole loop (client framing included) stays dependency-free.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

#[derive(Debug)]
pub struct HttpReply {
    pub status: u16,
    /// Headers as lowercase `name: value` lines (no parsing beyond the
    /// split; callers look up e.g. `retry-after`).
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpReply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }
}

/// One request/response exchange. `timeout` bounds connect, send, and
/// receive individually.
pub fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: asap\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// POST a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    exchange(addr, "POST", path, body, timeout)
}

/// GET a path.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpReply> {
    exchange(addr, "GET", path, "", timeout)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let text = std::str::from_utf8(raw).map_err(|_| bad("non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: body.to_string(),
    })
}
