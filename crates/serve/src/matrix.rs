//! Resolving a request's matrix reference to a [`SparseTensor`].
//!
//! Three source forms, mirroring `asap_cli`:
//!
//! - a collection name (`"GAP/kron19"`) from the synthetic collection at
//!   the server's configured [`SizeClass`];
//! - a generator spec (`"gen:er:4096:8"` — same grammar as the CLI's
//!   `--gen`, with size caps so a request cannot allocate unboundedly);
//! - inline MatrixMarket text in the request body (`"mtx"` field).
//!
//! Residency policy lives one layer up, in [`crate::store`]: when the
//! resident store is enabled the catalog is only the *builder*
//! ([`MatrixCatalog::build`] / [`MatrixCatalog::resolve_inline`]) and
//! the store decides what stays hot, under byte ceilings and tenant
//! quotas — including inline payloads, which are keyed by content
//! digest so a client cannot pin unbounded server memory. With the
//! store disabled, [`MatrixCatalog::resolve`] falls back to this
//! module's own unbounded-tenant-blind cache (the pre-tenancy
//! behaviour, kept for embedded and test use).
//! Binary (pattern) matrices get the CLI's deterministic devaluation so
//! a served result is comparable to `asap_cli --gen` on the same spec.

use asap_ir::AsapError;
use asap_matrices::{gen, read_matrix_market, synthetic_collection, SizeClass, Triplets};
use asap_tensor::{Format, SparseTensor};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Cap on resolved-matrix cache entries. The full collection is ~20
/// specs; the headroom is for generator variety.
const CATALOG_CAPACITY: usize = 64;

/// Generator size caps: a request may make the server *work*, not make
/// it allocate without bound.
const MAX_GEN_N: usize = 1 << 21;
const MAX_GEN_SCALE: u32 = 20;
const MAX_GEN_DEG: usize = 64;
const MAX_GEN_BAND: usize = 4096;

pub struct MatrixCatalog {
    size: SizeClass,
    cache: Mutex<HashMap<String, Arc<SparseTensor>>>,
}

impl MatrixCatalog {
    pub fn new(size: SizeClass) -> MatrixCatalog {
        MatrixCatalog {
            size,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Lock the catalog cache, recovering from poisoning the same way
    /// `asap-core::cache` does: a panic mid-insert may have left the
    /// map in an arbitrary state, so throw the entries away (they are
    /// reproducible from their specs), count the recovery, and clear
    /// the flag so later lockers stop paying the poison branch.
    fn lock_cache(&self) -> MutexGuard<'_, HashMap<String, Arc<SparseTensor>>> {
        match self.cache.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.clear();
                asap_obs::counter_inc("serve.catalog.poison_recoveries");
                self.cache.clear_poison();
                g
            }
        }
    }

    /// Resolve a `matrix` reference (name or `gen:` spec) to a shared
    /// CSR tensor, building and caching it on first use.
    pub fn resolve(&self, reference: &str) -> Result<Arc<SparseTensor>, AsapError> {
        if let Some(t) = self.lock_cache().get(reference) {
            return Ok(t.clone());
        }
        let sparse = self.build(reference)?;
        let mut cache = self.lock_cache();
        if cache.len() >= CATALOG_CAPACITY {
            // Rare (needs 64 distinct generator specs); dropping the lot
            // costs regeneration, never correctness.
            cache.clear();
        }
        cache.insert(reference.to_string(), sparse.clone());
        Ok(sparse)
    }

    /// Build a `matrix` reference without touching this catalog's cache
    /// — the resident store's path, where *it* owns residency.
    pub fn build(&self, reference: &str) -> Result<Arc<SparseTensor>, AsapError> {
        let tri = if let Some(spec) = reference.strip_prefix("gen:") {
            parse_gen(spec)?
        } else {
            let spec = synthetic_collection(self.size)
                .into_iter()
                .find(|s| s.name == reference)
                .ok_or_else(|| {
                    AsapError::binding(format!(
                        "unknown matrix {reference:?}: expected a collection name or gen:KIND:ARGS"
                    ))
                })?;
            spec.materialize()
        };
        Ok(Arc::new(to_csr(tri)?))
    }

    /// Build a tensor from inline MatrixMarket text. Uncached.
    pub fn resolve_inline(&self, mtx: &str) -> Result<Arc<SparseTensor>, AsapError> {
        let tri = read_matrix_market(std::io::Cursor::new(mtx.as_bytes()))
            .map_err(|e| AsapError::binding(format!("inline matrix: {e}")))?;
        Ok(Arc::new(to_csr(tri)?))
    }

    #[cfg(test)]
    fn cached_len(&self) -> usize {
        self.lock_cache().len()
    }
}

fn to_csr(mut tri: Triplets) -> Result<SparseTensor, AsapError> {
    devalue_binary(&mut tri);
    let coo = tri.try_to_coo_f64()?;
    SparseTensor::try_from_coo(&coo, Format::csr())
}

/// Deterministic non-trivial values for pattern matrices — the same
/// scheme as `asap_cli`, so checksums line up across entry points.
fn devalue_binary(tri: &mut Triplets) {
    if tri.binary {
        for (i, v) in tri.vals.iter_mut().enumerate() {
            *v = 0.25 + (i % 7) as f64 * 0.1;
        }
        tri.binary = false;
    }
}

/// Parse `KIND:ARGS` (the part after `gen:`): `rmat:SCALE:DEG`,
/// `er:N:DEG`, `road:N`, `banded:N:BAND`, `powerlaw:N:DEG`. Typed
/// errors instead of the CLI's usage-and-exit.
fn parse_gen(spec: &str) -> Result<Triplets, AsapError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let field = |i: usize| -> Result<usize, AsapError> {
        parts.get(i).and_then(|s| s.parse().ok()).ok_or_else(|| {
            AsapError::binding(format!(
                "generator spec {spec:?}: field {i} missing or not a number"
            ))
        })
    };
    let capped = |i: usize, cap: usize, what: &str| -> Result<usize, AsapError> {
        let v = field(i)?;
        if v == 0 || v > cap {
            return Err(AsapError::binding(format!(
                "generator spec {spec:?}: {what} {v} outside 1..={cap}"
            )));
        }
        Ok(v)
    };
    let tri = match parts.first().copied() {
        Some("rmat") => {
            let scale = capped(1, MAX_GEN_SCALE as usize, "scale")? as u32;
            gen::rmat(scale, capped(2, MAX_GEN_DEG, "degree")?, 1)
        }
        Some("er") => gen::erdos_renyi(
            capped(1, MAX_GEN_N, "size")?,
            capped(2, MAX_GEN_DEG, "degree")?,
            1,
        ),
        Some("road") => gen::road_network(capped(1, MAX_GEN_N, "size")?, 1),
        Some("banded") => gen::banded(
            capped(1, MAX_GEN_N, "size")?,
            capped(2, MAX_GEN_BAND, "bandwidth")?,
            1,
        ),
        Some("powerlaw") => gen::power_law(
            capped(1, MAX_GEN_N, "size")?,
            capped(2, MAX_GEN_DEG, "degree")?,
            1.0,
            1,
        ),
        other => {
            return Err(AsapError::binding(format!(
                "unknown generator {other:?}: expected rmat|er|road|banded|powerlaw"
            )))
        }
    };
    Ok(tri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_specs_resolve_and_cache() {
        let cat = MatrixCatalog::new(SizeClass::Tiny);
        let a = cat.resolve("gen:er:512:4").unwrap();
        let b = cat.resolve("gen:er:512:4").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second resolve is the cached Arc");
        assert_eq!(a.dims(), &[512, 512]);
        assert_eq!(cat.cached_len(), 1);
    }

    #[test]
    fn collection_names_resolve() {
        let cat = MatrixCatalog::new(SizeClass::Tiny);
        let name = synthetic_collection(SizeClass::Tiny)[0].name.clone();
        let t = cat.resolve(&name).unwrap();
        assert!(t.nnz() > 0);
    }

    #[test]
    fn bad_references_are_typed_errors() {
        let cat = MatrixCatalog::new(SizeClass::Tiny);
        for bad in [
            "no/such-matrix",
            "gen:er",
            "gen:er:0:4",
            "gen:er:abc:4",
            "gen:warp:9",
            "gen:rmat:63:4",
            &format!("gen:er:{}:4", MAX_GEN_N + 1),
        ] {
            let e = cat.resolve(bad).unwrap_err();
            assert_eq!(e.kind(), "binding", "{bad} -> {e}");
        }
        assert_eq!(cat.cached_len(), 0, "failures are not cached");
    }

    #[test]
    fn poisoned_cache_recovers_by_clearing() {
        let cat = Arc::new(MatrixCatalog::new(SizeClass::Tiny));
        cat.resolve("gen:er:128:2").unwrap();
        assert_eq!(cat.cached_len(), 1);
        // Poison the cache mutex: panic while holding the guard.
        let poisoner = cat.clone();
        let _ = std::thread::spawn(move || {
            let _g = poisoner.cache.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(cat.cache.is_poisoned());
        let before = asap_obs::counter_get("serve.catalog.poison_recoveries");
        // Recovery: entries discarded, flag cleared, recovery counted,
        // and the catalog keeps working.
        assert_eq!(cat.cached_len(), 0);
        assert!(!cat.cache.is_poisoned());
        assert_eq!(
            asap_obs::counter_get("serve.catalog.poison_recoveries"),
            before + 1
        );
        cat.resolve("gen:er:128:2").unwrap();
        assert_eq!(cat.cached_len(), 1);
    }

    #[test]
    fn inline_mtx_resolves_but_is_not_cached() {
        let cat = MatrixCatalog::new(SizeClass::Tiny);
        let mtx = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.0\n3 2 -1.5\n";
        let t = cat.resolve_inline(mtx).unwrap();
        assert_eq!(t.dims(), &[3, 3]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(cat.cached_len(), 0);
        assert_eq!(
            cat.resolve_inline("not a matrix").unwrap_err().kind(),
            "binding"
        );
    }
}
