//! The resident matrix store: bounded, tenant-accounted, LRU-by-bytes.
//!
//! ASaP's prefetching (and tier-2's specialization) only pay off when
//! the matrix is already resident — re-parsing a MatrixMarket body or
//! re-running a generator per request wastes the very memory bandwidth
//! the kernels are tuned to saturate. The store keeps resolved
//! [`SparseTensor`]s hot across requests under three hard rules:
//!
//! 1. **Byte ceiling.** Total resident bytes never exceed the
//!    configured ceiling. Admission is governed by an
//!    [`asap_ir::Budget`] with a byte limit: an entry larger than one
//!    shard's share is a typed [`StoreError::Oversized`] (HTTP 413),
//!    never an allocation attempt.
//! 2. **Tenant quotas.** Every resident byte is charged to the
//!    inserting tenant ([`TenantState::try_charge_bytes`]); over-quota
//!    inserts are [`StoreError::TenantQuota`] (HTTP 429). Eviction
//!    refunds the owner.
//! 3. **Pinned-while-running.** A request executing against an entry
//!    holds a pin ([`Resident`]); pinned entries are never evicted, so
//!    eviction can only reclaim memory that is genuinely idle. If every
//!    entry in the target shard is pinned, admission fails closed with
//!    [`StoreError::Busy`] (HTTP 429) rather than over-committing.
//!
//! Shards are independently locked and poison-recovering in the same
//! idiom as the compile cache: a panic mid-mutation discards that
//! shard's (reproducible) entries, refunds their tenants, counts the
//! recovery, and clears the flag.
//!
//! A store built with `total_bytes == 0` is disabled: [`admit`]
//! passes tensors through unpinned and every request pays the
//! re-parse/re-generate path — the A/B contrast the tenancy benchmark
//! measures.
//!
//! [`admit`]: MatrixStore::admit

use crate::tenant::TenantState;
use asap_ir::Budget;
use asap_tensor::SparseTensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Fixed shard count: enough to keep worker threads off each other's
/// locks, small enough that per-shard ceilings stay useful.
pub const STORE_SHARDS: usize = 8;

/// Typed admission failures; each maps to one HTTP status.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Entry is larger than a shard's byte share (→ 413). It could
    /// never become resident, at any load.
    Oversized { bytes: u64, limit: u64 },
    /// The inserting tenant is out of resident-byte quota (→ 429).
    TenantQuota { bytes: u64, quota: u64 },
    /// Every candidate eviction victim is pinned by a running request
    /// (→ 429): back off and retry.
    Busy,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Oversized { bytes, limit } => write!(
                f,
                "matrix of {bytes} bytes exceeds the store's per-entry limit of {limit} bytes"
            ),
            StoreError::TenantQuota { bytes, quota } => write!(
                f,
                "admitting {bytes} bytes would exceed the tenant's resident quota of {quota} bytes"
            ),
            StoreError::Busy => {
                write!(f, "store shard fully pinned by running requests; retry")
            }
        }
    }
}

struct Entry {
    tensor: Arc<SparseTensor>,
    bytes: u64,
    pins: u32,
    last_used: u64,
    tenant: Arc<TenantState>,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    bytes: u64,
}

/// A tensor handed out by the store. While this value lives, the backing
/// entry (if any) is pinned and cannot be evicted; dropping it unpins.
pub struct Resident {
    pub tensor: Arc<SparseTensor>,
    /// True when the tensor came out of the store rather than being
    /// built for this request.
    pub store_hit: bool,
    pub bytes: u64,
    /// Held solely for its `Drop` (unpin) side effect.
    #[allow(dead_code)]
    pin: Option<Pin>,
}

impl std::fmt::Debug for Resident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resident")
            .field("store_hit", &self.store_hit)
            .field("bytes", &self.bytes)
            .field("pinned", &self.pin.is_some())
            .finish_non_exhaustive()
    }
}

impl Resident {
    /// Wrap a tensor that never went through the store (disabled store,
    /// embedded/test use): no pin, no residency, bytes from footprint.
    pub fn unmanaged(tensor: Arc<SparseTensor>) -> Resident {
        let bytes = tensor.footprint_bytes() as u64;
        Resident {
            tensor,
            store_hit: false,
            bytes,
            pin: None,
        }
    }
}

struct Pin {
    store: Arc<MatrixStore>,
    shard: usize,
    key: String,
}

impl Drop for Pin {
    fn drop(&mut self) {
        self.store.unpin(self.shard, &self.key);
    }
}

pub struct MatrixStore {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte ceiling (total ceiling / shard count).
    shard_ceiling: u64,
    /// Admission governor: `check_bytes` against the per-entry limit
    /// rides the same typed machinery as execution budgets.
    admission: Budget,
    tick: AtomicU64,
}

impl MatrixStore {
    /// `total_bytes == 0` disables residency entirely.
    pub fn new(total_bytes: u64) -> MatrixStore {
        let shard_ceiling = total_bytes / STORE_SHARDS as u64;
        MatrixStore {
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_ceiling,
            admission: Budget::unlimited().with_bytes(shard_ceiling),
            tick: AtomicU64::new(0),
        }
    }

    pub fn enabled(&self) -> bool {
        self.shard_ceiling > 0
    }

    fn shard_of(&self, key: &str) -> usize {
        (asap_core::fingerprint64(key.as_bytes()) % STORE_SHARDS as u64) as usize
    }

    /// Lock one shard, recovering from poisoning by discarding its
    /// entries (reproducible from their sources), refunding the owning
    /// tenants, and clearing the flag — the compile-cache idiom.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                for e in g.map.values() {
                    e.tenant.uncharge_bytes(e.bytes);
                }
                g.map.clear();
                g.bytes = 0;
                asap_obs::counter_inc("serve.store.poison_recoveries");
                self.shards[idx].clear_poison();
                g
            }
        }
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a resident tensor, pinning it for the caller.
    pub fn lookup(self: &Arc<Self>, key: &str) -> Option<Resident> {
        if !self.enabled() {
            return None;
        }
        let idx = self.shard_of(key);
        let tick = self.touch();
        let mut g = self.lock_shard(idx);
        let e = g.map.get_mut(key)?;
        e.last_used = tick;
        e.pins += 1;
        asap_obs::counter_inc("serve.store.hits");
        Some(Resident {
            tensor: e.tensor.clone(),
            store_hit: true,
            bytes: e.bytes,
            pin: Some(Pin {
                store: self.clone(),
                shard: idx,
                key: key.to_string(),
            }),
        })
    }

    /// Admit a freshly-built tensor under `key`, charged to `tenant`.
    /// On success the entry is resident and pinned for the caller.
    ///
    /// With the store disabled this is a pass-through: the tensor is
    /// returned unpinned and nothing becomes resident.
    pub fn admit(
        self: &Arc<Self>,
        key: &str,
        tensor: Arc<SparseTensor>,
        tenant: &Arc<TenantState>,
    ) -> Result<Resident, StoreError> {
        let bytes = tensor.footprint_bytes() as u64;
        if !self.enabled() {
            asap_obs::counter_inc("serve.store.misses");
            return Ok(Resident {
                tensor,
                store_hit: false,
                bytes,
                pin: None,
            });
        }
        if self.admission.check_bytes(bytes).is_err() {
            asap_obs::counter_inc("serve.store.rejected_oversized");
            return Err(StoreError::Oversized {
                bytes,
                limit: self.shard_ceiling,
            });
        }
        if let Err(quota) = tenant.try_charge_bytes(bytes) {
            asap_obs::counter_inc("serve.store.rejected_quota");
            return Err(StoreError::TenantQuota { bytes, quota });
        }
        let idx = self.shard_of(key);
        let tick = self.touch();
        let mut g = self.lock_shard(idx);
        if let Some(e) = g.map.get_mut(key) {
            // Raced with another worker building the same matrix: keep
            // the incumbent, refund our charge, pin the winner.
            tenant.uncharge_bytes(bytes);
            e.last_used = tick;
            e.pins += 1;
            asap_obs::counter_inc("serve.store.hits");
            return Ok(Resident {
                tensor: e.tensor.clone(),
                store_hit: true,
                bytes: e.bytes,
                pin: Some(Pin {
                    store: self.clone(),
                    shard: idx,
                    key: key.to_string(),
                }),
            });
        }
        // Evict idle LRU entries until the newcomer fits the ceiling.
        while g.bytes.saturating_add(bytes) > self.shard_ceiling {
            let victim = g
                .map
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(vk) = victim else {
                tenant.uncharge_bytes(bytes);
                asap_obs::counter_inc("serve.store.rejected_busy");
                return Err(StoreError::Busy);
            };
            let e = g.map.remove(&vk).expect("victim key just observed");
            g.bytes -= e.bytes;
            e.tenant.uncharge_bytes(e.bytes);
            asap_obs::counter_inc("serve.store.evictions");
        }
        g.bytes += bytes;
        g.map.insert(
            key.to_string(),
            Entry {
                tensor: tensor.clone(),
                bytes,
                pins: 1,
                last_used: tick,
                tenant: tenant.clone(),
            },
        );
        asap_obs::counter_inc("serve.store.misses");
        // Release the shard before publishing: the occupancy gauges sum
        // every shard, and this lock is not reentrant.
        drop(g);
        self.publish_gauges();
        Ok(Resident {
            tensor,
            store_hit: false,
            bytes,
            pin: Some(Pin {
                store: self.clone(),
                shard: idx,
                key: key.to_string(),
            }),
        })
    }

    fn unpin(&self, idx: usize, key: &str) {
        let mut g = self.lock_shard(idx);
        // The entry may be gone: poison recovery clears shards even
        // under pins (the Arc in the Resident keeps execution safe).
        if let Some(e) = g.map.get_mut(key) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Total resident bytes across shards.
    pub fn bytes(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).bytes)
            .sum()
    }

    /// Total resident entries across shards.
    pub fn entries(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).map.len())
            .sum()
    }

    /// The hard global ceiling (shard ceiling × shard count).
    pub fn ceiling(&self) -> u64 {
        self.shard_ceiling * self.shards.len() as u64
    }

    fn publish_gauges(&self) {
        asap_obs::gauge_set("serve.store.bytes", self.bytes() as i64);
        asap_obs::gauge_set("serve.store.entries", self.entries() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantQuotas, TenantRegistry};
    use asap_matrices::gen;
    use asap_tensor::Format;

    fn tensor(n: usize, deg: usize) -> Arc<SparseTensor> {
        let tri = gen::erdos_renyi(n, deg, 1);
        let coo = tri.try_to_coo_f64().unwrap();
        Arc::new(SparseTensor::try_from_coo(&coo, Format::csr()).unwrap())
    }

    fn registry() -> TenantRegistry {
        TenantRegistry::new(TenantQuotas {
            store_bytes: 0, // unlimited; quota behaviour has its own test
            ..TenantQuotas::default()
        })
    }

    #[test]
    fn lookup_miss_then_admit_then_hit() {
        let store = Arc::new(MatrixStore::new(64 * 1024 * 1024));
        let reg = registry();
        let t = reg.default_tenant();
        assert!(store.lookup("ref:a").is_none());
        let r = store.admit("ref:a", tensor(256, 4), &t).unwrap();
        assert!(!r.store_hit);
        drop(r);
        let r2 = store.lookup("ref:a").expect("resident after admit");
        assert!(r2.store_hit);
        assert_eq!(store.entries(), 1);
        assert!(store.bytes() > 0);
    }

    #[test]
    fn ceiling_is_never_exceeded_and_lru_evicts_idle() {
        let one = tensor(256, 4).footprint_bytes() as u64;
        // Room for ~3 entries per shard; everything hashes where it
        // hashes, so just assert the global invariant under churn.
        let store = Arc::new(MatrixStore::new(one * 3 * STORE_SHARDS as u64));
        let reg = registry();
        let t = reg.default_tenant();
        for i in 0..64 {
            let r = store.admit(&format!("ref:m{i}"), tensor(256, 4), &t);
            // Unpinned immediately; later inserts may evict it.
            drop(r);
            assert!(
                store.bytes() <= store.ceiling(),
                "resident {} > ceiling {}",
                store.bytes(),
                store.ceiling()
            );
        }
        assert!(
            asap_obs::counter_get("serve.store.evictions") > 0,
            "churn at 64 inserts into a ~24-entry store must evict"
        );
    }

    #[test]
    fn oversized_is_typed_not_allocated() {
        let store = Arc::new(MatrixStore::new(8 * 1024)); // 1 KiB/shard
        let reg = registry();
        let t = reg.default_tenant();
        match store.admit("ref:big", tensor(4096, 8), &t) {
            Err(StoreError::Oversized { limit, .. }) => assert_eq!(limit, 1024),
            other => panic!("expected Oversized, got {:?}", other.map(|r| r.bytes)),
        }
        assert_eq!(store.entries(), 0);
        assert_eq!(
            t.resident_bytes.load(Ordering::Relaxed),
            0,
            "no charge leaks"
        );
    }

    #[test]
    fn tenant_quota_rejects_and_refunds() {
        let small = tensor(256, 4).footprint_bytes() as u64;
        let reg = TenantRegistry::new(TenantQuotas {
            store_bytes: small + small / 2,
            ..TenantQuotas::default()
        });
        let t = reg.resolve(Some("capped")).unwrap();
        let store = Arc::new(MatrixStore::new(64 * 1024 * 1024));
        let _held = store.admit("ref:first", tensor(256, 4), &t).unwrap();
        match store.admit("ref:second", tensor(256, 4), &t) {
            Err(StoreError::TenantQuota { quota, .. }) => {
                assert_eq!(quota, small + small / 2)
            }
            other => panic!("expected TenantQuota, got {:?}", other.map(|r| r.bytes)),
        }
        assert_eq!(
            t.resident_bytes.load(Ordering::Relaxed),
            small,
            "failed insert refunded its charge"
        );
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let one = tensor(256, 4).footprint_bytes() as u64;
        let store = Arc::new(MatrixStore::new(one * STORE_SHARDS as u64)); // 1 entry/shard
        let reg = registry();
        let t = reg.default_tenant();
        let pinned = store.admit("ref:pinned", tensor(256, 4), &t).unwrap();
        // Every further insert that lands on the same shard must fail
        // Busy (its only victim is pinned), never evict the pinned one.
        let mut busied = 0;
        for i in 0..32 {
            match store.admit(&format!("ref:n{i}"), tensor(256, 4), &t) {
                Err(StoreError::Busy) => busied += 1,
                Ok(r) => drop(r),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            busied > 0,
            "32 keys over 8 shards must collide with the pin"
        );
        assert!(
            store.lookup("ref:pinned").is_some(),
            "pin protected the entry"
        );
        drop(pinned);
        assert!(store.bytes() <= store.ceiling());
    }

    #[test]
    fn drop_of_resident_unpins() {
        let one = tensor(256, 4).footprint_bytes() as u64;
        let store = Arc::new(MatrixStore::new(one * STORE_SHARDS as u64));
        let reg = registry();
        let t = reg.default_tenant();
        let r = store.admit("ref:a", tensor(256, 4), &t).unwrap();
        drop(r);
        // After unpin, an insert hashing to the same shard can evict it.
        for i in 0..32 {
            let _ = store.admit(&format!("ref:x{i}"), tensor(256, 4), &t);
        }
        assert!(store.bytes() <= store.ceiling());
    }

    #[test]
    fn disabled_store_passes_through() {
        let store = Arc::new(MatrixStore::new(0));
        let reg = registry();
        let t = reg.default_tenant();
        assert!(!store.enabled());
        let r = store.admit("ref:a", tensor(128, 2), &t).unwrap();
        assert!(!r.store_hit);
        assert!(store.lookup("ref:a").is_none(), "nothing becomes resident");
        assert_eq!(store.entries(), 0);
        drop(r);
    }

    #[test]
    fn poisoned_shard_recovers_and_refunds() {
        let store = Arc::new(MatrixStore::new(64 * 1024 * 1024));
        let reg = registry();
        let t = reg.default_tenant();
        drop(store.admit("ref:a", tensor(256, 4), &t).unwrap());
        let charged = t.resident_bytes.load(Ordering::Relaxed);
        assert!(charged > 0);
        let idx = store.shard_of("ref:a");
        let poisoner = store.clone();
        let _ = std::thread::spawn(move || {
            let _g = poisoner.shards[idx].lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(store.shards[idx].is_poisoned());
        let before = asap_obs::counter_get("serve.store.poison_recoveries");
        assert!(store.lookup("ref:a").is_none(), "entries discarded");
        assert!(!store.shards[idx].is_poisoned());
        assert_eq!(
            asap_obs::counter_get("serve.store.poison_recoveries"),
            before + 1
        );
        assert_eq!(
            t.resident_bytes.load(Ordering::Relaxed),
            0,
            "recovery refunded the cleared entry"
        );
        drop(store.admit("ref:a", tensor(256, 4), &t).unwrap());
        assert!(store.lookup("ref:a").is_some(), "shard keeps working");
    }
}
