//! Single-flight coalescing of concurrent same-kernel compiles.
//!
//! The sharded cache already deduplicates *sequential* compiles, but two
//! workers racing on a cold key would both run the compiler (the cache
//! deliberately compiles outside its locks). Under a request burst that
//! is N-1 wasted compiles of the same kernel at the worst moment — cold
//! start. The batcher closes that gap: the first requester of a key
//! becomes the leader and compiles; every concurrent requester of the
//! same key parks on the flight and receives a clone of the leader's
//! result.
//!
//! Determinism contract (asserted by `tests/serve.rs`): among N
//! concurrent requests for one cold kernel, exactly one response reports
//! `cache_hit: false` — the leader's. Followers were served by the
//! coalesced compile (counted under `serve.coalesced`), and report
//! `cache_hit: true` because they did not pay for a compile.

use asap_core::{compile_for, CompiledKernel, PrefetchStrategy, ServiceKernel};
use asap_ir::AsapError;
use asap_tensor::SparseTensor;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

type CompileResult = Result<(CompiledKernel, bool, u64), AsapError>;

#[derive(Default)]
struct Flight {
    slot: Mutex<Option<CompileResult>>,
    done: Condvar,
}

#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl SingleFlight {
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Compile the kernel for `sparse` under `strategy`, coalescing with
    /// any concurrent identical compile. Returns `(kernel, cache_hit,
    /// compile_ns)` with followers reporting `cache_hit = true`.
    pub fn compile(
        &self,
        kernel: ServiceKernel,
        sparse: &SparseTensor,
        strategy: &PrefetchStrategy,
    ) -> CompileResult {
        // Same identity the cache keys on: the kernel never depends on
        // matrix *contents*, only format and width.
        let key = format!(
            "{:?}|{:?}|{:?}|{strategy:?}",
            kernel.spec(),
            sparse.format(),
            sparse.index_width()
        );
        let (flight, leader) = {
            let mut g = self.flights.lock().unwrap_or_else(|p| p.into_inner());
            match g.get(&key) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(Flight::default());
                    g.insert(key.clone(), f.clone());
                    (f, true)
                }
            }
        };

        if leader {
            let result = compile_for(kernel, sparse, strategy);
            {
                let mut slot = flight.slot.lock().unwrap_or_else(|p| p.into_inner());
                *slot = Some(result.clone());
            }
            flight.done.notify_all();
            // Retire the flight so later requests go straight to the
            // (now warm) cache instead of parking here.
            self.flights
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&key);
            result
        } else {
            asap_obs::counter_inc("serve.coalesced");
            let mut slot = flight.slot.lock().unwrap_or_else(|p| p.into_inner());
            while slot.is_none() {
                slot = flight.done.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            match slot.as_ref().unwrap() {
                // A follower's compile cost is the wait, which it did not
                // spend compiling: report a hit with zero compile time.
                Ok((ck, _, _)) => Ok((ck.clone(), true, 0)),
                Err(e) => Err(e.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::ExecEngine;
    use asap_ir::Budget;
    use asap_tensor::{CooTensor, Format, Values};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn diagonal(n: usize) -> SparseTensor {
        let coords: Vec<usize> = (0..n).flat_map(|i| [i, i]).collect();
        let vals = Values::F64((0..n).map(|i| 1.0 + i as f64).collect());
        let coo = CooTensor::try_new(vec![n, n], coords, vals).unwrap();
        SparseTensor::try_from_coo(&coo, Format::csr()).unwrap()
    }

    #[test]
    fn concurrent_cold_compiles_coalesce_to_one_miss() {
        let sf = Arc::new(SingleFlight::new());
        let sparse = Arc::new(diagonal(16));
        // A distance no other test uses keeps this key cold in the
        // process-global cache regardless of test interleaving.
        let strategy = PrefetchStrategy::asap(7919);
        let misses = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let (sf, sparse, misses) = (sf.clone(), sparse.clone(), misses.clone());
                std::thread::spawn(move || {
                    let (ck, hit, _) = sf.compile(ServiceKernel::Spmv, &sparse, &strategy).unwrap();
                    if !hit {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                    ck.prefetch_ops
                })
            })
            .collect();
        let ops: Vec<usize> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert!(
            misses.load(Ordering::Relaxed) <= 1,
            "at most the leader misses"
        );
        assert!(
            ops.windows(2).all(|w| w[0] == w[1]),
            "all got the same kernel"
        );
        // And the coalesced kernel actually runs.
        let out = asap_core::execute_request(
            &sf.compile(ServiceKernel::Spmv, &sparse, &strategy)
                .unwrap()
                .0,
            ServiceKernel::Spmv,
            &sparse,
            ExecEngine::Auto,
            &Budget::unlimited(),
            true,
            0,
        )
        .unwrap();
        assert_eq!(out.rows, 16);
    }

    #[test]
    fn sequential_calls_after_the_flight_hit_the_cache() {
        let sf = Arc::new(SingleFlight::new());
        let sparse = Arc::new(diagonal(4));
        let s = PrefetchStrategy::asap(7907);
        let (_, hit1, _) = sf.compile(ServiceKernel::Spmv, &sparse, &s).unwrap();
        let (_, hit2, _) = sf.compile(ServiceKernel::Spmv, &sparse, &s).unwrap();
        assert!(!hit1, "cold key compiles");
        assert!(hit2, "warm key hits the cache, no flight needed");
        assert!(
            sf.flights.lock().unwrap().is_empty(),
            "flights are retired once resolved"
        );
    }
}
