//! A small deterministic PRNG, replacing the external `rand` crate so the
//! workspace builds in offline environments.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit counter
//! advanced by a Weyl constant and scrambled by a 3-round xor-multiply
//! finalizer. It passes BigCrush, seeds well from consecutive integers,
//! and is more than random enough for synthetic matrix generation and
//! fuzzing — none of which need cryptographic strength.
//!
//! The API mirrors the subset of `rand::Rng` the generators use
//! (`gen_range` over usize / inclusive-usize / f64 ranges, `gen::<f64>()`,
//! `gen_bool`), so call sites read identically. Streams are stable: they
//! are part of the determinism contract of `asap_matrices::gen` (tests
//! assert exact equality of generated matrices across runs) and of the
//! fixed-seed differential fuzzer.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator. Any seed is acceptable, including 0 and
    /// consecutive integers; the output streams are decorrelated by the
    /// finalizer.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)` (Lemire's multiply-shift reduction —
    /// the bias is < 2^-64 per draw, irrelevant at our scales).
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform sample from a range; mirrors `rand::Rng::gen_range`.
    /// Supports `usize` ranges (half-open and inclusive) and `f64`
    /// half-open ranges.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform sample of a whole domain; mirrors `rand::Rng::gen`.
    /// Implemented for `f64` (uniform in `[0, 1)`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen_f64() < p
    }
}

/// Domains sampled uniformly by [`Rng64::gen`].
pub trait Sample {
    fn sample(rng: &mut Rng64) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut Rng64) -> f64 {
        rng.gen_f64()
    }
}

impl Sample for u64 {
    fn sample(rng: &mut Rng64) -> u64 {
        rng.next_u64()
    }
}

/// Ranges sampled uniformly by [`Rng64::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng64) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.usize_below(self.end - self.start)
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.usize_below(hi - lo + 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let f = rng.gen_range(0.1..1.0);
            assert!((0.1..1.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn rough_uniformity() {
        // Chi-square-free smoke test: each of 8 buckets of [0,1) should
        // get 10-40% of 4096 draws (expected 12.5%).
        let mut rng = Rng64::seed_from_u64(1);
        let mut buckets = [0usize; 8];
        for _ in 0..4096 {
            buckets[(rng.gen_f64() * 8.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((410..=1640).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((8700..=9300).contains(&hits), "{hits}");
        let mut rng = Rng64::seed_from_u64(9);
        assert!((0..100).filter(|_| rng.gen_bool(0.0)).count() == 0);
    }
}
