//! Matrix statistics: the row-degree (inner-segment-length) distribution
//! that determines which prefetching regime a matrix falls into.

use crate::triplets::Triplets;

/// Summary of a matrix's row-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct RowStats {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    pub mean: f64,
    pub median: usize,
    pub p90: usize,
    pub max: usize,
    pub empty_rows: usize,
}

impl RowStats {
    pub fn of(t: &Triplets) -> RowStats {
        let mut d = t.row_degrees();
        let empty_rows = d.iter().filter(|&&x| x == 0).count();
        d.sort_unstable();
        let pick = |q: f64| -> usize {
            if d.is_empty() {
                0
            } else {
                d[((d.len() - 1) as f64 * q) as usize]
            }
        };
        RowStats {
            nrows: t.nrows,
            ncols: t.ncols,
            nnz: t.nnz(),
            mean: if t.nrows == 0 {
                0.0
            } else {
                t.nnz() as f64 / t.nrows as f64
            },
            median: pick(0.5),
            p90: pick(0.9),
            max: d.last().copied().unwrap_or(0),
            empty_rows,
        }
    }

    /// Fraction of non-zeros living in rows shorter than `distance` —
    /// the share of the work where a loop-bound-clamped prefetcher
    /// (Ainsworth & Jones) loses coverage (paper Section 3.2.2 / 5.3).
    pub fn nnz_fraction_in_short_rows(t: &Triplets, distance: usize) -> f64 {
        let d = t.row_degrees();
        let short: usize = d.iter().filter(|&&x| x > 0 && x < distance).sum();
        if t.nnz() == 0 {
            0.0
        } else {
            short as f64 / t.nnz() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_banded() {
        let t = gen::banded(100, 1, 0);
        let s = RowStats::of(&t);
        assert_eq!(s.nrows, 100);
        assert_eq!(s.max, 3);
        assert_eq!(s.median, 3);
        assert_eq!(s.empty_rows, 0);
        assert!((s.mean - 2.98).abs() < 0.01);
    }

    #[test]
    fn short_row_fraction_road_vs_banded() {
        let road = gen::road_network(2000, 1);
        let wide = gen::banded(2000, 50, 1);
        let d = 45;
        let f_road = RowStats::nnz_fraction_in_short_rows(&road, d);
        let f_wide = RowStats::nnz_fraction_in_short_rows(&wide, d);
        assert!(f_road > 0.99, "road rows are all short: {f_road}");
        assert!(f_wide < 0.1, "wide band rows are long: {f_wide}");
    }

    #[test]
    fn empty_matrix_stats() {
        let t = Triplets::new(4, 4);
        let s = RowStats::of(&t);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.empty_rows, 4);
        assert_eq!(RowStats::nnz_fraction_in_short_rows(&t, 45), 0.0);
    }
}
