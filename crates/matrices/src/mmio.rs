//! MatrixMarket coordinate-format I/O, so real SuiteSparse matrices can
//! be dropped into any experiment in place of the synthetic families.
//!
//! Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.

use crate::triplets::Triplets;
use std::io::{BufRead, Write};

/// Parse a MatrixMarket stream.
pub fn read_matrix_market(r: impl BufRead) -> Result<Triplets, String> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or("empty input")?
        .map_err(|e| e.to_string())?;
    let fields: Vec<String> = header.split_whitespace().map(|s| s.to_lowercase()).collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(format!("not a MatrixMarket matrix header: {header}"));
    }
    if fields[2] != "coordinate" {
        return Err(format!("unsupported storage format: {}", fields[2]));
    }
    let value_type = fields[3].as_str();
    let pattern = match value_type {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(format!("unsupported value type: {other}")),
    };
    let symmetric = match fields[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(format!("unsupported symmetry: {other}")),
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or("missing size line")?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|x| x.parse().map_err(|e| format!("bad size field {x}: {e}")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(format!("size line needs 3 fields: {size_line}"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = Triplets::new(nrows, ncols);
    t.binary = pattern;
    let mut read = 0usize;
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let r: usize = it
            .next()
            .ok_or("missing row")?
            .parse()
            .map_err(|e| format!("bad row: {e}"))?;
        let c: usize = it
            .next()
            .ok_or("missing col")?
            .parse()
            .map_err(|e| format!("bad col: {e}"))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(format!("entry ({r},{c}) out of bounds"));
        }
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or("missing value")?
                .parse()
                .map_err(|e| format!("bad value: {e}"))?
        };
        t.push(r - 1, c - 1, v);
        if symmetric && r != c {
            t.push(c - 1, r - 1, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(format!("expected {nnz} entries, read {read}"));
    }
    Ok(t)
}

/// Write in `coordinate real general` form.
pub fn write_matrix_market(t: &Triplets, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by asap-matrices")?;
    writeln!(w, "{} {} {}", t.nrows, t.ncols, t.nnz())?;
    for i in 0..t.nnz() {
        writeln!(w, "{} {} {:?}", t.rows[i] + 1, t.cols[i] + 1, t.vals[i])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 4 2\n\
                   1 1 2.5\n\
                   3 4 -1.0\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((t.nrows, t.ncols, t.nnz()), (3, 4, 2));
        assert_eq!(t.rows, vec![0, 2]);
        assert_eq!(t.cols, vec![0, 3]);
        assert_eq!(t.vals, vec![2.5, -1.0]);
        assert!(!t.binary);
    }

    #[test]
    fn parses_pattern_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        // Off-diagonal mirrored, diagonal not.
        assert_eq!(t.nnz(), 3);
        assert!(t.binary);
        assert!(t.rows.contains(&0) && t.cols.contains(&0));
    }

    #[test]
    fn roundtrips_through_write() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 0.5);
        t.push(1, 0, -3.25);
        let mut buf = Vec::new();
        write_matrix_market(&t, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("%%Nope\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_entries() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(err.contains("expected 2 entries"));
    }
}
