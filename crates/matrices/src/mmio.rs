//! MatrixMarket coordinate-format I/O, so real SuiteSparse matrices can
//! be dropped into any experiment in place of the synthetic families.
//!
//! Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.
//!
//! The reader is hardened against untrusted input: every rejection is a
//! typed [`MmioError`] carrying the offending (1-based) line number, and
//! the entry section is checked for out-of-range coordinates,
//! truncation, and trailing surplus entries. A corrupt file can never
//! panic the pipeline — it surfaces as `Err` at the parse stage.

use crate::triplets::Triplets;
use asap_ir::AsapError;
use std::io::{BufRead, Write};

/// A typed MatrixMarket parse failure. `line` fields are 1-based line
/// numbers in the input stream (counting comments and blank lines).
#[derive(Debug, Clone, PartialEq)]
pub enum MmioError {
    /// The underlying reader failed.
    Io { line: usize, message: String },
    /// First line is not a `%%MatrixMarket matrix ...` banner.
    BadHeader { header: String },
    /// Header is well-formed but requests an unsupported variant.
    Unsupported { what: &'static str, token: String },
    /// Stream ended before the `rows cols nnz` size line.
    MissingSizeLine,
    /// The size line is malformed.
    BadSizeLine { line: usize, message: String },
    /// An entry line is malformed (missing or non-numeric fields).
    BadEntry { line: usize, message: String },
    /// An entry's 1-based coordinates fall outside the declared shape
    /// (this includes 0-based coordinates, which MatrixMarket forbids).
    OutOfRange {
        line: usize,
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// Entry count does not match the size line (truncated stream or
    /// surplus entries). For surplus entries `line` points at the first
    /// entry past the declared count; for truncation it is the last line.
    WrongEntryCount {
        line: usize,
        expected: usize,
        read: usize,
    },
}

impl MmioError {
    /// The offending 1-based line number (0 when the stream ended before
    /// any line could be blamed).
    pub fn line(&self) -> usize {
        match self {
            MmioError::Io { line, .. }
            | MmioError::BadSizeLine { line, .. }
            | MmioError::BadEntry { line, .. }
            | MmioError::OutOfRange { line, .. }
            | MmioError::WrongEntryCount { line, .. } => *line,
            MmioError::BadHeader { .. } | MmioError::Unsupported { .. } => 1,
            MmioError::MissingSizeLine => 0,
        }
    }

    /// The failure description without the `line N:` prefix, for callers
    /// (like [`AsapError::Parse`]) that carry the line number separately.
    pub fn detail(&self) -> String {
        match self {
            MmioError::Io { message, .. } => format!("read failed: {message}"),
            MmioError::BadHeader { header } => {
                format!("not a MatrixMarket matrix header: {header}")
            }
            MmioError::Unsupported { what, token } => format!("unsupported {what}: {token}"),
            MmioError::MissingSizeLine => "missing size line".into(),
            MmioError::BadSizeLine { message, .. } => format!("bad size line: {message}"),
            MmioError::BadEntry { message, .. } => format!("bad entry: {message}"),
            MmioError::OutOfRange {
                row,
                col,
                nrows,
                ncols,
                ..
            } => format!(
                "entry ({row},{col}) out of bounds for a {nrows}x{ncols} matrix \
                 (coordinates are 1-based)"
            ),
            MmioError::WrongEntryCount { expected, read, .. } => {
                format!("expected {expected} entries, read {read}")
            }
        }
    }
}

impl std::fmt::Display for MmioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let MmioError::MissingSizeLine = self {
            return write!(f, "{}", self.detail());
        }
        write!(f, "line {}: {}", self.line(), self.detail())
    }
}

impl std::error::Error for MmioError {}

impl From<MmioError> for AsapError {
    fn from(e: MmioError) -> AsapError {
        AsapError::parse(e.line(), e.detail())
    }
}

/// Parse a MatrixMarket stream.
pub fn read_matrix_market(r: impl BufRead) -> Result<Triplets, MmioError> {
    let mut lines = r.lines();
    let mut lineno = 0usize;
    let io_err = |lineno: usize, e: std::io::Error| MmioError::Io {
        line: lineno,
        message: e.to_string(),
    };

    lineno += 1;
    let header = match lines.next() {
        None => {
            return Err(MmioError::BadHeader {
                header: "<empty input>".into(),
            })
        }
        Some(l) => l.map_err(|e| io_err(lineno, e))?,
    };
    let fields: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(MmioError::BadHeader { header });
    }
    if fields[2] != "coordinate" {
        return Err(MmioError::Unsupported {
            what: "storage format",
            token: fields[2].clone(),
        });
    }
    let pattern = match fields[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(MmioError::Unsupported {
                what: "value type",
                token: other.to_string(),
            })
        }
    };
    let symmetric = match fields[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(MmioError::Unsupported {
                what: "symmetry",
                token: other.to_string(),
            })
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        lineno += 1;
        let line = line.map_err(|e| io_err(lineno, e))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or(MmioError::MissingSizeLine)?;
    let size_lineno = lineno;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|x| {
            x.parse().map_err(|e| MmioError::BadSizeLine {
                line: size_lineno,
                message: format!("field {x}: {e}"),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MmioError::BadSizeLine {
            line: size_lineno,
            message: format!("needs 3 fields, got {}: {size_line}", dims.len()),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    // Cap the declared sizes well below usize::MAX so downstream
    // arithmetic (dense extents, buffer reservations, nnz * mirror for
    // symmetric reads) can never overflow. No real matrix comes within
    // orders of magnitude of 2^40 rows; a size line up there is corrupt
    // or hostile, and a saturating product would let a lying nnz through.
    const DIM_CAP: usize = 1 << 40;
    if nrows > DIM_CAP || ncols > DIM_CAP || nnz > DIM_CAP {
        return Err(MmioError::BadSizeLine {
            line: size_lineno,
            message: format!("{nrows}x{ncols} with {nnz} entries exceeds the {DIM_CAP} size cap"),
        });
    }
    // Under the cap the product can still exceed usize on 64-bit
    // (2^40 * 2^40); an overflowed product trivially holds any capped nnz.
    if let Some(cells) = nrows.checked_mul(ncols) {
        if nnz > cells {
            return Err(MmioError::BadSizeLine {
                line: size_lineno,
                message: format!("{nnz} entries cannot fit a {nrows}x{ncols} matrix"),
            });
        }
    }

    let mut t = Triplets::new(nrows, ncols);
    t.binary = pattern;
    // Repeated (row, col) pairs are accepted: `Triplets` allows duplicates
    // and downstream COO→storage conversion accumulates them, matching the
    // SuiteSparse convention.
    let mut read = 0usize;
    for line in lines {
        lineno += 1;
        let line = line.map_err(|e| io_err(lineno, e))?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('%') {
            continue;
        }
        if read == nnz {
            return Err(MmioError::WrongEntryCount {
                line: lineno,
                expected: nnz,
                read: read + 1,
            });
        }
        let bad = |message: String| MmioError::BadEntry {
            line: lineno,
            message,
        };
        let mut it = s.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| bad("missing row".into()))?
            .parse()
            .map_err(|e| bad(format!("row: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| bad("missing col".into()))?
            .parse()
            .map_err(|e| bad(format!("col: {e}")))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(MmioError::OutOfRange {
                line: lineno,
                row: r,
                col: c,
                nrows,
                ncols,
            });
        }
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| bad("missing value".into()))?
                .parse()
                .map_err(|e| bad(format!("value: {e}")))?
        };
        t.push(r - 1, c - 1, v);
        if symmetric && r != c {
            t.push(c - 1, r - 1, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(MmioError::WrongEntryCount {
            line: lineno,
            expected: nnz,
            read,
        });
    }
    Ok(t)
}

/// Write in `coordinate real general` form.
pub fn write_matrix_market(t: &Triplets, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by asap-matrices")?;
    writeln!(w, "{} {} {}", t.nrows, t.ncols, t.nnz())?;
    for i in 0..t.nnz() {
        writeln!(w, "{} {} {:?}", t.rows[i] + 1, t.cols[i] + 1, t.vals[i])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 4 2\n\
                   1 1 2.5\n\
                   3 4 -1.0\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((t.nrows, t.ncols, t.nnz()), (3, 4, 2));
        assert_eq!(t.rows, vec![0, 2]);
        assert_eq!(t.cols, vec![0, 3]);
        assert_eq!(t.vals, vec![2.5, -1.0]);
        assert!(!t.binary);
    }

    #[test]
    fn parses_pattern_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        // Off-diagonal mirrored, diagonal not.
        assert_eq!(t.nnz(), 3);
        assert!(t.binary);
        assert!(t.rows.contains(&0) && t.cols.contains(&0));
    }

    #[test]
    fn roundtrips_through_write() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 0.5);
        t.push(1, 0, -3.25);
        let mut buf = Vec::new();
        write_matrix_market(&t, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_matrix_market("%%Nope\n1 1 0\n".as_bytes()),
            Err(MmioError::BadHeader { .. })
        ));
        assert!(matches!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()),
            Err(MmioError::Unsupported {
                what: "storage format",
                ..
            })
        ));
    }

    #[test]
    fn rejects_out_of_bounds_entries_with_line_number() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            MmioError::OutOfRange {
                line: 3,
                row: 3,
                col: 1,
                nrows: 2,
                ncols: 2
            }
        );
    }

    #[test]
    fn rejects_zero_based_coordinates() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            MmioError::OutOfRange {
                line: 3,
                row: 0,
                ..
            }
        ));
        assert!(err.to_string().contains("1-based"), "{err}");
    }

    #[test]
    fn accepts_duplicate_entries_for_downstream_accumulation() {
        // `Triplets` allows duplicates (generators emit them; COO→storage
        // conversion sums them), so the reader keeps both occurrences.
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 3\n1 1 1.0\n2 2 2.0\n1 1 5.0\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.dense_spmv(&[1.0, 1.0]), vec![6.0, 2.0]);
    }

    #[test]
    fn rejects_truncated_entry_section() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            MmioError::WrongEntryCount {
                line: 3,
                expected: 2,
                read: 1
            }
        );
    }

    #[test]
    fn rejects_surplus_entries_at_first_extra_line() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 1\n1 1 1.0\n2 2 2.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            MmioError::WrongEntryCount {
                line: 4,
                expected: 1,
                read: 2
            }
        );
    }

    #[test]
    fn rejects_garbage_size_line() {
        let src = "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(
            matches!(err, MmioError::BadSizeLine { line: 2, .. }),
            "{err}"
        );

        let src = "%%MatrixMarket matrix coordinate real general\n2 2\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()).unwrap_err(),
            MmioError::BadSizeLine { .. }
        ));

        // nnz larger than the shape can hold.
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 9\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()).unwrap_err(),
            MmioError::BadSizeLine { .. }
        ));
    }

    #[test]
    fn parses_empty_matrix() {
        // nnz = 0 is a legal MatrixMarket file: no entry lines at all.
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 0\n";
        let t = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((t.nrows, t.ncols, t.nnz()), (2, 2, 0));
    }

    #[test]
    fn parses_degenerate_zero_extent_shapes() {
        // 0xN and Nx0 shapes can hold no entries but are valid shapes.
        for src in [
            "%%MatrixMarket matrix coordinate real general\n0 5 0\n",
            "%%MatrixMarket matrix coordinate real general\n5 0 0\n",
            "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
        ] {
            let t = read_matrix_market(src.as_bytes()).unwrap();
            assert_eq!(t.nnz(), 0, "{src}");
        }
        // ...and any claimed entry in one is a size-line lie.
        let src = "%%MatrixMarket matrix coordinate real general\n0 5 1\n1 1 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(
            matches!(err, MmioError::BadSizeLine { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_overflowing_dimensions_with_typed_error() {
        let max = usize::MAX;
        // Dims near usize::MAX parse as integers but must die at the cap
        // guard — not overflow a product or reserve absurd buffers.
        for src in [
            format!("%%MatrixMarket matrix coordinate real general\n{max} {max} 1\n1 1 1.0\n"),
            format!("%%MatrixMarket matrix coordinate real general\n{max} 2 1\n1 1 1.0\n"),
            format!("%%MatrixMarket matrix coordinate real general\n2 2 {max}\n1 1 1.0\n"),
            // Just past the cap on a single axis.
            format!(
                "%%MatrixMarket matrix coordinate real general\n{} 2 1\n1 1 1.0\n",
                (1usize << 40) + 1
            ),
        ] {
            let err = read_matrix_market(src.as_bytes()).unwrap_err();
            assert!(
                matches!(err, MmioError::BadSizeLine { line: 2, .. }),
                "{src}: {err}"
            );
            assert!(err.to_string().contains("cap"), "{err}");
        }
        // A value too big for usize entirely is a parse failure on the
        // field, same typed variant, same line number.
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   99999999999999999999999999 2 1\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(
            matches!(err, MmioError::BadSizeLine { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_truncated_final_entry_line() {
        // The last entry line is cut mid-record (row+col, no value).
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 2\n1 1 1.0\n2 2\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            MmioError::BadEntry {
                line: 4,
                message: "missing value".into()
            }
        );
    }

    #[test]
    fn rejects_non_numeric_entry_fields() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(matches!(err, MmioError::BadEntry { line: 3, .. }), "{err}");

        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()).unwrap_err(),
            MmioError::BadEntry { .. }
        ));

        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()).unwrap_err(),
            MmioError::BadEntry { .. }
        ));
    }

    #[test]
    fn converts_to_asap_error_with_line() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let e: AsapError = read_matrix_market(src.as_bytes()).unwrap_err().into();
        assert_eq!(e.kind(), "parse");
        assert!(e.to_string().contains("line 3"), "{e}");
    }
}
