//! Synthetic matrix generators, one per SuiteSparse family archetype.
//!
//! Each generator controls the two properties that drive every experiment
//! in the paper: memory footprint relative to the simulated LLC
//! (memory-boundness) and the row-degree distribution (inner-segment
//! lengths — short segments are where ASaP's cross-segment bound wins
//! over loop-bound prefetching).
//!
//! All generators are deterministic given their seed.

use crate::rng::Rng64;
use crate::triplets::Triplets;

/// Banded matrix: `band` diagonals around the main one. Structured;
/// hardware prefetchers love it (the "Others" regime of Figures 7/11).
pub fn banded(n: usize, band: usize, seed: u64) -> Triplets {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band + 1).min(n);
        for j in lo..hi {
            t.push(i, j, rng.gen_range(0.1..1.0));
        }
    }
    t
}

/// 5-point 2-D stencil (finite differences on an nx × ny grid):
/// the classic structured scientific-computing matrix.
pub fn stencil5(nx: usize, ny: usize) -> Triplets {
    let n = nx * ny;
    let mut t = Triplets::new(n, n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            t.push(i, i, 4.0);
            if x > 0 {
                t.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                t.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                t.push(i, idx(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                t.push(i, idx(x, y + 1), -1.0);
            }
        }
    }
    t
}

/// Uniform random (Erdős–Rényi) matrix: every row draws `avg_deg` columns
/// uniformly. Unstructured, uniform short rows.
pub fn erdos_renyi(n: usize, avg_deg: usize, seed: u64) -> Triplets {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        for _ in 0..avg_deg {
            let j = rng.gen_range(0..n);
            t.push(i, j, rng.gen_range(0.1..1.0));
        }
    }
    t
}

/// RMAT (recursive-matrix) power-law graph, the GAP/Graph500 archetype:
/// heavy-tailed degrees, a few huge hub rows, many near-empty rows.
/// Binary adjacency (graph) matrix.
pub fn rmat(scale: u32, avg_deg: usize, seed: u64) -> Triplets {
    let n = 1usize << scale;
    let nnz = n * avg_deg;
    let (a, b, c) = (0.57, 0.19, 0.19); // Graph500 parameters
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    t.binary = true;
    for _ in 0..nnz {
        let (mut r, mut col) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let p: f64 = rng.gen();
            let (ri, ci) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= ri << bit;
            col |= ci << bit;
        }
        t.push(r, col, 1.0);
    }
    t
}

/// Power-law row degrees with uniform column targets (SNAP-style social
/// network): degree of row i ∝ (i+1)^(-alpha), scaled to hit `avg_deg`.
pub fn power_law(n: usize, avg_deg: usize, alpha: f64, seed: u64) -> Triplets {
    let mut rng = Rng64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let total = (n * avg_deg) as f64;
    let mut t = Triplets::new(n, n);
    t.binary = true;
    for (i, w) in weights.iter().enumerate() {
        let deg = ((w / wsum) * total).round() as usize;
        for _ in 0..deg.max(1) {
            let j = rng.gen_range(0..n);
            t.push(i, j, 1.0);
        }
    }
    t
}

/// Road-network-like graph (DIMACS10 archetype): nearly-planar, degree
/// 2–4, mostly local edges with occasional long ones. The short rows
/// (segment length ≪ prefetch distance) are the regime of Section 5.3.
pub fn road_network(n: usize, seed: u64) -> Triplets {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    t.binary = true;
    for i in 0..n {
        let deg = rng.gen_range(2..=4usize);
        for _ in 0..deg {
            // Mostly regional: neighbours within a window a few times the
            // L1 size (road networks have locality, but not cache-line
            // streaming locality); 10% long-range.
            let j = if rng.gen_bool(0.90) {
                let max_off = 4096usize.min(n.saturating_sub(1)).max(1);
                let off = rng.gen_range(1..=max_off);
                if rng.gen_bool(0.5) {
                    (i + off) % n
                } else {
                    (i + n - off) % n
                }
            } else {
                rng.gen_range(0..n)
            };
            t.push(i, j, 1.0);
        }
    }
    t
}

/// Block-diagonal with dense-ish blocks (FEM / GHS_psdef archetype):
/// structured, excellent locality.
pub fn block_diagonal(nblocks: usize, block: usize, fill: f64, seed: u64) -> Triplets {
    let n = nblocks * block;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    for bidx in 0..nblocks {
        let base = bidx * block;
        for r in 0..block {
            for c in 0..block {
                if r == c || rng.gen_bool(fill) {
                    t.push(base + r, base + c, rng.gen_range(0.1..1.0));
                }
            }
        }
    }
    t
}

/// Web-graph-like (LAW archetype): power-law degrees plus locality runs
/// (consecutive columns), mixing streaming-friendly segments with hubs.
pub fn web_graph(n: usize, avg_deg: usize, seed: u64) -> Triplets {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    t.binary = true;
    for i in 0..n {
        // Heavy tail via a geometric-ish draw.
        let mut deg = 1usize;
        while deg < 4 * avg_deg && rng.gen_bool(1.0 - 1.0 / avg_deg as f64) {
            deg += 1;
        }
        let mut j = rng.gen_range(0..n);
        for k in 0..deg {
            // Runs of consecutive columns with occasional jumps.
            if k > 0 && rng.gen_bool(0.6) {
                j = (j + 1) % n;
            } else {
                j = rng.gen_range(0..n);
            }
            t.push(i, j, 1.0);
        }
    }
    t
}

/// Diagonal matrix (degenerate structured case).
pub fn diagonal(n: usize) -> Triplets {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 1.0 + i as f64 * 1e-6);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_has_expected_band() {
        let t = banded(10, 1, 1);
        assert_eq!(t.nnz(), 10 + 9 + 9);
        assert!(t
            .rows
            .iter()
            .zip(&t.cols)
            .all(|(&r, &c)| r.abs_diff(c) <= 1));
    }

    #[test]
    fn stencil5_interior_degree_is_five() {
        let t = stencil5(8, 8);
        let d = t.row_degrees();
        // Interior point (3,3) -> index 27.
        assert_eq!(d[27], 5);
        // Corner has 3.
        assert_eq!(d[0], 3);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(100, 4, 7), erdos_renyi(100, 4, 7));
        assert_eq!(rmat(8, 4, 9), rmat(8, 4, 9));
        assert_ne!(erdos_renyi(100, 4, 7), erdos_renyi(100, 4, 8));
    }

    #[test]
    fn rmat_is_heavy_tailed() {
        let t = rmat(12, 8, 3);
        let mut d = t.row_degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = d.iter().sum();
        let top1pct: usize = d.iter().take(d.len() / 100).sum();
        assert!(
            top1pct as f64 > 0.10 * total as f64,
            "top 1% of rows must hold >10% of edges (got {top1pct}/{total})"
        );
        assert!(t.binary);
    }

    #[test]
    fn road_network_has_short_rows() {
        let t = road_network(1000, 5);
        let d = t.row_degrees();
        assert!(d.iter().all(|&x| x <= 4));
        assert!(d.iter().filter(|&&x| x >= 2).count() > 900);
    }

    #[test]
    fn erdos_renyi_has_uniform_degrees() {
        let t = erdos_renyi(500, 8, 11);
        assert_eq!(t.nnz(), 4000);
        assert!(t.row_degrees().iter().all(|&d| d == 8));
    }

    #[test]
    fn block_diagonal_stays_in_blocks() {
        let t = block_diagonal(4, 8, 0.5, 2);
        assert!(t.rows.iter().zip(&t.cols).all(|(&r, &c)| r / 8 == c / 8));
    }

    #[test]
    fn power_law_and_web_graph_shapes() {
        let p = power_law(400, 6, 1.1, 3);
        assert!(p.nnz() >= 400, "every row gets at least one entry");
        let w = web_graph(300, 6, 4);
        assert!(w.nnz() > 300);
        assert!(w.binary);
    }

    #[test]
    fn diagonal_matches_n() {
        let t = diagonal(16);
        assert_eq!(t.nnz(), 16);
        assert!(t.rows.iter().zip(&t.cols).all(|(&r, &c)| r == c));
    }
}
