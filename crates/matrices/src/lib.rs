//! # asap-matrices — a synthetic SuiteSparse-like matrix collection
//!
//! Stands in for the paper's SuiteSparse evaluation set (Section 4.2):
//! deterministic generators per family archetype ([`gen`]), a grouped
//! collection mirroring the figures' "Selected six groups + Others"
//! structure ([`collection`]), MatrixMarket I/O so real matrices can be
//! substituted ([`mmio`]), and the row-degree statistics that predict
//! which prefetching regime a matrix falls into ([`stats`]).

pub mod collection;
pub mod gen;
pub mod mmio;
pub mod rng;
pub mod stats;
pub mod triplets;

pub use collection::{
    spmm_collection, synthetic_collection, GenSpec, MatrixSpec, SizeClass, UNSTRUCTURED_GROUPS,
};
pub use mmio::{read_matrix_market, write_matrix_market, MmioError};
pub use rng::Rng64;
pub use stats::RowStats;
pub use triplets::Triplets;
