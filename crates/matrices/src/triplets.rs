//! 2-D coordinate-form matrices: the universal interchange type of the
//! matrix collection (generators and MatrixMarket I/O both produce it).

/// A sparse matrix as (row, col, value) triplets. Duplicates allowed
//  (they are combined downstream when building a `SparseTensor`).
#[derive(Debug, Clone, PartialEq)]
pub struct Triplets {
    pub nrows: usize,
    pub ncols: usize,
    pub rows: Vec<usize>,
    pub cols: Vec<usize>,
    pub vals: Vec<f64>,
    /// Binary matrices (graph adjacency): stored with 1-byte values and
    /// boolean semiring arithmetic downstream (paper Section 4.2).
    pub binary: bool,
}

impl Triplets {
    pub fn new(nrows: usize, ncols: usize) -> Triplets {
        Triplets {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            binary: false,
        }
    }

    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.rows.push(r);
        self.cols.push(c);
        self.vals.push(v);
    }

    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Convert to an f64 [`asap_tensor::CooTensor`].
    pub fn to_coo_f64(&self) -> asap_tensor::CooTensor {
        match self.try_to_coo_f64() {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`to_coo_f64`](Triplets::to_coo_f64): reports
    /// out-of-range coordinates as a typed storage error instead of
    /// panicking (degenerate inputs from the fuzz harness reach this).
    pub fn try_to_coo_f64(&self) -> Result<asap_tensor::CooTensor, asap_ir::AsapError> {
        let mut coords = Vec::with_capacity(self.nnz() * 2);
        for (&r, &c) in self.rows.iter().zip(&self.cols) {
            coords.push(r);
            coords.push(c);
        }
        asap_tensor::CooTensor::try_new(
            vec![self.nrows, self.ncols],
            coords,
            asap_tensor::Values::F64(self.vals.clone()),
        )
    }

    /// Convert to a boolean (i8) [`asap_tensor::CooTensor`]: any non-zero
    /// becomes 1.
    pub fn to_coo_i8(&self) -> asap_tensor::CooTensor {
        match self.try_to_coo_i8() {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`to_coo_i8`](Triplets::to_coo_i8).
    pub fn try_to_coo_i8(&self) -> Result<asap_tensor::CooTensor, asap_ir::AsapError> {
        let mut coords = Vec::with_capacity(self.nnz() * 2);
        for (&r, &c) in self.rows.iter().zip(&self.cols) {
            coords.push(r);
            coords.push(c);
        }
        asap_tensor::CooTensor::try_new(
            vec![self.nrows, self.ncols],
            coords,
            asap_tensor::Values::I8(self.vals.iter().map(|&v| (v != 0.0) as i8).collect()),
        )
    }

    /// The natural COO form for this matrix's value kind.
    pub fn to_coo(&self) -> asap_tensor::CooTensor {
        if self.binary {
            self.to_coo_i8()
        } else {
            self.to_coo_f64()
        }
    }

    /// Fallible variant of [`to_coo`](Triplets::to_coo).
    pub fn try_to_coo(&self) -> Result<asap_tensor::CooTensor, asap_ir::AsapError> {
        if self.binary {
            self.try_to_coo_i8()
        } else {
            self.try_to_coo_f64()
        }
    }

    /// Dense SpMV reference (`y = A·x`), accumulating duplicates.
    pub fn dense_spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nnz() {
            y[self.rows[i]] += self.vals[i] * x[self.cols[i]];
        }
        y
    }

    /// Approximate CSR memory footprint in bytes (32-bit indices, f64 or
    /// i8 values) — the paper's matrix-selection criterion.
    pub fn footprint_bytes(&self) -> usize {
        let val_bytes = if self.binary { 1 } else { 8 };
        (self.nrows + 1) * 4 + self.nnz() * (4 + val_bytes)
    }

    /// Per-row non-zero counts.
    pub fn row_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.nrows];
        for &r in &self.rows {
            d[r] += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Triplets {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 2.0);
        t.push(0, 2, 3.0);
        t.push(1, 1, 4.0);
        t
    }

    #[test]
    fn dense_spmv_reference() {
        let t = small();
        let y = t.dense_spmv(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![302.0, 40.0]);
    }

    #[test]
    fn coo_roundtrip_f64() {
        let coo = small().to_coo_f64();
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.dims, vec![2, 3]);
        assert_eq!(coo.coord(1), &[0, 2]);
    }

    #[test]
    fn binary_conversion_maps_nonzero_to_one() {
        let mut t = small();
        t.binary = true;
        let coo = t.to_coo();
        match coo.values {
            asap_tensor::Values::I8(v) => assert_eq!(v, vec![1, 1, 1]),
            _ => panic!("expected i8 values"),
        }
    }

    #[test]
    fn footprint_and_degrees() {
        let t = small();
        assert_eq!(t.row_degrees(), vec![2, 1]);
        assert_eq!(t.footprint_bytes(), 3 * 4 + 3 * 12);
    }
}
