//! The synthetic stand-in for the SuiteSparse Matrix Collection.
//!
//! The paper evaluates on the largest 5% (SpMV) / 10% (SpMM) of
//! SuiteSparse, grouped by family, with six unstructured groups
//! aggregated as "Selected" and everything else as "Others" (Figures 7,
//! 10, 11). We reproduce that structure with generator-backed families:
//! each group's archetype controls the properties that matter — footprint
//! vs. the simulated LLC and the row-degree distribution.
//!
//! Matrices are described by [`MatrixSpec`] and generated on demand
//! ([`MatrixSpec::materialize`]), deterministically.

use crate::gen;
use crate::rng::Rng64;
use crate::triplets::Triplets;

/// Generator recipe for one matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum GenSpec {
    Banded {
        n: usize,
        band: usize,
        seed: u64,
    },
    Stencil5 {
        nx: usize,
        ny: usize,
    },
    ErdosRenyi {
        n: usize,
        deg: usize,
        seed: u64,
    },
    Rmat {
        scale: u32,
        deg: usize,
        seed: u64,
    },
    PowerLaw {
        n: usize,
        deg: usize,
        alpha: f64,
        seed: u64,
    },
    RoadNetwork {
        n: usize,
        seed: u64,
    },
    BlockDiagonal {
        nblocks: usize,
        block: usize,
        fill: f64,
        seed: u64,
    },
    WebGraph {
        n: usize,
        deg: usize,
        seed: u64,
    },
    Diagonal {
        n: usize,
    },
}

/// One matrix of the collection.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// SuiteSparse-style `Group/name` identifier.
    pub name: String,
    pub group: String,
    /// Whether the group counts as unstructured ("Selected" in the
    /// figures) or structured ("Others").
    pub unstructured: bool,
    pub gen: GenSpec,
}

impl MatrixSpec {
    /// Generate the matrix. All collection matrices carry f64 weights
    /// (graph archetypes are weighted rather than binary so the footprint
    /// criterion is uniform across groups; the boolean-semiring path is
    /// exercised separately — see DESIGN.md).
    pub fn materialize(&self) -> Triplets {
        let mut t = match self.gen {
            GenSpec::Banded { n, band, seed } => gen::banded(n, band, seed),
            GenSpec::Stencil5 { nx, ny } => gen::stencil5(nx, ny),
            GenSpec::ErdosRenyi { n, deg, seed } => gen::erdos_renyi(n, deg, seed),
            GenSpec::Rmat { scale, deg, seed } => gen::rmat(scale, deg, seed),
            GenSpec::PowerLaw {
                n,
                deg,
                alpha,
                seed,
            } => gen::power_law(n, deg, alpha, seed),
            GenSpec::RoadNetwork { n, seed } => gen::road_network(n, seed),
            GenSpec::BlockDiagonal {
                nblocks,
                block,
                fill,
                seed,
            } => gen::block_diagonal(nblocks, block, fill, seed),
            GenSpec::WebGraph { n, deg, seed } => gen::web_graph(n, deg, seed),
            GenSpec::Diagonal { n } => gen::diagonal(n),
        };
        if t.binary {
            let mut rng = Rng64::seed_from_u64(0xA5A5);
            for v in &mut t.vals {
                *v = rng.gen_range(0.1..1.0);
            }
            t.binary = false;
        }
        t
    }
}

/// Overall collection size: `Full` for figure regeneration, smaller
/// classes for tests and quick runs. Dimensions scale by 1 / divisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// ~1/64 of full size — unit/integration tests.
    Tiny,
    /// ~1/8 — quick benchmark smoke runs.
    Small,
    /// Full figure-regeneration size (matrices whose dense operand
    /// exceeds the scaled simulator's 2 MB LLC).
    Full,
}

impl SizeClass {
    fn div(self) -> usize {
        match self {
            SizeClass::Tiny => 64,
            SizeClass::Small => 8,
            SizeClass::Full => 1,
        }
    }

    fn rmat_scale_off(self) -> u32 {
        match self {
            SizeClass::Tiny => 6,
            SizeClass::Small => 3,
            SizeClass::Full => 0,
        }
    }
}

/// The six unstructured groups aggregated as "Selected" in the figures.
pub const UNSTRUCTURED_GROUPS: [&str; 6] = ["GAP", "SNAP", "DIMACS10", "LAW", "Gleich", "Pajek"];

/// Build the synthetic collection at the given size.
pub fn synthetic_collection(size: SizeClass) -> Vec<MatrixSpec> {
    let d = size.div();
    let so = size.rmat_scale_off();
    let n = |full: usize| (full / d).max(256);
    let spec = |group: &str, name: &str, unstructured: bool, gen: GenSpec| MatrixSpec {
        name: format!("{group}/{name}"),
        group: group.to_string(),
        unstructured,
        gen,
    };
    vec![
        // --- Selected: unstructured graph-like families -----------------
        spec(
            "GAP",
            "kron19",
            true,
            GenSpec::Rmat {
                scale: 19 - so,
                deg: 6,
                seed: 11,
            },
        ),
        spec(
            "GAP",
            "kron19b",
            true,
            GenSpec::Rmat {
                scale: 19 - so,
                deg: 8,
                seed: 12,
            },
        ),
        spec(
            "GAP",
            "twitter-like",
            true,
            GenSpec::Rmat {
                scale: 19 - so,
                deg: 7,
                seed: 13,
            },
        ),
        spec(
            "SNAP",
            "soc-medium",
            true,
            GenSpec::PowerLaw {
                n: n(300_000),
                deg: 8,
                alpha: 1.0,
                seed: 21,
            },
        ),
        spec(
            "SNAP",
            "soc-large",
            true,
            GenSpec::PowerLaw {
                n: n(500_000),
                deg: 6,
                alpha: 1.2,
                seed: 22,
            },
        ),
        spec(
            "DIMACS10",
            "road-a",
            true,
            GenSpec::RoadNetwork {
                n: n(500_000),
                seed: 31,
            },
        ),
        spec(
            "DIMACS10",
            "road-b",
            true,
            GenSpec::RoadNetwork {
                n: n(800_000),
                seed: 32,
            },
        ),
        spec(
            "LAW",
            "web-hosts",
            true,
            GenSpec::WebGraph {
                n: n(280_000),
                deg: 10,
                seed: 41,
            },
        ),
        spec(
            "LAW",
            "web-pages",
            true,
            GenSpec::WebGraph {
                n: n(400_000),
                deg: 8,
                seed: 42,
            },
        ),
        spec(
            "Gleich",
            "rand-er-a",
            true,
            GenSpec::ErdosRenyi {
                n: n(300_000),
                deg: 8,
                seed: 51,
            },
        ),
        spec(
            "Gleich",
            "rand-er-b",
            true,
            GenSpec::ErdosRenyi {
                n: n(500_000),
                deg: 6,
                seed: 52,
            },
        ),
        spec(
            "Pajek",
            "net-flat",
            true,
            GenSpec::PowerLaw {
                n: n(400_000),
                deg: 6,
                alpha: 0.7,
                seed: 61,
            },
        ),
        // --- Others: structured families ---------------------------------
        spec(
            "Janna",
            "band-fem",
            false,
            GenSpec::Banded {
                n: n(400_000),
                band: 4,
                seed: 71,
            },
        ),
        spec(
            "GHS_psdef",
            "grid-2d",
            false,
            GenSpec::Stencil5 {
                nx: n(490_000).isqrt(),
                ny: n(490_000).isqrt(),
            },
        ),
        spec(
            "Boeing",
            "blocks",
            false,
            GenSpec::BlockDiagonal {
                nblocks: n(384_000) / 64,
                block: 64,
                fill: 0.15,
                seed: 81,
            },
        ),
        spec(
            "Schenk",
            "band-wide",
            false,
            GenSpec::Banded {
                n: n(300_000),
                band: 8,
                seed: 82,
            },
        ),
        spec(
            "Oberwolfach",
            "diag",
            false,
            GenSpec::Diagonal { n: n(500_000) },
        ),
    ]
}

/// The subset of the collection used for SpMM (the paper takes the top
/// 10% by footprint for SpMM vs top 5% for SpMV; our collection is
/// already footprint-selected, so SpMM just uses every entry).
pub fn spmm_collection(size: SizeClass) -> Vec<MatrixSpec> {
    synthetic_collection(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn collection_has_six_unstructured_groups() {
        let c = synthetic_collection(SizeClass::Tiny);
        let groups: HashSet<&str> = c
            .iter()
            .filter(|m| m.unstructured)
            .map(|m| m.group.as_str())
            .collect();
        assert_eq!(groups.len(), 6);
        for g in UNSTRUCTURED_GROUPS {
            assert!(groups.contains(g), "missing group {g}");
        }
    }

    #[test]
    fn collection_has_structured_others() {
        let c = synthetic_collection(SizeClass::Tiny);
        assert!(c.iter().filter(|m| !m.unstructured).count() >= 4);
    }

    #[test]
    fn names_are_unique() {
        let c = synthetic_collection(SizeClass::Tiny);
        let names: HashSet<&str> = c.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn tiny_matrices_materialize_quickly_and_are_weighted() {
        for m in synthetic_collection(SizeClass::Tiny) {
            let t = m.materialize();
            assert!(t.nnz() > 0, "{}", m.name);
            assert!(!t.binary, "{} must be weighted", m.name);
            assert!(t.vals.iter().all(|&v| v != 0.0), "{}", m.name);
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let c = synthetic_collection(SizeClass::Tiny);
        assert_eq!(c[0].materialize(), c[0].materialize());
    }

    #[test]
    fn full_size_exceeds_scaled_llc() {
        // Dense x vector footprint (8 B/col) must exceed the scaled 2 MB
        // L3 for every unstructured matrix at Full size.
        for m in synthetic_collection(SizeClass::Full) {
            if !m.unstructured {
                continue;
            }
            let cols = match m.gen {
                GenSpec::Rmat { scale, .. } => 1usize << scale,
                GenSpec::PowerLaw { n, .. }
                | GenSpec::RoadNetwork { n, .. }
                | GenSpec::ErdosRenyi { n, .. }
                | GenSpec::WebGraph { n, .. } => n,
                _ => unreachable!("unstructured specs are graph archetypes"),
            };
            assert!(cols * 8 > 2 * 1024 * 1024, "{}: vector fits in L3", m.name);
        }
    }
}
