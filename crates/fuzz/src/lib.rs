//! Fault-injection and differential-fuzzing harness.
//!
//! The workspace builds without network access, so the usual external
//! fuzzing / property-testing crates are unavailable; this crate provides
//! deterministic, fixed-seed replacements:
//!
//! - generators for hostile sparse inputs (empty rows, all-short rows,
//!   duplicate and out-of-range coordinates, zero-sized shapes),
//! - byte-level corruptors for MatrixMarket streams,
//! - the paper's differential oracle (Section 3.2.2), extended to five
//!   ways: prefetch injection is semantically a no-op, so Baseline/ASaP/
//!   A&J must produce bit-identical outputs matching a dense reference —
//!   and for every strategy, the bytecode VM must reproduce the
//!   tree-walker exactly (bit-identical values, identical ordered
//!   memory-event stream, equal retired-instruction counts), and, when
//!   the kernel carries a tier-2 native specialization, that engine must
//!   reproduce the same bits and the same typed traps too (it is exempt
//!   from the event-stream comparison by design — see `asap_ir::tier2`);
//!   see [`engines_agree`].
//!
//! Every entry point takes an explicit [`Rng64`] seeded by the caller, so
//! a failing case is reproducible from the seed printed in the assertion
//! message. The contract checked throughout: invalid input yields a typed
//! [`asap_ir::AsapError`] (surfaced here as [`Outcome::Rejected`]), valid
//! input yields agreeing results — and nothing panics.

#![forbid(unsafe_code)]

pub mod chaos_proxy;

use asap_core::{
    compile_with_width, run_spmv_f64_budgeted, CompiledKernel, ExecEngine, PrefetchStrategy,
};
use asap_ir::{Budget, BudgetError, TraceModel};
use asap_matrices::{read_matrix_market, write_matrix_market, Triplets};
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, IndexWidth, SparseTensor, ValueKind};

pub use asap_matrices::Rng64;

/// Outcome of one well-behaved pipeline interaction with untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The input was structurally valid: every strategy compiled, ran,
    /// agreed bit-for-bit, and matched the dense reference.
    Verified,
    /// The input was rejected up front with a typed error (its message is
    /// kept for diagnostics assertions).
    Rejected(String),
}

/// Random square-ish matrix drawn with the harness conventions: empty
/// rows, duplicate coordinates and highly irregular degrees all occur.
pub fn random_triplets(rng: &mut Rng64, max_n: usize, max_entries: usize) -> Triplets {
    let nrows = rng.gen_range(1..=max_n);
    let ncols = rng.gen_range(1..=max_n);
    let entries = rng.usize_below(max_entries + 1);
    let mut t = Triplets::new(nrows, ncols);
    for _ in 0..entries {
        t.push(
            rng.usize_below(nrows),
            rng.usize_below(ncols),
            rng.gen_range(-2.0..2.0),
        );
    }
    t
}

/// Deterministic degenerate matrices — the shapes that historically break
/// sparse pipelines. Each entry is `(label, matrix)`; labels appear in
/// assertion messages.
pub fn degenerate_cases(seed: u64) -> Vec<(String, Triplets)> {
    let mut rng = Rng64::seed_from_u64(seed);
    // Entirely empty and zero-sized shapes (0xN, Nx0, 0x0) first.
    let mut cases: Vec<(String, Triplets)> = vec![
        ("empty-5x7".into(), Triplets::new(5, 7)),
        ("zero-rows-0x4".into(), Triplets::new(0, 4)),
        ("zero-cols-4x0".into(), Triplets::new(4, 0)),
        ("zero-both-0x0".into(), Triplets::new(0, 0)),
    ];

    // Mostly empty rows: a single populated row in a tall matrix.
    let mut t = Triplets::new(64, 16);
    for c in 0..16 {
        t.push(40, c, 1.0 + c as f64);
    }
    cases.push(("one-dense-row-in-64".into(), t));

    // All-short rows (degree 1): the A&J worst case.
    let mut t = Triplets::new(48, 48);
    for r in 0..48 {
        t.push(r, (r * 7) % 48, 0.5);
    }
    cases.push(("all-degree-1".into(), t));

    // Heavy duplicates: the same coordinate pushed many times.
    let mut t = Triplets::new(8, 8);
    for k in 0..32 {
        t.push(3, 5, 0.25 * (k % 3) as f64);
        t.push(k % 8, k % 8, 1.0);
    }
    cases.push(("heavy-duplicates".into(), t));

    // A single entry in a large shape.
    let mut t = Triplets::new(1000, 1000);
    t.push(999, 999, 42.0);
    cases.push(("single-corner-entry".into(), t));

    // Out-of-range coordinates: must be rejected with a typed error,
    // never a panic or a silent wrap. Built through the public fields —
    // `Triplets::push` debug-asserts the range, and the whole point here
    // is modeling input that skipped that check.
    let mut t = Triplets::new(4, 4);
    t.push(1, 1, 1.0);
    t.rows.push(9);
    t.cols.push(2);
    t.vals.push(2.0);
    cases.push(("row-out-of-range".into(), t));
    let mut t = Triplets::new(4, 4);
    t.rows.push(2);
    t.cols.push(17);
    t.vals.push(3.0);
    cases.push(("col-out-of-range".into(), t));

    // A few random hostile matrices for good measure.
    for i in 0..3 {
        cases.push((
            format!("random-hostile-{i}"),
            random_triplets(&mut rng, 24, 120),
        ));
    }
    cases
}

/// Deterministic dense operand for a differential run.
fn dense_x(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.75 + (i % 9) as f64 * 0.375).collect()
}

/// What both execution engines produced when they agreed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineAgreement {
    /// Both engines succeeded: bit-identical output vectors, identical
    /// ordered memory-event streams, equal retired-instruction counts.
    /// Carries the (shared) result and the tree-walker's trace summary.
    Agreed {
        y: Vec<f64>,
        events: usize,
        instructions: u64,
        /// True when the kernel carried a tier-2 native specialization
        /// and it, too, reproduced the tree-walker bit-for-bit.
        tier2: bool,
    },
    /// Both engines trapped with the same typed error (same display)
    /// after emitting identical event prefixes.
    Trapped(String),
}

/// Run one compiled kernel under both execution engines (tree-walker and
/// bytecode VM) with a full [`TraceModel`] each, and require exact
/// observational equivalence: the same success/trap outcome, bit-identical
/// `y`, an identical `(op, addr, bytes)` demand/prefetch event stream in
/// the same order, and equal retired-instruction counts. When the kernel
/// carries a tier-2 native specialization, that engine runs as a third
/// leg and must reproduce the same bits (or the identical typed trap);
/// it reports no memory events by design, so it is exempt from the
/// stream and instruction-count comparisons (see `asap_ir::tier2`).
///
/// `Err` describes the first divergence. This is the engine half of the
/// five-way oracle; [`differential_spmv`] calls it for every strategy, and
/// the `bytecode_equiv` integration suite pins it on fixed corpora.
pub fn engines_agree(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    x: &[f64],
) -> Result<EngineAgreement, String> {
    engines_agree_budgeted(ck, sparse, x, &Budget::unlimited())
}

/// [`engines_agree`] under a resource [`Budget`]: both engines run with
/// the same limits and must trap (or finish) at observationally
/// equivalent points — same typed error with the same op location, after
/// identical memory-event prefixes. Budgets passed here should be
/// deterministic (fuel, not wall-clock deadlines) so the comparison is
/// meaningful.
pub fn engines_agree_budgeted(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    x: &[f64],
    budget: &Budget,
) -> Result<EngineAgreement, String> {
    if ck.program.is_none() {
        return Err("kernel has no lowered bytecode program".into());
    }
    let mut tw = TraceModel::new();
    let rt = run_spmv_f64_budgeted(ck, sparse, x, &mut tw, ExecEngine::TreeWalk, budget);
    let mut bc = TraceModel::new();
    let rb = run_spmv_f64_budgeted(ck, sparse, x, &mut bc, ExecEngine::Bytecode, budget);
    // Tier-2 leg, when the kernel specialized. It runs under `NullModel`:
    // the native engine emits no memory events by design, so only the
    // value bits and the typed trap participate in the comparison.
    let rn = ck.tier2.as_ref().map(|_| {
        run_spmv_f64_budgeted(
            ck,
            sparse,
            x,
            &mut asap_ir::NullModel,
            ExecEngine::Tier2,
            budget,
        )
    });

    // Event streams must match in both success and trap outcomes: the VM
    // must report the same model calls in the same order, up to and
    // including the access that faulted.
    if tw.events != bc.events {
        let n = tw
            .events
            .iter()
            .zip(&bc.events)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(format!(
            "engine event streams diverge at event {n} (tree-walk {:?} vs bytecode {:?}; lengths {} vs {})",
            tw.events.get(n),
            bc.events.get(n),
            tw.events.len(),
            bc.events.len()
        ));
    }
    match (rt, rb) {
        (Ok(yt), Ok(yb)) => {
            let bt: Vec<u64> = yt.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = yb.iter().map(|v| v.to_bits()).collect();
            if bt != bb {
                return Err("engine outputs differ bitwise".into());
            }
            if tw.instructions != bc.instructions {
                return Err(format!(
                    "retired-instruction counts differ: tree-walk {} vs bytecode {}",
                    tw.instructions, bc.instructions
                ));
            }
            let tier2 = match rn {
                None => false,
                Some(Ok(yn)) => {
                    let bn: Vec<u64> = yn.iter().map(|v| v.to_bits()).collect();
                    if bn != bt {
                        return Err("tier-2 output differs bitwise from the tree-walker".into());
                    }
                    true
                }
                Some(Err(e)) => {
                    return Err(format!(
                        "tier-2 trapped where the interpreters succeeded: {e}"
                    ))
                }
            };
            Ok(EngineAgreement::Agreed {
                y: yt,
                events: tw.events.len(),
                instructions: tw.instructions,
                tier2,
            })
        }
        (Err(et), Err(eb)) => {
            let (et, eb) = (et.to_string(), eb.to_string());
            if et != eb {
                return Err(format!(
                    "engines trap differently: tree-walk '{et}' vs bytecode '{eb}'"
                ));
            }
            match rn {
                Some(Ok(_)) => Err(format!(
                    "tier-2 succeeded where the interpreters trapped: '{et}'"
                )),
                Some(Err(en)) if en.to_string() != et => Err(format!(
                    "tier-2 traps differently: '{en}' vs interpreter '{et}'"
                )),
                _ => Ok(EngineAgreement::Trapped(et)),
            }
        }
        (Ok(_), Err(e)) => Err(format!("bytecode trapped where tree-walk succeeded: {e}")),
        (Err(e), Ok(_)) => Err(format!("tree-walk trapped where bytecode succeeded: {e}")),
    }
}

/// The five-way differential oracle for SpMV: three prefetch strategies
/// (Baseline / ASaP / A&J), each executed by both interpreters — plus
/// the tier-2 native engine whenever a strategy's kernel specialized —
/// via [`engines_agree`].
///
/// Returns `Ok(Outcome::Rejected(_))` when the input is invalid and every
/// stage reported a typed error; `Ok(Outcome::Verified)` when all three
/// strategies agreed bit-for-bit across both engines and matched the
/// dense reference; `Err` with a description when the oracle is violated
/// (results disagree, the engines diverge, or a valid input failed to
/// compile/run).
pub fn differential_spmv(
    tri: &Triplets,
    fmt: &Format,
    width: IndexWidth,
    distance: usize,
) -> Result<Outcome, String> {
    let coo = match tri.try_to_coo_f64() {
        Ok(c) => c,
        Err(e) => return Ok(Outcome::Rejected(e.to_string())),
    };
    let mut sparse = match SparseTensor::try_from_coo(&coo, fmt.clone()) {
        Ok(s) => s,
        Err(e) => return Ok(Outcome::Rejected(e.to_string())),
    };
    sparse.set_index_width(width);
    let x = dense_x(tri.ncols);
    let want = tri.dense_spmv(&x);
    let spec = KernelSpec::spmv(ValueKind::F64);

    let mut reference: Option<Vec<u64>> = None;
    for strat in [
        PrefetchStrategy::none(),
        PrefetchStrategy::asap(distance),
        PrefetchStrategy::aj(distance),
    ] {
        let ck = compile_with_width(&spec, fmt, width, &strat).map_err(|e| {
            format!(
                "{fmt}/{}: compile failed on valid input: {e}",
                strat.label()
            )
        })?;
        let y = match engines_agree(&ck, &sparse, &x)
            .map_err(|e| format!("{fmt}/{}: {e}", strat.label()))?
        {
            EngineAgreement::Agreed { y, .. } => y,
            EngineAgreement::Trapped(e) => {
                return Err(format!(
                    "{fmt}/{}: run failed on valid input: {e}",
                    strat.label()
                ))
            }
        };
        if y.len() != want.len() {
            return Err(format!(
                "{fmt}/{}: output length {} vs reference {}",
                strat.label(),
                y.len(),
                want.len()
            ));
        }
        for (i, (g, w)) in y.iter().zip(&want).enumerate() {
            if (g - w).abs() > 1e-9 * (1.0 + w.abs()) {
                return Err(format!(
                    "{fmt}/{}: row {i}: {g} vs dense reference {w}",
                    strat.label()
                ));
            }
        }
        let bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => {
                if &bits != r {
                    return Err(format!(
                        "{fmt}/{}: output bits differ from baseline",
                        strat.label()
                    ));
                }
            }
        }
    }
    Ok(Outcome::Verified)
}

/// Render a matrix as MatrixMarket bytes (the corruptors' substrate).
pub fn to_mtx_bytes(tri: &Triplets) -> Vec<u8> {
    let mut buf = Vec::new();
    // Writing to a Vec cannot fail.
    write_matrix_market(tri, &mut buf).expect("in-memory write");
    buf
}

/// Named byte-level corruptions of a MatrixMarket stream. Each returned
/// `(label, bytes)` must make [`read_matrix_market`] report a typed error
/// (asserted by [`corruption_must_error`]) — never panic.
pub fn corruptions(bytes: &[u8], rng: &mut Rng64) -> Vec<(String, Vec<u8>)> {
    let text = String::from_utf8_lossy(bytes).into_owned();
    let lines: Vec<&str> = text.lines().collect();
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();

    // Truncation mid-stream: drop the tail starting at a random entry.
    if lines.len() > 4 {
        let cut = 3 + rng.usize_below(lines.len() - 4);
        let mut t: String = lines[..cut].join("\n");
        t.push('\n');
        out.push(("truncated".into(), t.into_bytes()));
    }

    // Garbage header.
    out.push((
        "bad-header".into(),
        format!("%%NotMatrixMarket\n{}", lines[1..].join("\n")).into_bytes(),
    ));

    // Garbage size line.
    if let Some(size_idx) = lines
        .iter()
        .skip(1)
        .position(|l| !l.starts_with('%') && !l.trim().is_empty())
        .map(|i| i + 1)
    {
        let mut garbled: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        garbled[size_idx] = "not a size line".into();
        out.push(("bad-size-line".into(), garbled.join("\n").into_bytes()));

        // nnz claiming more entries than follow.
        let mut surplus: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        surplus[size_idx] = {
            let mut it = lines[size_idx].split_whitespace();
            let r = it.next().unwrap_or("1");
            let c = it.next().unwrap_or("1");
            format!("{r} {c} 99999999")
        };
        out.push(("wrong-entry-count".into(), surplus.join("\n").into_bytes()));

        // Dimensions near usize::MAX: must die at the reader's size cap,
        // not overflow downstream extent/reservation arithmetic.
        let mut huge: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        huge[size_idx] = format!("{} {} 1", usize::MAX, usize::MAX >> 1);
        out.push(("huge-dims".into(), huge.join("\n").into_bytes()));

        // Entry lines exist beyond this point: corrupt one of them.
        if size_idx + 1 < lines.len() {
            let entry_span = lines.len() - size_idx - 1;

            // Zero-based coordinates (MatrixMarket is 1-based).
            let mut z: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            let k = size_idx + 1 + rng.usize_below(entry_span);
            let rest: Vec<&str> = lines[k].split_whitespace().skip(1).collect();
            z[k] = format!("0 {}", rest.join(" "));
            out.push(("zero-based-coord".into(), z.join("\n").into_bytes()));

            // Non-numeric entry field.
            let mut nn: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            let k = size_idx + 1 + rng.usize_below(entry_span);
            nn[k] = "1 fish 1.0".into();
            out.push(("non-numeric-field".into(), nn.join("\n").into_bytes()));
        }
    }

    // Raw byte smash: overwrite a random window with non-numeric noise.
    if bytes.len() > 60 {
        let mut b = bytes.to_vec();
        let start = 40 + rng.usize_below(b.len() - 50);
        for (i, slot) in b[start..].iter_mut().take(8).enumerate() {
            *slot = b"@#$%!&*~"[i % 8];
        }
        out.push(("byte-smash".into(), b));
    }

    out
}

/// Assert the corruption contract on one stream: parsing must return a
/// typed error whose message is non-empty (useful diagnostics), and must
/// not panic. Returns the error display for further assertions, or a
/// violation description.
pub fn corruption_must_error(label: &str, bytes: &[u8]) -> Result<String, String> {
    match read_matrix_market(bytes) {
        Err(e) => {
            let msg = e.to_string();
            if msg.trim().is_empty() {
                Err(format!("{label}: error display is empty"))
            } else {
                Ok(msg)
            }
        }
        Ok(t) => Err(format!(
            "{label}: corrupt stream parsed as a {}x{} matrix with {} entries",
            t.nrows,
            t.ncols,
            t.nnz()
        )),
    }
}

/// One full fixed-seed differential fuzzing pass: `cases` random matrices
/// across formats and index widths, plus every degenerate case, plus the
/// corruption stage. Returns `(verified, rejected)` counts or the first
/// oracle violation. This is what CI's smoke stage runs.
pub fn fuzz_smoke(seed: u64, cases: usize) -> Result<(usize, usize), String> {
    let mut rng = Rng64::seed_from_u64(seed);
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let (mut verified, mut rejected) = (0usize, 0usize);

    let mut check = |label: &str, tri: &Triplets, rng: &mut Rng64| -> Result<(), String> {
        let fmt = &formats[rng.usize_below(formats.len())];
        let width = widths[rng.usize_below(widths.len())];
        let distance = rng.gen_range(1..96usize);
        match differential_spmv(tri, fmt, width, distance)
            .map_err(|e| format!("case {label}: {e}"))?
        {
            Outcome::Verified => verified += 1,
            Outcome::Rejected(_) => rejected += 1,
        }
        Ok(())
    };

    for i in 0..cases {
        let tri = random_triplets(&mut rng, 32, 160);
        check(&format!("random-{i}"), &tri, &mut rng)?;
    }
    for (label, tri) in degenerate_cases(seed ^ 0xdead_beef) {
        check(&label, &tri, &mut rng)?;
    }

    // Corruption stage: parser never panics, always reports usefully.
    let tri = random_triplets(&mut rng, 16, 60);
    let bytes = to_mtx_bytes(&tri);
    for (label, corrupt) in corruptions(&bytes, &mut rng) {
        corruption_must_error(&label, &corrupt)?;
    }
    Ok((verified, rejected))
}

/// Chaos mode: inject tiny fuel budgets into otherwise-valid runs and
/// assert uniform governed degradation. For each case, every strategy
/// (Baseline / ASaP / A&J) runs under the same budget on both engines;
/// the contract is that each one
///
/// 1. traps (the budget is sized below the loop trip count — a run that
///    completes means fuel accounting missed iterations),
/// 2. traps *identically across engines* (checked by
///    [`engines_agree_budgeted`]: same typed error, same op location,
///    identical event prefix), and
/// 3. degrades to the same structured `(resource, spent, limit)` triple
///    as every other strategy — prefetch injection must not change
///    where governance bites, only the op location may move.
///
/// Returns the number of cases that trapped cleanly, or the first
/// violation. Budgets here are deterministic (fuel only): wall-clock
/// deadlines would make the cross-engine comparison racy.
pub fn fuzz_chaos(seed: u64, cases: usize) -> Result<usize, String> {
    let mut rng = Rng64::seed_from_u64(seed);
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut trapped = 0usize;

    for case in 0..cases {
        // A full diagonal plus random extras: after deduplication the
        // matrix still has at least `n` entries and `n` populated rows,
        // so every format's loop structure runs well past any fuel
        // injected below.
        let n = 24 + rng.usize_below(40);
        let mut tri = Triplets::new(n, n);
        for r in 0..n {
            tri.push(r, r, 1.0 + r as f64);
        }
        for _ in 0..rng.usize_below(3 * n) {
            tri.push(
                rng.usize_below(n),
                rng.usize_below(n),
                rng.gen_range(-2.0..2.0),
            );
        }
        let fmt = &formats[rng.usize_below(formats.len())];
        let width = widths[rng.usize_below(widths.len())];
        let distance = rng.gen_range(1..96usize);
        let fuel = 1 + rng.usize_below(3) as u64;
        let budget = Budget::unlimited().with_fuel(fuel);

        let coo = tri
            .try_to_coo_f64()
            .map_err(|e| format!("case {case}: {e}"))?;
        let mut sparse = SparseTensor::try_from_coo(&coo, fmt.clone())
            .map_err(|e| format!("case {case}: {e}"))?;
        sparse.set_index_width(width);
        let x = dense_x(n);

        let mut violation: Option<BudgetError> = None;
        for strat in [
            PrefetchStrategy::none(),
            PrefetchStrategy::asap(distance),
            PrefetchStrategy::aj(distance),
        ] {
            let label = strat.label();
            let ck = compile_with_width(&spec, fmt, width, &strat)
                .map_err(|e| format!("case {case} {fmt}/{label}: compile failed: {e}"))?;
            match engines_agree_budgeted(&ck, &sparse, &x, &budget)
                .map_err(|e| format!("case {case} {fmt}/{label}: {e}"))?
            {
                EngineAgreement::Trapped(_) => {}
                EngineAgreement::Agreed { .. } => {
                    return Err(format!(
                        "case {case} {fmt}/{label}: fuel {fuel} on a {n}x{n} \
                         matrix must trap, but the run completed"
                    ))
                }
            }
            // The display strings already matched across engines; now
            // check the *structured* trap against the other strategies.
            let err = run_spmv_f64_budgeted(
                &ck,
                &sparse,
                &x,
                &mut asap_ir::NullModel,
                ExecEngine::Auto,
                &budget,
            )
            .expect_err("the same budgeted run trapped above");
            let v = err.budget_violation().ok_or_else(|| {
                format!("case {case} {fmt}/{label}: trap is not a budget error: {err}")
            })?;
            match &violation {
                None => violation = Some(v),
                Some(prev) if *prev != v => {
                    return Err(format!(
                        "case {case} {fmt}/{label}: strategies degrade differently: \
                         {prev} vs {v}"
                    ))
                }
                Some(_) => {}
            }
        }
        trapped += 1;
    }
    Ok(trapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_triplets(&mut Rng64::seed_from_u64(9), 20, 50);
        let b = random_triplets(&mut Rng64::seed_from_u64(9), 20, 50);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.cols, b.cols);
        assert_eq!(a.vals, b.vals);
    }

    #[test]
    fn degenerate_set_covers_the_documented_shapes() {
        let labels: Vec<String> = degenerate_cases(1).into_iter().map(|(l, _)| l).collect();
        for want in [
            "empty-5x7",
            "zero-rows-0x4",
            "all-degree-1",
            "heavy-duplicates",
            "row-out-of-range",
        ] {
            assert!(labels.iter().any(|l| l == want), "missing {want}");
        }
    }

    #[test]
    fn engines_agree_on_a_healthy_kernel() {
        let mut rng = Rng64::seed_from_u64(7);
        let tri = random_triplets(&mut rng, 12, 60);
        let coo = tri.try_to_coo_f64().unwrap();
        let sparse = SparseTensor::try_from_coo(&coo, Format::csr()).unwrap();
        let spec = KernelSpec::spmv(ValueKind::F64);
        let ck = compile_with_width(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(6),
        )
        .unwrap();
        let x = dense_x(tri.ncols);
        match engines_agree(&ck, &sparse, &x).unwrap() {
            EngineAgreement::Agreed {
                y,
                events,
                instructions,
                tier2,
            } => {
                assert_eq!(y.len(), tri.nrows);
                assert!(events > 0, "SpMV must touch memory");
                assert!(instructions > events as u64);
                assert_eq!(
                    tier2,
                    ck.tier2.is_some(),
                    "the tier-2 leg runs iff the kernel specialized"
                );
                assert!(tier2, "ASaP CSR SpMV must specialize to tier-2");
            }
            EngineAgreement::Trapped(e) => panic!("healthy kernel trapped: {e}"),
        }
    }

    #[test]
    fn oracle_verifies_a_healthy_matrix() {
        let mut rng = Rng64::seed_from_u64(3);
        let tri = random_triplets(&mut rng, 16, 80);
        let out = differential_spmv(&tri, &Format::csr(), IndexWidth::U32, 8).unwrap();
        assert_eq!(out, Outcome::Verified);
    }

    #[test]
    fn oracle_rejects_out_of_range_coordinates() {
        let mut t = Triplets::new(3, 3);
        t.rows.push(5);
        t.cols.push(0);
        t.vals.push(1.0);
        let out = differential_spmv(&t, &Format::csr(), IndexWidth::U64, 4).unwrap();
        match out {
            Outcome::Rejected(msg) => assert!(msg.contains("out of bounds"), "{msg}"),
            Outcome::Verified => panic!("out-of-range coordinates must be rejected"),
        }
    }

    #[test]
    fn corruptors_produce_parse_errors() {
        let mut rng = Rng64::seed_from_u64(11);
        let tri = random_triplets(&mut rng, 10, 40);
        let bytes = to_mtx_bytes(&tri);
        let variants = corruptions(&bytes, &mut rng);
        assert!(
            variants.len() >= 5,
            "want a corruption battery, got {}",
            variants.len()
        );
        for (label, corrupt) in variants {
            corruption_must_error(&label, &corrupt).unwrap();
        }
    }

    #[test]
    fn smoke_pass_runs_clean() {
        let (verified, rejected) = fuzz_smoke(42, 16).unwrap();
        assert!(verified > 0);
        // The degenerate set always contains rejectable inputs.
        assert!(rejected >= 2, "expected out-of-range cases to be rejected");
    }

    #[test]
    fn budgeted_engines_trap_identically() {
        let mut rng = Rng64::seed_from_u64(21);
        let tri = random_triplets(&mut rng, 30, 150);
        let coo = tri.try_to_coo_f64().unwrap();
        let sparse = SparseTensor::try_from_coo(&coo, Format::csr()).unwrap();
        let spec = KernelSpec::spmv(ValueKind::F64);
        let ck = compile_with_width(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(8),
        )
        .unwrap();
        let x = dense_x(tri.ncols);
        let budget = Budget::unlimited().with_fuel(2);
        match engines_agree_budgeted(&ck, &sparse, &x, &budget).unwrap() {
            EngineAgreement::Trapped(msg) => {
                assert!(msg.contains("fuel"), "trap must name the resource: {msg}")
            }
            EngineAgreement::Agreed { .. } => panic!("2 units of fuel cannot finish an SpMV"),
        }
    }

    #[test]
    fn chaos_pass_runs_clean() {
        let trapped = fuzz_chaos(7, 6).unwrap();
        assert_eq!(trapped, 6, "every chaos case must trap cleanly");
    }
}
