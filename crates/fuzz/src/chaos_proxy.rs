//! Deterministic socket-level chaos: a TCP fault-injection proxy and a
//! battery of hostile HTTP byte streams.
//!
//! PR 1's differential fuzzer proved the compute pipeline against
//! hostile *inputs*; this module extends the same fixed-seed discipline
//! to the *network* layer. The proxy sits between a client and
//! `asap-serve`, forwarding bytes through a per-connection fault plan
//! drawn from a seeded [`Rng64`]: delays, slow-loris byte drips, write
//! splits at arbitrary boundaries, mid-stream truncation, byte
//! corruption, and abrupt aborts (closing a socket with unread data
//! pending, which the kernel answers with RST on Linux). Every plan is
//! a pure function of `(proxy seed, connection index)`, so a failing
//! soak case replays from the seed printed in the assertion message.
//!
//! The hostile-protocol battery ([`hostile_protocol_cases`]) is the
//! request-line/header analogue of the MatrixMarket corruptors: each
//! case is raw bytes the server must answer with a typed 4xx or close
//! cleanly — never a panic, never a hang, never an unbounded buffer.

pub use asap_matrices::Rng64;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One fault applied to one direction of one proxied connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward unchanged (split into whatever chunks arrive).
    None,
    /// Hold the first forwarded chunk back for this many milliseconds.
    DelayMs(u64),
    /// Slow-loris: forward the first [`DRIP_WINDOW`] bytes in
    /// `chunk`-byte writes with `pause_ms` between each, then stream
    /// the remainder normally (so plans always terminate).
    Drip { chunk: usize, pause_ms: u64 },
    /// Re-chunk the stream into writes of at most `max_chunk` bytes,
    /// exercising every parser resume point without changing content.
    Split { max_chunk: usize },
    /// Forward `after` bytes, then close both directions cleanly (FIN).
    Truncate { after: usize },
    /// XOR the byte at stream offset `offset` with `mask` (mask is
    /// never 0, so the stream always differs).
    Corrupt { offset: usize, mask: u8 },
    /// Forward `after` bytes, then drop both sockets without reading
    /// pending data — unread bytes make the kernel send RST.
    Abort { after: usize },
}

impl Fault {
    /// Stable label for per-kind accounting.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::DelayMs(_) => "delay",
            Fault::Drip { .. } => "drip",
            Fault::Split { .. } => "split",
            Fault::Truncate { .. } => "truncate",
            Fault::Corrupt { .. } => "corrupt",
            Fault::Abort { .. } => "abort",
        }
    }

    /// Whether this fault can destroy the request/response exchange
    /// (as opposed to merely delaying or re-chunking it).
    pub fn destructive(&self) -> bool {
        matches!(
            self,
            Fault::Truncate { .. } | Fault::Corrupt { .. } | Fault::Abort { .. }
        )
    }
}

/// Bytes subject to dripping before a `Drip` plan reverts to normal
/// streaming. Covers a whole request head; keeps plans time-bounded.
pub const DRIP_WINDOW: usize = 256;

/// Per-direction fault probabilities (the remainder is [`Fault::None`]).
/// Draw order is fixed — delay, drip, split, truncate, corrupt, abort —
/// so a config is a deterministic partition of `[0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultWeights {
    pub delay: f64,
    pub drip: f64,
    pub split: f64,
    pub truncate: f64,
    pub corrupt: f64,
    pub abort: f64,
}

impl FaultWeights {
    /// No faults at all (a transparent proxy direction).
    pub fn clean() -> FaultWeights {
        FaultWeights {
            delay: 0.0,
            drip: 0.0,
            split: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            abort: 0.0,
        }
    }

    fn draw(&self, rng: &mut Rng64, max_delay_ms: u64) -> Fault {
        let p = rng.gen_f64();
        let mut edge = self.delay;
        if p < edge {
            return Fault::DelayMs(1 + rng.next_u64() % max_delay_ms.max(1));
        }
        edge += self.drip;
        if p < edge {
            return Fault::Drip {
                chunk: 1 + rng.usize_below(16),
                pause_ms: 1 + rng.next_u64() % 3,
            };
        }
        edge += self.split;
        if p < edge {
            return Fault::Split {
                max_chunk: 1 + rng.usize_below(32),
            };
        }
        edge += self.truncate;
        if p < edge {
            return Fault::Truncate {
                after: rng.usize_below(DRIP_WINDOW),
            };
        }
        edge += self.corrupt;
        if p < edge {
            return Fault::Corrupt {
                offset: rng.usize_below(DRIP_WINDOW),
                mask: 1 + (rng.next_u64() % 255) as u8,
            };
        }
        edge += self.abort;
        if p < edge {
            return Fault::Abort {
                after: rng.usize_below(DRIP_WINDOW),
            };
        }
        Fault::None
    }
}

/// Fault plan generator for a whole proxy: independent weights for the
/// two directions of each connection.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// client → server faults.
    pub inbound: FaultWeights,
    /// server → client faults.
    pub outbound: FaultWeights,
    /// Upper bound for [`Fault::DelayMs`] draws.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// The soak-test mix: every fault kind occurs, destructive faults
    /// on both directions, delays kept short so runs stay fast.
    pub fn soak() -> ChaosConfig {
        ChaosConfig {
            inbound: FaultWeights {
                delay: 0.10,
                drip: 0.10,
                split: 0.20,
                truncate: 0.10,
                corrupt: 0.08,
                abort: 0.10,
            },
            outbound: FaultWeights {
                delay: 0.05,
                drip: 0.05,
                split: 0.15,
                truncate: 0.08,
                corrupt: 0.05,
                abort: 0.08,
            },
            max_delay_ms: 20,
        }
    }

    /// The loadgen `--chaos` mix: >10% of connections draw a
    /// destructive inbound fault, so goodput under this schedule is
    /// only nonzero if the retry layer works.
    pub fn loadgen() -> ChaosConfig {
        ChaosConfig {
            inbound: FaultWeights {
                delay: 0.05,
                drip: 0.03,
                split: 0.15,
                truncate: 0.08,
                corrupt: 0.04,
                abort: 0.08,
            },
            outbound: FaultWeights {
                delay: 0.03,
                drip: 0.02,
                split: 0.10,
                truncate: 0.04,
                corrupt: 0.03,
                abort: 0.04,
            },
            max_delay_ms: 10,
        }
    }
}

/// What one proxied connection was subjected to and what flowed.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    pub id: u64,
    pub inbound: Fault,
    pub outbound: Fault,
    pub client_to_server_bytes: u64,
    pub server_to_client_bytes: u64,
}

#[derive(Default)]
struct ProxyShared {
    stop: AtomicBool,
    connections: AtomicU64,
    upstream_failures: AtomicU64,
    records: Mutex<Vec<ConnRecord>>,
}

/// Point-in-time accounting for a proxy run.
#[derive(Debug, Clone, Default)]
pub struct ProxyStats {
    pub connections: u64,
    /// Accepted client connections the proxy could not relay because
    /// the upstream connect failed.
    pub upstream_failures: u64,
    pub records: Vec<ConnRecord>,
}

impl ProxyStats {
    /// Connections whose plan included at least one destructive fault.
    pub fn destructive(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.inbound.destructive() || r.outbound.destructive())
            .count()
    }

    /// Count of connections whose plan drew `label` on either direction.
    pub fn by_label(&self, label: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.inbound.label() == label || r.outbound.label() == label)
            .count()
    }
}

/// A running fault-injection proxy. Call [`ChaosProxy::stop`] (or drop)
/// to tear it down; [`ChaosProxy::stats`] reports what it injected.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

/// Poll interval for the proxy's non-blocking accept loop and the
/// pumps' read timeout, bounding reaction time to `stop`.
const PROXY_POLL: Duration = Duration::from_millis(2);

impl ChaosProxy {
    /// Listen on an ephemeral loopback port and relay every connection
    /// to `upstream` through a fault plan seeded by
    /// `seed ^ connection_index`.
    pub fn start(
        upstream: SocketAddr,
        seed: u64,
        config: ChaosConfig,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared::default());
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("chaos-proxy".into())
                .spawn(move || accept_loop(listener, upstream, seed, config, &shared))?
        };
        Ok(ChaosProxy {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join every relay thread, and return the final
    /// accounting. Idempotent: a second call returns the same stats.
    pub fn stop(&mut self) -> ProxyStats {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(a) = self.accept.take() {
            if let Ok(conns) = a.join() {
                for c in conns {
                    let _ = c.join();
                }
            }
        }
        self.stats()
    }

    /// Current accounting (complete once [`ChaosProxy::stop`] returned).
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            upstream_failures: self.shared.upstream_failures.load(Ordering::Relaxed),
            records: self
                .shared
                .records
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    seed: u64,
    config: ChaosConfig,
    shared: &Arc<ProxyShared>,
) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return conns;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let id = shared.connections.fetch_add(1, Ordering::Relaxed);
                // Per-connection schedule: a pure function of the proxy
                // seed and the connection index (golden-ratio mixing so
                // consecutive ids decorrelate).
                let mut rng = Rng64::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let inbound = config.inbound.draw(&mut rng, config.max_delay_ms);
                let outbound = config.outbound.draw(&mut rng, config.max_delay_ms);
                let shared = shared.clone();
                if let Ok(h) = std::thread::Builder::new()
                    .name(format!("chaos-conn-{id}"))
                    .spawn(move || relay(client, upstream, id, inbound, outbound, &shared))
                {
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(PROXY_POLL);
            }
            Err(_) => std::thread::sleep(PROXY_POLL),
        }
    }
}

fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    id: u64,
    inbound: Fault,
    outbound: Fault,
    shared: &Arc<ProxyShared>,
) {
    let record = |c2s: u64, s2c: u64| {
        shared
            .records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(ConnRecord {
                id,
                inbound: inbound.clone(),
                outbound: outbound.clone(),
                client_to_server_bytes: c2s,
                server_to_client_bytes: s2c,
            });
    };
    let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) {
        Ok(s) => s,
        Err(_) => {
            shared.upstream_failures.fetch_add(1, Ordering::Relaxed);
            record(0, 0);
            return;
        }
    };
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        record(0, 0);
        return;
    };
    let c2s_bytes = Arc::new(AtomicU64::new(0));
    let s2c_bytes = Arc::new(AtomicU64::new(0));
    // One pump exiting (fault fired, EOF, error) must release the
    // other: each holds clones of both sockets, so an `Abort`'s drop
    // sends nothing on the wire until BOTH pumps let go. Without this
    // flag the surviving pump pins the connection open and the client
    // only escapes via its own read timeout.
    let dead = Arc::new(AtomicBool::new(false));
    let up = {
        let (fault, bytes, stop) = (inbound.clone(), c2s_bytes.clone(), shared.clone());
        let dead = dead.clone();
        std::thread::Builder::new()
            .name(format!("chaos-up-{id}"))
            .spawn(move || pump(client, server, fault, &bytes, &stop.stop, &dead))
    };
    // The downstream pump runs on this thread; the upstream half joins
    // after, so `relay` returning means the connection is fully torn
    // down and its byte counts are final. Dropping the last socket
    // clones here is what actually closes the wire — RST if an `Abort`
    // left unread bytes in a receive buffer, FIN otherwise.
    pump(
        server2,
        client2,
        outbound.clone(),
        &s2c_bytes,
        &shared.stop,
        &dead,
    );
    if let Ok(h) = up {
        let _ = h.join();
    }
    record(
        c2s_bytes.load(Ordering::Relaxed),
        s2c_bytes.load(Ordering::Relaxed),
    );
}

/// Copy `src` → `dst` through a fault plan until EOF, error, plan
/// cutoff, or proxy stop. Forwarded byte counts land in `bytes`.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    fault: Fault,
    bytes: &AtomicU64,
    stop: &AtomicBool,
    dead: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 4096];
    let mut offset: usize = 0; // absolute position in the forwarded stream
    let mut delayed = matches!(fault, Fault::DelayMs(_));
    loop {
        if stop.load(Ordering::Acquire) {
            dead.store(true, Ordering::Release);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if dead.load(Ordering::Acquire) {
            // The peer pump ended the connection. Return without a
            // shutdown: `relay` dropping the last socket clones decides
            // how the wire closes (RST after an abort, FIN otherwise).
            return;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => {
                // EOF: propagate the half-close so the destination's
                // parser sees the same framing the source sent.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                dead.store(true, Ordering::Release);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        let mut data = chunk[..n].to_vec();

        if delayed {
            if let Fault::DelayMs(ms) = fault {
                std::thread::sleep(Duration::from_millis(ms));
            }
            delayed = false;
        }
        if let Fault::Corrupt { offset: at, mask } = fault {
            if at >= offset && at < offset + data.len() {
                data[at - offset] ^= mask;
            }
        }
        let cutoff = match fault {
            // Forward up to the cutoff, then end the stream.
            Fault::Truncate { after } | Fault::Abort { after } => {
                Some(after.saturating_sub(offset).min(data.len()))
            }
            _ => None,
        };
        if let Some(keep) = cutoff {
            data.truncate(keep);
        }

        let write_ok = match fault {
            Fault::Drip { chunk, pause_ms } if offset < DRIP_WINDOW => {
                let mut ok = true;
                for piece in data.chunks(chunk.max(1)) {
                    if stop.load(Ordering::Acquire) || dst.write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                    let _ = dst.flush();
                    std::thread::sleep(Duration::from_millis(pause_ms));
                }
                ok
            }
            Fault::Split { max_chunk } => {
                let mut ok = true;
                for piece in data.chunks(max_chunk.max(1)) {
                    if dst.write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                    let _ = dst.flush();
                }
                ok
            }
            _ => dst.write_all(&data).and_then(|()| dst.flush()).is_ok(),
        };
        bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        offset += data.len();
        if !write_ok {
            dead.store(true, Ordering::Release);
            let _ = src.shutdown(Shutdown::Both);
            return;
        }
        match fault {
            Fault::Truncate { after } if offset >= after => {
                // Clean cut: half-close both ways so each side sees FIN.
                dead.store(true, Ordering::Release);
                let _ = dst.shutdown(Shutdown::Both);
                let _ = src.shutdown(Shutdown::Both);
                return;
            }
            Fault::Abort { after } if offset >= after => {
                // Abrupt cut with data potentially unread in a receive
                // buffer — once the peer pump releases its clones, the
                // close reaches the wire as RST.
                dead.store(true, Ordering::Release);
                drop(dst);
                drop(src);
                return;
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Hostile protocol battery
// ---------------------------------------------------------------------

/// What a hostile byte stream must provoke from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileExpect {
    /// Exactly this status code.
    Status(u16),
    /// Any complete response with a 4xx status.
    Any4xx,
    /// A complete response (any status) or a clean close — never a hang.
    ResponseOrClose,
}

/// One raw byte stream to throw at the server.
#[derive(Debug, Clone)]
pub struct HostileCase {
    pub label: String,
    pub bytes: Vec<u8>,
    pub expect: HostileExpect,
}

fn case(label: &str, bytes: Vec<u8>, expect: HostileExpect) -> HostileCase {
    HostileCase {
        label: label.to_string(),
        bytes,
        expect,
    }
}

/// The hostile-protocol battery: malformed request lines, oversized and
/// duplicate headers, lying `Content-Length`, pipelined junk, binary
/// garbage. `seed` perturbs the random-bytes cases; the structural
/// cases are fixed. Limits referenced here (`max_request_line`,
/// `max_headers`, `max_head_bytes`) are the server's published caps —
/// passed in so this crate does not depend on `asap-serve`.
pub fn hostile_protocol_cases(
    seed: u64,
    max_request_line: usize,
    max_headers: usize,
    max_head_bytes: usize,
) -> Vec<HostileCase> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x000f_f1ce);
    let mut out = Vec::new();

    // Binary garbage: no CRLF framing at all.
    let mut junk = vec![0u8; 64 + rng.usize_below(192)];
    for b in junk.iter_mut() {
        *b = (rng.next_u64() % 256) as u8;
    }
    // Keep it free of an accidental head terminator.
    let mut i = 0;
    while i + 3 < junk.len() {
        if &junk[i..i + 4] == b"\r\n\r\n" {
            junk[i] = b'x';
        }
        i += 1;
    }
    out.push(case("binary-garbage", junk, HostileExpect::ResponseOrClose));

    out.push(case(
        "empty-request-line",
        b"\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "whitespace-request-line",
        b"   \r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "no-path",
        b"GET\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "bad-version",
        b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "not-http",
        b"HELO chaos.example\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));

    // Request line just over the cap -> 414.
    let long_path = "a".repeat(max_request_line);
    out.push(case(
        "request-line-over-limit",
        format!("GET /{long_path} HTTP/1.1\r\n\r\n").into_bytes(),
        HostileExpect::Status(414),
    ));

    // One header too many -> 431.
    let mut many = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..=max_headers {
        many.push_str(&format!("X-H{i}: v\r\n"));
    }
    many.push_str("\r\n");
    out.push(case(
        "too-many-headers",
        many.into_bytes(),
        HostileExpect::Status(431),
    ));

    // A single header whose value blows the total head cap -> 431.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nX-Big: {}\r\n\r\n",
        "b".repeat(max_head_bytes + 1024)
    );
    out.push(case(
        "oversized-header",
        huge.into_bytes(),
        HostileExpect::Status(431),
    ));

    // Conflicting and duplicate Content-Length -> 400.
    out.push(case(
        "conflicting-content-length",
        b"POST /v1/run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nabcd".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "duplicate-content-length",
        b"POST /v1/run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "negative-content-length",
        b"POST /v1/run HTTP/1.1\r\nContent-Length: -1\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));
    out.push(case(
        "overflow-content-length",
        b"POST /v1/run HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));

    // Lying Content-Length: promises more bytes than it sends, then
    // closes -> truncated body, 400.
    out.push(case(
        "content-length-over-actual",
        b"POST /v1/run HTTP/1.1\r\nContent-Length: 999\r\n\r\n{}".to_vec(),
        HostileExpect::Status(400),
    ));
    // Sends more than it declares: the extras are pipelined junk the
    // server must ignore (one request per connection).
    out.push(case(
        "content-length-under-actual",
        b"GET /healthz HTTP/1.1\r\nContent-Length: 2\r\n\r\nababEXTRAJUNKBYTES".to_vec(),
        HostileExpect::Status(200),
    ));

    // Pipelined second request: answered request one, then close.
    out.push(case(
        "pipelined-junk",
        b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n".to_vec(),
        HostileExpect::Status(200),
    ));

    // Header line with no colon: framing junk, not a header.
    out.push(case(
        "colonless-header",
        b"GET /healthz HTTP/1.1\r\nthis is not a header\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));

    // NUL byte embedded in the head.
    out.push(case(
        "nul-in-header",
        b"GET /healthz HTTP/1.1\r\nX-A: a\x00b\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));

    // CRLF injection: a value carrying its own CRLF becomes a second
    // header line — here a smuggled duplicate Content-Length, which the
    // duplicate check must catch.
    out.push(case(
        "crlf-injected-content-length",
        b"POST /v1/run HTTP/1.1\r\nX-A: v\r\nContent-Length: 2\r\nContent-Length: 0\r\n\r\nok"
            .to_vec(),
        HostileExpect::Status(400),
    ));

    // Chunked transfer-encoding is outside the supported subset.
    out.push(case(
        "transfer-encoding",
        b"POST /v1/run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        HostileExpect::Status(400),
    ));

    // UTF-8 violation in the head.
    out.push(case(
        "non-utf8-head",
        b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec(),
        HostileExpect::Any4xx,
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot echo server: reads until EOF or `\r\n\r\n`, writes a
    /// fixed banner plus the byte count, closes.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            for stream in listener.incoming().take(1) {
                let Ok(mut s) = stream else { return };
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    match s.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                                break;
                            }
                        }
                    }
                }
                let _ = s.write_all(format!("echo:{}", buf.len()).as_bytes());
            }
        });
        (addr, h)
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let w = ChaosConfig::soak();
        let draw = |seed: u64, id: u64| {
            let mut rng = Rng64::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (
                w.inbound.draw(&mut rng, w.max_delay_ms),
                w.outbound.draw(&mut rng, w.max_delay_ms),
            )
        };
        for id in 0..64 {
            assert_eq!(draw(7, id), draw(7, id), "id {id} not reproducible");
        }
        // Different seeds must not produce an identical 64-connection plan.
        let a: Vec<_> = (0..64).map(|id| draw(7, id)).collect();
        let b: Vec<_> = (0..64).map(|id| draw(8, id)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn weights_cover_every_fault_kind() {
        let w = ChaosConfig::soak();
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4096 {
            seen.insert(w.inbound.draw(&mut rng, w.max_delay_ms).label());
        }
        for want in [
            "none", "delay", "drip", "split", "truncate", "corrupt", "abort",
        ] {
            assert!(seen.contains(want), "fault kind {want} never drawn");
        }
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let (addr, server) = echo_server();
        let cfg = ChaosConfig {
            inbound: FaultWeights::clean(),
            outbound: FaultWeights::clean(),
            max_delay_ms: 1,
        };
        let mut proxy = ChaosProxy::start(addr, 1, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello\r\n\r\n").unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        c.read_to_string(&mut reply).unwrap();
        assert_eq!(reply, "echo:9");
        server.join().unwrap();
        let stats = proxy.stop();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.records.len(), 1);
        assert_eq!(stats.records[0].client_to_server_bytes, 9);
        assert_eq!(stats.records[0].inbound, Fault::None);
    }

    #[test]
    fn corrupting_proxy_changes_exactly_one_byte() {
        let (addr, server) = echo_server();
        // Force a corrupt fault on every inbound stream.
        let cfg = ChaosConfig {
            inbound: FaultWeights {
                corrupt: 1.0,
                ..FaultWeights::clean()
            },
            outbound: FaultWeights::clean(),
            max_delay_ms: 1,
        };
        let mut proxy = ChaosProxy::start(addr, 5, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello\r\n\r\n").unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        c.read_to_string(&mut reply).unwrap();
        // Length is preserved even though content was flipped (the echo
        // server counts bytes; corrupt never inserts or deletes).
        assert_eq!(reply, "echo:9");
        server.join().unwrap();
        let stats = proxy.stop();
        assert!(matches!(stats.records[0].inbound, Fault::Corrupt { .. }));
    }

    #[test]
    fn truncating_proxy_cuts_the_stream() {
        let (addr, server) = echo_server();
        let cfg = ChaosConfig {
            inbound: FaultWeights {
                truncate: 1.0,
                ..FaultWeights::clean()
            },
            outbound: FaultWeights::clean(),
            max_delay_ms: 1,
        };
        let mut proxy = ChaosProxy::start(addr, 11, cfg).unwrap();
        let msg = vec![b'x'; 1024];
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        // The write may itself fail once the proxy cuts the stream.
        let _ = c.write_all(&msg);
        let _ = c.shutdown(Shutdown::Write);
        let mut reply = String::new();
        let _ = c.read_to_string(&mut reply);
        server.join().unwrap();
        let stats = proxy.stop();
        let forwarded = stats.records[0].client_to_server_bytes;
        assert!(
            forwarded < 1024,
            "truncate must cut the 1024-byte stream, forwarded {forwarded}"
        );
    }

    #[test]
    fn hostile_battery_has_documented_coverage() {
        let cases = hostile_protocol_cases(9, 4096, 64, 16 * 1024);
        assert!(cases.len() >= 16, "battery size {}", cases.len());
        let labels: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
        for want in [
            "binary-garbage",
            "request-line-over-limit",
            "too-many-headers",
            "oversized-header",
            "conflicting-content-length",
            "content-length-over-actual",
            "pipelined-junk",
            "crlf-injected-content-length",
        ] {
            assert!(labels.contains(&want), "missing case {want}");
        }
        // Deterministic per seed.
        let again = hostile_protocol_cases(9, 4096, 64, 16 * 1024);
        assert_eq!(cases.len(), again.len());
        assert!(cases
            .iter()
            .zip(&again)
            .all(|(a, b)| a.label == b.label && a.bytes == b.bytes));
    }
}
