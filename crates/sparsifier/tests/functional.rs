//! Functional correctness: every sparsified kernel must compute the same
//! result as the dense reference contraction, for every format, value
//! kind, and index width — including property-based random inputs.

use asap_ir::NullModel;
use asap_sparsifier::{densify, reference_contraction, resolve_dims, run, sparsify, KernelSpec};
use asap_tensor::{CooTensor, DenseTensor, Format, IndexWidth, SparseTensor, ValueKind, Values};

fn approx_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
}

/// Run SpMV through the pipeline and the reference, compare.
fn check_spmv(coo: &CooTensor, format: Format, width: IndexWidth) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &format, width, None).unwrap();
    let mut sparse = SparseTensor::from_coo(coo, format.clone());
    sparse.set_index_width(width);
    let (m, n) = (coo.dims[0], coo.dims[1]);
    let c = DenseTensor::from_f64(vec![n], (0..n).map(|i| 0.5 + i as f64).collect());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![m]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[m, n], &[&[n]], &[m]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![m]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[m, n], &[&c], &mut aref);
    assert!(
        approx_eq(a.as_f64(), aref.as_f64()),
        "{format} mismatch:\n got {:?}\nwant {:?}",
        a.as_f64(),
        aref.as_f64()
    );
}

fn paper_coo() -> CooTensor {
    CooTensor::new(
        vec![3, 3],
        vec![0, 0, 0, 2, 2, 2],
        Values::F64(vec![1.0, 2.0, 3.0]),
    )
}

#[test]
fn spmv_paper_matrix_all_formats() {
    for fmt in [
        Format::csr(),
        Format::csc(),
        Format::coo(),
        Format::dcsr(),
        Format::dcsc(),
        Format::csf(2),
    ] {
        check_spmv(&paper_coo(), fmt.clone(), IndexWidth::U64);
        check_spmv(&paper_coo(), fmt, IndexWidth::U32);
    }
}

#[test]
fn spmv_empty_matrix() {
    let coo = CooTensor::new(vec![4, 4], vec![], Values::F64(vec![]));
    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
        check_spmv(&coo, fmt, IndexWidth::U64);
    }
}

#[test]
fn spmv_single_dense_row() {
    // One full row: a long inner segment.
    let coo = CooTensor::new(
        vec![3, 8],
        (0..8).flat_map(|j| [1, j]).collect(),
        Values::F64((0..8).map(|x| x as f64 + 1.0).collect()),
    );
    for fmt in [Format::csr(), Format::coo(), Format::dcsr(), Format::csc()] {
        check_spmv(&coo, fmt, IndexWidth::U32);
    }
}

#[test]
fn spmm_matches_reference() {
    let spec = KernelSpec::spmm(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let coo = paper_coo();
    let mut sparse = SparseTensor::from_coo(&coo, Format::csr());
    sparse.set_index_width(IndexWidth::U64);
    let n_cols = 4;
    let c = DenseTensor::from_f64(
        vec![3, n_cols],
        (0..3 * n_cols).map(|x| x as f64 * 0.25).collect(),
    );
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3, n_cols]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[3, 3], &[&[3, n_cols]], &[3, n_cols]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![3, n_cols]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[3, 3], &[&c], &mut aref);
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
}

#[test]
fn binary_spmv_uses_boolean_semiring() {
    let spec = KernelSpec::spmv(ValueKind::I8);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let coo = CooTensor::new(
        vec![2, 3],
        vec![0, 1, 1, 0, 1, 2],
        Values::I8(vec![1, 1, 1]),
    );
    let sparse = SparseTensor::from_coo(&coo, Format::csr());
    let c = DenseTensor::from_i8(vec![3], vec![0, 1, 0]);
    let mut a = DenseTensor::zeros(ValueKind::I8, vec![2]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();
    // Row 0 hits col 1 (c=1) -> 1; row 1 hits cols 0,2 (c=0) -> 0.
    assert_eq!(a.as_i8(), &[1, 0]);
}

#[test]
fn mttkrp_csf3_matches_reference() {
    let spec = KernelSpec::mttkrp(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csf(3), IndexWidth::U64, None).unwrap();
    let coo = CooTensor::new(
        vec![2, 3, 2],
        vec![0, 0, 1, 0, 2, 0, 1, 1, 1],
        Values::F64(vec![1.0, 2.0, 3.0]),
    );
    let mut sparse = SparseTensor::from_coo(&coo, Format::csf(3));
    sparse.set_index_width(IndexWidth::U64);
    let l = 2;
    let c = DenseTensor::from_f64(vec![3, l], (0..3 * l).map(|x| x as f64 + 1.0).collect());
    let d = DenseTensor::from_f64(vec![2, l], (0..2 * l).map(|x| 2.0 - x as f64).collect());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![2, l]);
    run(&kernel, &sparse, &[&c, &d], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[2, 3, 2], &[&[3, l], &[2, l]], &[2, l]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![2, l]);
    reference_contraction(
        &spec,
        &dims,
        &densify(&sparse),
        &[2, 3, 2],
        &[&c, &d],
        &mut aref,
    );
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
}

#[test]
fn binding_rejects_wrong_format() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let mut sparse = SparseTensor::from_coo(&paper_coo(), Format::dcsr());
    sparse.set_index_width(IndexWidth::U64);
    let c = DenseTensor::from_f64(vec![3], vec![1.0; 3]);
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    let err = run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap_err();
    assert_eq!(err.kind(), "binding");
    assert!(err.to_string().contains("stored as DCSR"), "{err}");
}

#[test]
fn binding_rejects_mismatched_shapes() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let sparse = SparseTensor::from_coo(&paper_coo(), Format::csr());
    let c = DenseTensor::from_f64(vec![5], vec![1.0; 5]); // wrong length
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    let err = run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap_err();
    assert_eq!(err.kind(), "binding");
    assert!(err.to_string().contains("index 1 bound to"), "{err}");
}

/// Minimal SplitMix64 — self-contained fixed-seed case generator (the
/// workspace builds without network access, so there is no external
/// property-testing crate). Assertion messages name the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random 2-D COO: shape up to `max_m` x `max_n`, 0..40 entries with
/// duplicates, values in [-4, 4).
fn random_coo(rng: &mut Rng, max_m: usize, max_n: usize) -> CooTensor {
    let m = 1 + rng.below(max_m);
    let n = 1 + rng.below(max_n);
    let entries = rng.below(40);
    let mut coords = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..entries {
        coords.push(rng.below(m));
        coords.push(rng.below(n));
        vals.push(rng.f64() * 8.0 - 4.0);
    }
    CooTensor::new(vec![m, n], coords, Values::F64(vals))
}

#[test]
fn prop_spmv_all_formats_match_reference() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed);
        let coo = random_coo(&mut rng, 12, 12);
        let width = if rng.below(2) == 0 {
            IndexWidth::U32
        } else {
            IndexWidth::U64
        };
        for fmt in [Format::csr(), Format::csc(), Format::coo(), Format::dcsr()] {
            check_spmv(&coo, fmt, width);
        }
    }
}

#[test]
fn prop_spmm_csr_matches_reference() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed ^ 0x500);
        let coo = random_coo(&mut rng, 8, 8);
        let n_cols = 1 + rng.below(5);
        let spec = KernelSpec::spmm(ValueKind::F64);
        let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
        let mut sparse = SparseTensor::from_coo(&coo, Format::csr());
        sparse.set_index_width(IndexWidth::U64);
        let (m, n) = (coo.dims[0], coo.dims[1]);
        let c = DenseTensor::from_f64(
            vec![n, n_cols],
            (0..n * n_cols).map(|x| (x % 7) as f64 - 3.0).collect(),
        );
        let mut a = DenseTensor::zeros(ValueKind::F64, vec![m, n_cols]);
        run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

        let dims = resolve_dims(&spec, &[m, n], &[&[n, n_cols]], &[m, n_cols]).unwrap();
        let mut aref = DenseTensor::zeros(ValueKind::F64, vec![m, n_cols]);
        reference_contraction(&spec, &dims, &densify(&sparse), &[m, n], &[&c], &mut aref);
        assert!(approx_eq(a.as_f64(), aref.as_f64()), "seed {seed}");
    }
}

#[test]
fn prop_storage_roundtrips() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed ^ 0x5707);
        let coo = random_coo(&mut rng, 10, 14);
        for fmt in [
            Format::csr(),
            Format::csc(),
            Format::coo(),
            Format::dcsr(),
            Format::dcsc(),
        ] {
            let t = SparseTensor::from_coo(&coo, fmt.clone());
            assert!(t.check_invariants().is_ok(), "seed {seed} {fmt}");
            let dense_direct = SparseTensor::from_coo(&coo, Format::csr()).to_dense_f64();
            assert_eq!(t.to_dense_f64(), dense_direct, "seed {seed} {fmt}");
        }
    }
}

#[test]
fn spmv_transposed_matches_reference() {
    // a(j) = B(i,j) * c(i): the reduction is the OUTER loop with CSR.
    let spec = KernelSpec::spmv_transposed(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let coo = paper_coo();
    let sparse = SparseTensor::from_coo(&coo, Format::csr());
    let c = DenseTensor::from_f64(vec![3], vec![1.0, 10.0, 100.0]);
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    // Reference: y = B^T c.
    let dims = resolve_dims(&spec, &[3, 3], &[&[3]], &[3]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![3]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[3, 3], &[&c], &mut aref);
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
    // B = [[1,0,2],[0,0,0],[0,0,3]]; B^T c = [1, 0, 2 + 300].
    assert_eq!(a.as_f64(), &[1.0, 0.0, 302.0]);
    // No scalarization: the innermost index j is parallel (in the output).
    let text = asap_ir::print_function(&kernel.func);
    assert!(!text.contains("iter_args"));
}

#[test]
fn spmv_transposed_with_asap_prefetching_hits_output_locates() {
    // In the transposed kernel the crd-resolved coordinate j indexes the
    // OUTPUT (a write target), not a dense input: no locate targets, so
    // the hook must not fire (the paper only prefetches read operands).
    use asap_sparsifier::RecordingHook;
    let spec = KernelSpec::spmv_transposed(ValueKind::F64);
    let mut hook = RecordingHook::default();
    sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap();
    assert!(hook.sites.is_empty(), "{:?}", hook.sites);
}
