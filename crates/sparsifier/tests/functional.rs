//! Functional correctness: every sparsified kernel must compute the same
//! result as the dense reference contraction, for every format, value
//! kind, and index width — including property-based random inputs.

use asap_ir::NullModel;
use asap_sparsifier::{densify, reference_contraction, resolve_dims, run, sparsify, KernelSpec};
use asap_tensor::{CooTensor, DenseTensor, Format, IndexWidth, SparseTensor, ValueKind, Values};
use proptest::prelude::*;

fn approx_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
}

/// Run SpMV through the pipeline and the reference, compare.
fn check_spmv(coo: &CooTensor, format: Format, width: IndexWidth) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &format, width, None).unwrap();
    let mut sparse = SparseTensor::from_coo(coo, format.clone());
    sparse.set_index_width(width);
    let (m, n) = (coo.dims[0], coo.dims[1]);
    let c = DenseTensor::from_f64(vec![n], (0..n).map(|i| 0.5 + i as f64).collect());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![m]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[m, n], &[&[n]], &[m]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![m]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[m, n], &[&c], &mut aref);
    assert!(
        approx_eq(a.as_f64(), aref.as_f64()),
        "{format} mismatch:\n got {:?}\nwant {:?}",
        a.as_f64(),
        aref.as_f64()
    );
}

fn paper_coo() -> CooTensor {
    CooTensor::new(
        vec![3, 3],
        vec![0, 0, 0, 2, 2, 2],
        Values::F64(vec![1.0, 2.0, 3.0]),
    )
}

#[test]
fn spmv_paper_matrix_all_formats() {
    for fmt in [
        Format::csr(),
        Format::csc(),
        Format::coo(),
        Format::dcsr(),
        Format::dcsc(),
        Format::csf(2),
    ] {
        check_spmv(&paper_coo(), fmt.clone(), IndexWidth::U64);
        check_spmv(&paper_coo(), fmt, IndexWidth::U32);
    }
}

#[test]
fn spmv_empty_matrix() {
    let coo = CooTensor::new(vec![4, 4], vec![], Values::F64(vec![]));
    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
        check_spmv(&coo, fmt, IndexWidth::U64);
    }
}

#[test]
fn spmv_single_dense_row() {
    // One full row: a long inner segment.
    let coo = CooTensor::new(
        vec![3, 8],
        (0..8).flat_map(|j| [1, j]).collect(),
        Values::F64((0..8).map(|x| x as f64 + 1.0).collect()),
    );
    for fmt in [Format::csr(), Format::coo(), Format::dcsr(), Format::csc()] {
        check_spmv(&coo, fmt, IndexWidth::U32);
    }
}

#[test]
fn spmm_matches_reference() {
    let spec = KernelSpec::spmm(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let coo = paper_coo();
    let mut sparse = SparseTensor::from_coo(&coo, Format::csr());
    sparse.set_index_width(IndexWidth::U64);
    let n_cols = 4;
    let c = DenseTensor::from_f64(
        vec![3, n_cols],
        (0..3 * n_cols).map(|x| x as f64 * 0.25).collect(),
    );
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3, n_cols]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[3, 3], &[&[3, n_cols]], &[3, n_cols]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![3, n_cols]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[3, 3], &[&c], &mut aref);
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
}

#[test]
fn binary_spmv_uses_boolean_semiring() {
    let spec = KernelSpec::spmv(ValueKind::I8);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let coo = CooTensor::new(vec![2, 3], vec![0, 1, 1, 0, 1, 2], Values::I8(vec![1, 1, 1]));
    let sparse = SparseTensor::from_coo(&coo, Format::csr());
    let c = DenseTensor::from_i8(vec![3], vec![0, 1, 0]);
    let mut a = DenseTensor::zeros(ValueKind::I8, vec![2]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();
    // Row 0 hits col 1 (c=1) -> 1; row 1 hits cols 0,2 (c=0) -> 0.
    assert_eq!(a.as_i8(), &[1, 0]);
}

#[test]
fn mttkrp_csf3_matches_reference() {
    let spec = KernelSpec::mttkrp(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csf(3), IndexWidth::U64, None).unwrap();
    let coo = CooTensor::new(
        vec![2, 3, 2],
        vec![0, 0, 1, 0, 2, 0, 1, 1, 1],
        Values::F64(vec![1.0, 2.0, 3.0]),
    );
    let mut sparse = SparseTensor::from_coo(&coo, Format::csf(3));
    sparse.set_index_width(IndexWidth::U64);
    let l = 2;
    let c = DenseTensor::from_f64(vec![3, l], (0..3 * l).map(|x| x as f64 + 1.0).collect());
    let d = DenseTensor::from_f64(vec![2, l], (0..2 * l).map(|x| 2.0 - x as f64).collect());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![2, l]);
    run(&kernel, &sparse, &[&c, &d], &mut a, &mut NullModel).unwrap();

    let dims = resolve_dims(&spec, &[2, 3, 2], &[&[3, l], &[2, l]], &[2, l]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![2, l]);
    reference_contraction(
        &spec,
        &dims,
        &densify(&sparse),
        &[2, 3, 2],
        &[&c, &d],
        &mut aref,
    );
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
}

#[test]
fn binding_rejects_wrong_format() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let mut sparse = SparseTensor::from_coo(&paper_coo(), Format::dcsr());
    sparse.set_index_width(IndexWidth::U64);
    let c = DenseTensor::from_f64(vec![3], vec![1.0; 3]);
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    let err = run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap_err();
    assert!(err.contains("stored as DCSR"), "{err}");
}

#[test]
fn binding_rejects_mismatched_shapes() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let sparse = SparseTensor::from_coo(&paper_coo(), Format::csr());
    let c = DenseTensor::from_f64(vec![5], vec![1.0; 5]); // wrong length
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    let err = run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap_err();
    assert!(err.contains("index 1 bound to"), "{err}");
}

/// Random COO generator for proptest.
fn coo_strategy(max_m: usize, max_n: usize) -> impl Strategy<Value = CooTensor> {
    (1..=max_m, 1..=max_n)
        .prop_flat_map(|(m, n)| {
            let entry = (0..m, 0..n, -4.0f64..4.0);
            (Just((m, n)), proptest::collection::vec(entry, 0..40))
        })
        .prop_map(|((m, n), entries)| {
            let mut coords = Vec::new();
            let mut vals = Vec::new();
            for (r, c, v) in entries {
                coords.extend_from_slice(&[r, c]);
                vals.push(v);
            }
            CooTensor::new(vec![m, n], coords, Values::F64(vals))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_spmv_all_formats_match_reference(coo in coo_strategy(12, 12), wide in any::<bool>()) {
        let width = if wide { IndexWidth::U64 } else { IndexWidth::U32 };
        for fmt in [Format::csr(), Format::csc(), Format::coo(), Format::dcsr()] {
            check_spmv(&coo, fmt, width);
        }
    }

    #[test]
    fn prop_spmm_csr_matches_reference(coo in coo_strategy(8, 8), n_cols in 1usize..6) {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
        let mut sparse = SparseTensor::from_coo(&coo, Format::csr());
        sparse.set_index_width(IndexWidth::U64);
        let (m, n) = (coo.dims[0], coo.dims[1]);
        let c = DenseTensor::from_f64(
            vec![n, n_cols],
            (0..n * n_cols).map(|x| (x % 7) as f64 - 3.0).collect(),
        );
        let mut a = DenseTensor::zeros(ValueKind::F64, vec![m, n_cols]);
        run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

        let dims = resolve_dims(&spec, &[m, n], &[&[n, n_cols]], &[m, n_cols]).unwrap();
        let mut aref = DenseTensor::zeros(ValueKind::F64, vec![m, n_cols]);
        reference_contraction(&spec, &dims, &densify(&sparse), &[m, n], &[&c], &mut aref);
        prop_assert!(approx_eq(a.as_f64(), aref.as_f64()));
    }

    #[test]
    fn prop_storage_roundtrips(coo in coo_strategy(10, 14)) {
        for fmt in [Format::csr(), Format::csc(), Format::coo(), Format::dcsr(), Format::dcsc()] {
            let t = SparseTensor::from_coo(&coo, fmt.clone());
            prop_assert!(t.check_invariants().is_ok(), "{fmt}");
            let dense_direct = SparseTensor::from_coo(&coo, Format::csr()).to_dense_f64();
            prop_assert_eq!(&t.to_dense_f64(), &dense_direct, "{}", fmt);
        }
    }
}

#[test]
fn spmv_transposed_matches_reference() {
    // a(j) = B(i,j) * c(i): the reduction is the OUTER loop with CSR.
    let spec = KernelSpec::spmv_transposed(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let coo = paper_coo();
    let sparse = SparseTensor::from_coo(&coo, Format::csr());
    let c = DenseTensor::from_f64(vec![3], vec![1.0, 10.0, 100.0]);
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
    run(&kernel, &sparse, &[&c], &mut a, &mut NullModel).unwrap();

    // Reference: y = B^T c.
    let dims = resolve_dims(&spec, &[3, 3], &[&[3]], &[3]).unwrap();
    let mut aref = DenseTensor::zeros(ValueKind::F64, vec![3]);
    reference_contraction(&spec, &dims, &densify(&sparse), &[3, 3], &[&c], &mut aref);
    assert!(approx_eq(a.as_f64(), aref.as_f64()));
    // B = [[1,0,2],[0,0,0],[0,0,3]]; B^T c = [1, 0, 2 + 300].
    assert_eq!(a.as_f64(), &[1.0, 0.0, 302.0]);
    // No scalarization: the innermost index j is parallel (in the output).
    let text = asap_ir::print_function(&kernel.func);
    assert!(!text.contains("iter_args"));
}

#[test]
fn spmv_transposed_with_asap_prefetching_hits_output_locates() {
    // In the transposed kernel the crd-resolved coordinate j indexes the
    // OUTPUT (a write target), not a dense input: no locate targets, so
    // the hook must not fire (the paper only prefetches read operands).
    use asap_sparsifier::RecordingHook;
    let spec = KernelSpec::spmv_transposed(ValueKind::F64);
    let mut hook = RecordingHook::default();
    sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap();
    assert!(hook.sites.is_empty(), "{:?}", hook.sites);
}
