//! Golden-shape tests: the sparsified loop structures must match the
//! paper's Figure 3 (COO / CSR / DCSR SpMV) and Figure 9 (SpMM).

use asap_ir::{print_function, OpKind};
use asap_sparsifier::{sparsify, KernelArg, KernelSpec, RecordingHook};
use asap_tensor::{Format, IndexWidth, ValueKind};

fn count_kind(f: &asap_ir::Function, pred: impl Fn(&OpKind) -> bool) -> usize {
    let mut n = 0;
    f.walk(&mut |op| {
        if pred(&op.kind) {
            n += 1;
        }
    });
    n
}

/// Loop nesting depth of the function (for + while).
fn loop_depth(r: &asap_ir::Region) -> usize {
    r.ops
        .iter()
        .map(|op| {
            let nested: usize = op
                .kind
                .regions()
                .iter()
                .map(|rr| loop_depth(rr))
                .max()
                .unwrap_or(0);
            match op.kind {
                OpKind::For { .. } | OpKind::While { .. } => 1 + nested,
                _ => nested,
            }
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn csr_spmv_is_a_perfect_two_level_nest() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    // Fig 3b: outer for over all rows, inner for over the row's segment.
    assert_eq!(count_kind(&k.func, |k| matches!(k, OpKind::For { .. })), 2);
    assert_eq!(
        count_kind(&k.func, |k| matches!(k, OpKind::While { .. })),
        0
    );
    assert_eq!(loop_depth(&k.func.body), 2);
    // Scalarized reduction: exactly one store (to a[i], once per row).
    assert_eq!(
        count_kind(&k.func, |k| matches!(k, OpKind::Store { .. })),
        1
    );
    let text = print_function(&k.func);
    assert!(
        text.contains("iter_args"),
        "reduction must be scalarized:\n{text}"
    );
}

#[test]
fn coo_spmv_has_dedup_while_loops() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::coo(), IndexWidth::U64, None).unwrap();
    // Fig 3a: outer while over entries + inner dedup while; one for loop
    // over each segment.
    assert_eq!(
        count_kind(&k.func, |k| matches!(k, OpKind::While { .. })),
        2
    );
    assert_eq!(count_kind(&k.func, |k| matches!(k, OpKind::For { .. })), 1);
    // Dedup comparison short-circuits through an scf.if.
    assert!(count_kind(&k.func, |k| matches!(k, OpKind::If { .. })) >= 1);
}

#[test]
fn dcsr_spmv_is_a_perfect_nest_skipping_empty_rows() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::dcsr(), IndexWidth::U64, None).unwrap();
    // Fig 3c: two perfect for loops, no while.
    assert_eq!(count_kind(&k.func, |k| matches!(k, OpKind::For { .. })), 2);
    assert_eq!(
        count_kind(&k.func, |k| matches!(k, OpKind::While { .. })),
        0
    );
    // Both levels compressed: two pos and two crd buffers in the signature.
    assert!(k.arg_position(KernelArg::Pos { level: 0 }).is_some());
    assert!(k.arg_position(KernelArg::Pos { level: 1 }).is_some());
    assert!(k.arg_position(KernelArg::Crd { level: 0 }).is_some());
    assert!(k.arg_position(KernelArg::Crd { level: 1 }).is_some());
}

#[test]
fn csr_spmm_matches_figure_9() {
    let spec = KernelSpec::spmm(ValueKind::F64);
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    // Fig 9: i / jj / k triple nest; accumulation through memory in the
    // k loop (one load+store of A per innermost iteration).
    assert_eq!(count_kind(&k.func, |k| matches!(k, OpKind::For { .. })), 3);
    assert_eq!(loop_depth(&k.func.body), 3);
    assert_eq!(
        count_kind(&k.func, |k| matches!(k, OpKind::Store { .. })),
        1
    );
    let text = print_function(&k.func);
    assert!(
        !text.contains("iter_args"),
        "SpMM k-loop is parallel; no scalarization expected:\n{text}"
    );
}

#[test]
fn narrow_indices_insert_casts() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k32 = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
    let k64 = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let casts32 = count_kind(&k32.func, |k| matches!(k, OpKind::Cast { .. }));
    let casts64 = count_kind(&k64.func, |k| matches!(k, OpKind::Cast { .. }));
    assert!(casts32 > 0, "u32 indices require index_cast");
    assert_eq!(casts64, 0, "u64 indices need no casts");
    let text = print_function(&k32.func);
    assert!(text.contains("memref<?xi32>"));
}

#[test]
fn hook_fires_once_for_spmv_at_the_compressed_level() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut hook = RecordingHook::default();
    sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
    // Exactly one iterate-and-locate site: level 1 resolving j, locating c.
    assert_eq!(hook.sites, vec![(1, 1)]);
}

#[test]
fn hook_fires_at_singleton_level_for_coo() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut hook = RecordingHook::default();
    sparsify(&spec, &Format::coo(), IndexWidth::U64, Some(&mut hook)).unwrap();
    // COO: j resolved at the singleton level (Fig 3a line 13).
    assert_eq!(hook.sites, vec![(1, 1)]);
}

#[test]
fn hook_fires_in_middle_loop_for_spmm() {
    let spec = KernelSpec::spmm(ValueKind::F64);
    let mut hook = RecordingHook::default();
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
    // The locate site is level 1 (the jj loop) — an *outer* loop relative
    // to the dense k loop: outer-loop prefetching falls out of semantics.
    assert_eq!(hook.sites, vec![(1, 1)]);
    assert_eq!(loop_depth(&k.func.body), 3);
}

#[test]
fn hook_fires_twice_for_mttkrp() {
    let spec = KernelSpec::mttkrp(ValueKind::F64);
    let mut hook = RecordingHook::default();
    sparsify(&spec, &Format::csf(3), IndexWidth::U64, Some(&mut hook)).unwrap();
    // j locates C (level 1), k locates D (level 2).
    assert_eq!(hook.sites, vec![(1, 1), (2, 1)]);
}

#[test]
fn csc_spmv_swaps_loop_order() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::csc(), IndexWidth::U64, None).unwrap();
    assert_eq!(k.loop_order, vec![1, 0]);
    // Column-major traversal: the reduction index j is now OUTER, so no
    // scalarization (innermost i is parallel).
    let text = print_function(&k.func);
    assert!(!text.contains("iter_args"));
}

#[test]
fn calling_convention_is_stable() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    assert_eq!(
        k.args,
        vec![
            KernelArg::Pos { level: 1 },
            KernelArg::Crd { level: 1 },
            KernelArg::SparseVals,
            KernelArg::DenseInput { input: 1 },
            KernelArg::Output,
            KernelArg::DimSize { index: 0 },
            KernelArg::DimSize { index: 1 },
        ]
    );
    assert_eq!(k.func.params.len(), 7);
}

#[test]
fn printed_csr_spmv_matches_expected_skeleton() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
    let text = print_function(&k.func);
    // Structural golden check, robust to value numbering: the sequence of
    // mnemonics along the hot path.
    for needle in [
        "func @spmv(",
        "scf.for",
        "memref.load",
        "arith.mulf",
        "arith.addf",
        "scf.yield",
        "memref.store",
        "func.return",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
