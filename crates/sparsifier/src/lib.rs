//! # asap-sparsifier — the sparsification transformation
//!
//! Lowers declarative contraction kernels over sparse tensors (the
//! `linalg.generic` level of the paper's Figure 1a) into imperative IR
//! operating on segmented `pos`/`crd`/`values` buffers, reproducing the
//! loop shapes of the paper's Figure 3 for COO, CSR and DCSR (and any
//! other format expressible with the level types).
//!
//! The crate exposes the paper's central mechanism: a [`LocateHook`] fired
//! exactly when an iterate-and-locate coiteration strategy generates an
//! indirect access, carrying full semantic context (coordinate buffer,
//! iterator, resolved coordinate, dense targets with strides, and the
//! [`SizeChain`] implementing the `crd_buf_sz` bound recursion of
//! Section 3.2.2). `asap-core` implements the hook to inject prefetches.

pub mod codegen;
pub mod hooks;
pub mod itgraph;
pub mod merge;
pub mod runner;
pub mod spec;

pub use codegen::{sparsify, KernelArg, SparsifiedKernel};
pub use hooks::{LocateCtx, LocateHook, LocateTarget, RecordingHook, SizeChain, Stride};
pub use itgraph::IterationGraph;
pub use merge::{run_sparse_add, sparse_vector_add, MergeArg, MergeKernel, MergeOptions};
pub use runner::{bind, densify, read_back, reference_contraction, resolve_dims, run, BoundKernel};
pub use spec::{IteratorType, KernelSpec, OperandSpec};
