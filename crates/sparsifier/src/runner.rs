//! Executing sparsified kernels: argument binding and reference
//! implementations.
//!
//! The runner installs tensor buffers into an interpreter arena, binds
//! them to the kernel's calling convention, and interprets the IR with a
//! caller-supplied [`MemoryModel`] (a [`asap_ir::NullModel`] for pure
//! functional runs, the `asap-sim` machine for timed runs).

use crate::codegen::{KernelArg, SparsifiedKernel};
use crate::spec::KernelSpec;
use asap_ir::{interpret, AsapError, Buffers, MemoryModel, V};
use asap_tensor::{DenseTensor, SparseTensor, ValueKind, Values};

/// Resolve the size of every loop index from operand shapes, checking
/// consistency across operands.
pub fn resolve_dims(
    spec: &KernelSpec,
    sparse_dims: &[usize],
    dense_dims: &[&[usize]],
    out_dims: &[usize],
) -> Result<Vec<usize>, AsapError> {
    let mut sizes: Vec<Option<usize>> = vec![None; spec.num_indices];
    let mut bind = |map: &[usize], dims: &[usize], what: &str| -> Result<(), AsapError> {
        if map.len() != dims.len() {
            return Err(AsapError::binding(format!(
                "{what}: rank {} does not match map rank {}",
                dims.len(),
                map.len()
            )));
        }
        for (&idx, &d) in map.iter().zip(dims) {
            match sizes[idx] {
                None => sizes[idx] = Some(d),
                Some(prev) if prev == d => {}
                Some(prev) => {
                    return Err(AsapError::binding(format!(
                        "{what}: index {idx} bound to {d} but previously {prev}"
                    )))
                }
            }
        }
        Ok(())
    };
    bind(&spec.sparse_input().map, sparse_dims, "sparse input")?;
    for (i, (dspec, dims)) in spec.dense_inputs().iter().zip(dense_dims).enumerate() {
        bind(&dspec.map, dims, &format!("dense input {}", i + 1))?;
    }
    bind(&spec.output.map, out_dims, "output")?;
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| AsapError::binding(format!("index {i} not bound by any operand")))
        })
        .collect()
}

/// Buffers and argument values ready for interpretation.
pub struct BoundKernel {
    pub bufs: Buffers,
    pub args: Vec<V>,
    /// Buffer id of the output (read it back after the run).
    pub out_buf: u32,
}

/// Install all operands and produce the interpreter argument vector
/// matching the kernel's calling convention.
pub fn bind(
    kernel: &SparsifiedKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &DenseTensor,
) -> Result<BoundKernel, AsapError> {
    let spec = &kernel.spec;
    if dense.len() != spec.dense_inputs().len() {
        return Err(AsapError::binding(format!(
            "expected {} dense inputs, got {}",
            spec.dense_inputs().len(),
            dense.len()
        )));
    }
    if sparse.format() != &kernel.format {
        return Err(AsapError::binding(format!(
            "tensor stored as {} but kernel compiled for {}",
            sparse.format(),
            kernel.format
        )));
    }
    if sparse.index_width() != kernel.index_width {
        return Err(AsapError::binding(
            "tensor index width does not match kernel",
        ));
    }
    if sparse.value_kind() != spec.value_kind {
        return Err(AsapError::binding(
            "sparse value kind does not match kernel",
        ));
    }
    let dense_dims: Vec<&[usize]> = dense.iter().map(|d| d.dims.as_slice()).collect();
    let dims = resolve_dims(spec, sparse.dims(), &dense_dims, &out.dims)?;

    let mut bufs = Buffers::new();
    let tb = sparse.install(&mut bufs);
    let dense_ids: Vec<u32> = dense.iter().map(|d| d.install(&mut bufs)).collect();
    let out_id = out.install(&mut bufs);

    let mut args = Vec::with_capacity(kernel.args.len());
    for &a in &kernel.args {
        args.push(match a {
            KernelArg::Pos { level } => {
                V::Mem(tb.pos[level].ok_or_else(|| {
                    AsapError::binding(format!("level {level} has no pos buffer"))
                })?)
            }
            KernelArg::Crd { level } => {
                V::Mem(tb.crd[level].ok_or_else(|| {
                    AsapError::binding(format!("level {level} has no crd buffer"))
                })?)
            }
            KernelArg::SparseVals => V::Mem(tb.vals),
            KernelArg::DenseInput { input } => V::Mem(dense_ids[input - 1]),
            KernelArg::Output => V::Mem(out_id),
            KernelArg::DimSize { index } => V::Index(dims[index]),
        });
    }
    Ok(BoundKernel {
        bufs,
        args,
        out_buf: out_id,
    })
}

/// Copy the output buffer of a finished run back into the dense output
/// tensor. Shared by every execution path (tree-walk and bytecode).
pub fn read_back(out: &mut DenseTensor, bound: &BoundKernel) -> Result<(), AsapError> {
    out.values = match &bound.bufs.get(bound.out_buf).data {
        asap_ir::BufferData::F64(v) => Values::F64(v.clone()),
        asap_ir::BufferData::I8(v) => Values::I8(v.clone()),
        other => {
            return Err(AsapError::binding(format!(
                "unexpected output buffer type {other:?}"
            )))
        }
    };
    Ok(())
}

/// Bind, interpret, and write the result back into `out`. Returns an error
/// on binding failures or interpreter faults.
pub fn run<M: MemoryModel + ?Sized>(
    kernel: &SparsifiedKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut M,
) -> Result<(), AsapError> {
    let mut bound = bind(kernel, sparse, dense, out)?;
    interpret(&kernel.func, &bound.args, &mut bound.bufs, model)?;
    read_back(out, &bound)
}

/// Dense reference contraction: iterates the full iteration space using
/// dense renderings of every operand. Slow but obviously correct — the
/// oracle all sparsified kernels are checked against.
pub fn reference_contraction(
    spec: &KernelSpec,
    dims: &[usize],
    sparse_dense: &Values,
    sparse_dims: &[usize],
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
) {
    assert_eq!(dims.len(), spec.num_indices);
    let total: usize = dims.iter().product();
    let flat = |map: &[usize], coords: &[usize], shapes: &[usize]| -> usize {
        let mut idx = 0;
        for (k, &m) in map.iter().enumerate() {
            idx = idx * shapes[k] + coords[m];
        }
        idx
    };
    let mut coords = vec![0usize; spec.num_indices];
    for lin in 0..total {
        let mut rest = lin;
        for i in (0..spec.num_indices).rev() {
            coords[i] = rest % dims[i];
            rest /= dims[i];
        }
        let sidx = flat(&spec.sparse_input().map, &coords, sparse_dims);
        match (sparse_dense, &mut out.values) {
            (Values::F64(sv), Values::F64(ov)) => {
                let mut prod = sv[sidx];
                for (dspec, d) in spec.dense_inputs().iter().zip(dense) {
                    prod *= d.as_f64()[flat(&dspec.map, &coords, &d.dims)];
                }
                ov[flat(&spec.output.map, &coords, &out.dims)] += prod;
            }
            (Values::I8(sv), Values::I8(ov)) => {
                let mut prod = sv[sidx];
                for (dspec, d) in spec.dense_inputs().iter().zip(dense) {
                    prod &= d.as_i8()[flat(&dspec.map, &coords, &d.dims)];
                }
                ov[flat(&spec.output.map, &coords, &out.dims)] |= prod;
            }
            _ => panic!("value kind mismatch in reference"),
        }
    }
}

/// Densify a sparse tensor into a row-major [`Values`] array for the
/// reference contraction.
pub fn densify(sparse: &SparseTensor) -> Values {
    let size: usize = sparse.dims().iter().product();
    match sparse.value_kind() {
        ValueKind::F64 => Values::F64(sparse.to_dense_f64()),
        ValueKind::I8 => {
            let mut out = vec![0i8; size];
            let vals = match sparse.values() {
                Values::I8(v) => v.clone(),
                _ => unreachable!(),
            };
            sparse.for_each_entry(|c, vi| {
                let mut idx = 0;
                for (d, &cd) in c.iter().enumerate() {
                    idx = idx * sparse.dims()[d] + cd;
                }
                out[idx] |= vals[vi];
            });
            Values::I8(out)
        }
    }
}
