//! Sparsification code generation (paper Section 2.4, Figure 3).
//!
//! Lowers a declarative [`KernelSpec`] over one sparse operand into
//! imperative IR: one loop (or while-based dedup construct) per storage
//! level, then dense loops for the remaining indices, then the semiring
//! multiply-accumulate body. Reductions whose index is innermost are
//! scalarized through `scf.for` iter_args, as MLIR's sparsifier does.
//!
//! When an indirect access is generated (a coordinate loaded from a `crd`
//! buffer locates into dense operands), the registered [`LocateHook`] is
//! fired with full semantic context — the paper's injection mechanism.

use crate::hooks::{LocateCtx, LocateHook, LocateTarget, SizeChain, Stride};
use crate::itgraph::IterationGraph;
use crate::spec::KernelSpec;
use asap_ir::{verify, AsapError, CmpPred, FuncBuilder, Function, Type, Value};
use asap_tensor::{Format, IndexWidth, LevelType};

/// One entry of a sparsified kernel's calling convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArg {
    /// Position buffer of sparse level `level`.
    Pos { level: usize },
    /// Coordinate buffer of sparse level `level`.
    Crd { level: usize },
    /// Non-zero values of the sparse input.
    SparseVals,
    /// Dense input operand (1-based position in `spec.inputs`).
    DenseInput { input: usize },
    /// The dense output buffer.
    Output,
    /// Size of loop index `index`'s dimension.
    DimSize { index: usize },
}

/// The result of sparsification: an IR function plus its argument layout.
#[derive(Debug, Clone)]
pub struct SparsifiedKernel {
    pub func: Function,
    pub args: Vec<KernelArg>,
    /// Loop indices outermost-first.
    pub loop_order: Vec<usize>,
    /// The kernel this was generated from.
    pub spec: KernelSpec,
    /// The sparse operand's storage format.
    pub format: Format,
    /// Index width the pos/crd buffer types were compiled for.
    pub index_width: IndexWidth,
}

impl SparsifiedKernel {
    /// Position of an argument in the calling convention.
    pub fn arg_position(&self, arg: KernelArg) -> Option<usize> {
        self.args.iter().position(|&a| a == arg)
    }
}

/// Sparsify `spec` for a sparse operand stored in `format` with
/// `index_width`-wide position/coordinate buffers. `hook` (if any) is
/// fired at every iterate-and-locate site.
pub fn sparsify(
    spec: &KernelSpec,
    format: &Format,
    index_width: IndexWidth,
    mut hook: Option<&mut dyn LocateHook>,
) -> Result<SparsifiedKernel, AsapError> {
    spec.validate().map_err(AsapError::spec)?;
    let smap = &spec.sparse_input().map;
    if smap.len() != format.rank() {
        return Err(AsapError::codegen("sparse operand rank != format rank"));
    }

    let graph = IterationGraph::build(spec, format);
    let loop_order = graph.topo_order().map_err(AsapError::codegen)?;

    // Sparse levels must form a prefix of the loop order (our codegen only
    // supports the storage-order traversal, which `sorted = true` demands).
    for l in 0..format.rank() {
        let want = smap[format.dim_of_level(l)];
        if loop_order[l] != want {
            return Err(AsapError::codegen(format!(
                "loop order {loop_order:?} does not follow sparse storage order \
                 (level {l} resolves index {want})"
            )));
        }
    }

    let idx_elem = match index_width {
        IndexWidth::U32 => Type::I32,
        IndexWidth::U64 => Type::Index,
    };
    let val_ty = spec.value_kind.ir_type();

    let mut b = FuncBuilder::new(spec.name.clone());
    let mut args = Vec::new();
    let rank = format.rank();
    let mut pos = vec![None; rank];
    let mut crd = vec![None; rank];
    for (l, &lt) in format.levels().iter().enumerate() {
        if lt.has_pos() {
            pos[l] = Some(b.arg(Type::memref(idx_elem.clone())));
            args.push(KernelArg::Pos { level: l });
        }
        if lt.has_crd() {
            crd[l] = Some(b.arg(Type::memref(idx_elem.clone())));
            args.push(KernelArg::Crd { level: l });
        }
    }
    let vals = b.arg(Type::memref(val_ty.clone()));
    args.push(KernelArg::SparseVals);
    let mut dense = Vec::new();
    for di in 0..spec.dense_inputs().len() {
        dense.push(b.arg(Type::memref(val_ty.clone())));
        args.push(KernelArg::DenseInput { input: di + 1 });
    }
    let out = b.arg(Type::memref(val_ty.clone()));
    args.push(KernelArg::Output);
    let mut dims = Vec::new();
    for idx in 0..spec.num_indices {
        dims.push(b.arg(Type::Index));
        args.push(KernelArg::DimSize { index: idx });
    }

    // Per-level size chains (the crd_buf_sz recursion, Section 3.2.2).
    let mut size_chains: Vec<SizeChain> = Vec::with_capacity(rank);
    let mut chain = SizeChain::new();
    for (l, &lt) in format.levels().iter().enumerate() {
        match lt {
            LevelType::Dense => chain.push_dense(dims[smap[format.dim_of_level(l)]]),
            LevelType::Compressed { .. } => {
                chain.push_compressed(pos[l].expect("compressed level has pos"))
            }
            LevelType::Singleton => chain.push_singleton(),
        }
        size_chains.push(chain.clone());
    }

    // Per-level locate targets: dense inputs indexed by the level's index.
    let mut locate_targets: Vec<Vec<LocateTarget>> = vec![Vec::new(); rank];
    for (l, &lt) in format.levels().iter().enumerate() {
        if !lt.has_crd() {
            continue; // dense levels stream; hardware prefetchers cover them
        }
        let idx = smap[format.dim_of_level(l)];
        for (di, dspec) in spec.dense_inputs().iter().enumerate() {
            let Some(p) = dspec.map.iter().position(|&m| m == idx) else {
                continue;
            };
            // Row stride = product of the sizes of the trailing dims.
            let trailing = &dspec.map[p + 1..];
            let stride = if trailing.is_empty() {
                Stride::One
            } else {
                let mut s = dims[trailing[0]];
                for &t in &trailing[1..] {
                    s = b.muli(s, dims[t]);
                }
                Stride::Elems(s)
            };
            locate_targets[l].push(LocateTarget {
                buf: dense[di],
                stride,
                operand: di + 1,
            });
        }
    }

    let n_loops = loop_order.len();
    let last_idx = *loop_order.last().expect("at least one loop");
    let scalarize = !spec.index_in_output(last_idx);

    let mut em = Emitter {
        spec,
        format,
        hook: hook.take(),
        pos,
        crd,
        vals,
        dense,
        out,
        dims,
        coord: vec![None; spec.num_indices],
        parent: None,
        leaf: None,
        loop_order: loop_order.clone(),
        n_loops,
        scalarize,
        size_chains,
        locate_targets,
    };
    em.emit_depth(&mut b, 0);

    let func = b.finish();
    verify(&func)?;
    Ok(SparsifiedKernel {
        func,
        args,
        loop_order,
        spec: spec.clone(),
        format: format.clone(),
        index_width,
    })
}

struct Emitter<'a, 'h> {
    spec: &'a KernelSpec,
    format: &'a Format,
    hook: Option<&'h mut dyn LocateHook>,
    pos: Vec<Option<Value>>,
    crd: Vec<Option<Value>>,
    vals: Value,
    dense: Vec<Value>,
    out: Value,
    dims: Vec<Value>,
    /// Resolved coordinate per loop index.
    coord: Vec<Option<Value>>,
    /// Node of the previous sparse level (`None` = virtual root), or the
    /// entry range produced by a non-unique level.
    parent: Option<Parent>,
    /// Node index at the last sparse level: indexes the values buffer.
    leaf: Option<Value>,
    loop_order: Vec<usize>,
    n_loops: usize,
    scalarize: bool,
    size_chains: Vec<SizeChain>,
    locate_targets: Vec<Vec<LocateTarget>>,
}

#[derive(Clone, Copy)]
enum Parent {
    /// A single parent node.
    Single(Value),
    /// A range of entries (from a non-unique level's dedup scan).
    Range(Value, Value),
}

impl<'a, 'h> Emitter<'a, 'h> {
    fn emit_depth(&mut self, b: &mut FuncBuilder, depth: usize) {
        if depth == self.n_loops {
            self.emit_body(b, None);
            return;
        }
        let last = depth + 1 == self.n_loops;
        if last && self.scalarize {
            // Load the accumulator, run the innermost loop carrying it,
            // store once — the scalarized reduction MLIR emits.
            let omap = self.spec.output.map.clone();
            let oidx = self.flat_index(b, &omap);
            let acc0 = b.load(self.out, oidx);
            let acc = self
                .emit_loop(b, depth, Some(acc0))
                .expect("scalar loop returns accumulator");
            b.store(acc, self.out, oidx);
        } else {
            self.emit_loop(b, depth, None);
        }
    }

    /// Emit the loop construct at `depth`. With `scalar = Some(acc0)` the
    /// loop carries the accumulator and its final value is returned.
    fn emit_loop(
        &mut self,
        b: &mut FuncBuilder,
        depth: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        if depth < self.format.rank() {
            self.emit_sparse_level(b, depth, scalar)
        } else {
            self.emit_dense_loop(b, self.loop_order[depth], depth, scalar)
        }
    }

    fn inner(&mut self, b: &mut FuncBuilder, depth: usize, scalar: Option<Value>) -> Option<Value> {
        match scalar {
            Some(acc) => Some(
                self.emit_body(b, Some(acc))
                    .expect("scalar body returns accumulator"),
            ),
            None => {
                self.emit_depth(b, depth + 1);
                None
            }
        }
    }

    fn emit_dense_loop(
        &mut self,
        b: &mut FuncBuilder,
        idx: usize,
        depth: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let dim = self.dims[idx];
        let inits: Vec<Value> = scalar.into_iter().collect();
        let res = b.for_loop(c0, dim, c1, &inits, |b, iv, iter_args| {
            self.coord[idx] = Some(iv);
            match self.inner(b, depth, iter_args.first().copied()) {
                Some(acc) => vec![acc],
                None => vec![],
            }
        });
        res.first().copied()
    }

    fn emit_sparse_level(
        &mut self,
        b: &mut FuncBuilder,
        l: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        let idx = self.spec.sparse_input().map[self.format.dim_of_level(l)];
        match self.format.levels()[l] {
            LevelType::Dense => self.emit_dense_level(b, l, idx, scalar),
            LevelType::Compressed { unique: true, .. } => {
                self.emit_compressed_level(b, l, idx, scalar)
            }
            LevelType::Compressed { unique: false, .. } => {
                assert!(
                    scalar.is_none(),
                    "non-unique level cannot be the scalarized innermost loop"
                );
                self.emit_nonunique_level(b, l, idx);
                None
            }
            LevelType::Singleton => self.emit_singleton_level(b, l, idx, scalar),
        }
    }

    /// Dense storage level: loop over all coordinates; the node index is
    /// `parent * dim + coord`.
    fn emit_dense_level(
        &mut self,
        b: &mut FuncBuilder,
        l: usize,
        idx: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        let dim = self.dims[idx];
        let parent = self.parent;
        let inits: Vec<Value> = scalar.into_iter().collect();
        let res = b.for_loop(c0, dim, c1, &inits, |b, iv, iter_args| {
            self.coord[idx] = Some(iv);
            let node = match parent {
                None => iv,
                Some(Parent::Single(p)) => {
                    let base = b.muli(p, dim);
                    b.addi(base, iv)
                }
                Some(Parent::Range(..)) => {
                    panic!("dense level cannot follow a non-unique level")
                }
            };
            self.parent = Some(Parent::Single(node));
            if l + 1 == self.format.rank() {
                self.leaf = Some(node);
            }
            match self.inner(b, l, iter_args.first().copied()) {
                Some(acc) => vec![acc],
                None => vec![],
            }
        });
        res.first().copied()
    }

    /// Unique compressed level: `for n in pos[p] .. pos[p+1]`, coordinate
    /// loaded from `crd[n]` (Figure 3b/3c inner loops).
    fn emit_compressed_level(
        &mut self,
        b: &mut FuncBuilder,
        l: usize,
        idx: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        let c1 = b.const_index(1);
        let pos = self.pos[l].expect("compressed level has pos");
        let crd = self.crd[l].expect("compressed level has crd");
        let p = match self.parent {
            None => b.const_index(0),
            Some(Parent::Single(p)) => p,
            Some(Parent::Range(..)) => {
                panic!("compressed level cannot follow a non-unique level")
            }
        };
        let lo_raw = b.load(pos, p);
        let lo = b.to_index(lo_raw);
        let p1 = b.addi(p, c1);
        let hi_raw = b.load(pos, p1);
        let hi = b.to_index(hi_raw);
        let inits: Vec<Value> = scalar.into_iter().collect();
        let res = b.for_loop(lo, hi, c1, &inits, |b, n, iter_args| {
            let raw = b.load(crd, n);
            let coordv = b.to_index(raw);
            self.coord[idx] = Some(coordv);
            self.fire_hook(b, l, n, coordv);
            self.parent = Some(Parent::Single(n));
            if l + 1 == self.format.rank() {
                self.leaf = Some(n);
            }
            match self.inner(b, l, iter_args.first().copied()) {
                Some(acc) => vec![acc],
                None => vec![],
            }
        });
        res.first().copied()
    }

    /// Non-unique compressed level (COO's first level): a while loop over
    /// entries with an inner duplicate-scan producing each coordinate's
    /// segment (Figure 3a).
    fn emit_nonunique_level(&mut self, b: &mut FuncBuilder, l: usize, idx: usize) {
        let c1 = b.const_index(1);
        let pos = self.pos[l].expect("non-unique compressed level has pos");
        let crd = self.crd[l].expect("non-unique compressed level has crd");
        let p = match self.parent {
            None => b.const_index(0),
            Some(Parent::Single(p)) => p,
            Some(Parent::Range(..)) => panic!("nested non-unique levels unsupported"),
        };
        let lo_raw = b.load(pos, p);
        let lo = b.to_index(lo_raw);
        let p1 = b.addi(p, c1);
        let hi_raw = b.load(pos, p1);
        let hi = b.to_index(hi_raw);
        b.while_loop(
            &[lo],
            |b, args| {
                let cont = b.cmpi(CmpPred::Ult, args[0], hi);
                (cont, vec![args[0]])
            },
            |b, args| {
                let ii = args[0];
                let raw = b.load(crd, ii);
                let coordv = b.to_index(raw);
                self.coord[idx] = Some(coordv);
                // Duplicate scan: segment_end = first entry with a
                // different coordinate (short-circuit the bounds check so
                // crd[hi] is never touched).
                let se0 = b.addi(ii, c1);
                let se = b.while_loop(
                    &[se0],
                    |b, sargs| {
                        let in_range = b.cmpi(CmpPred::Ult, sargs[0], hi);
                        let same = b.if_else(
                            in_range,
                            &[Type::I1],
                            |b| {
                                let r2 = b.load(crd, sargs[0]);
                                vec![b.cmpi(CmpPred::Eq, r2, raw)]
                            },
                            |b| vec![b.constant(asap_ir::Literal::Bool(false))],
                        );
                        (same[0], vec![sargs[0]])
                    },
                    |b, sargs| vec![b.addi(sargs[0], c1)],
                );
                self.fire_hook(b, l, ii, coordv);
                self.parent = Some(Parent::Range(ii, se[0]));
                self.emit_depth(b, l + 1);
                vec![se[0]]
            },
        );
    }

    /// Singleton level: one coordinate per parent. With a range parent
    /// (following a non-unique level) this is the per-segment entry loop
    /// of Figure 3a (line 11); with a single parent it is a plain deref.
    fn emit_singleton_level(
        &mut self,
        b: &mut FuncBuilder,
        l: usize,
        idx: usize,
        scalar: Option<Value>,
    ) -> Option<Value> {
        let crd = self.crd[l].expect("singleton level has crd");
        match self.parent.expect("singleton level cannot be the root") {
            Parent::Single(p) => {
                let raw = b.load(crd, p);
                let coordv = b.to_index(raw);
                self.coord[idx] = Some(coordv);
                self.fire_hook(b, l, p, coordv);
                self.parent = Some(Parent::Single(p));
                if l + 1 == self.format.rank() {
                    self.leaf = Some(p);
                }
                match scalar {
                    Some(acc) => Some(
                        self.emit_body(b, Some(acc))
                            .expect("scalar body returns accumulator"),
                    ),
                    None => {
                        self.emit_depth(b, l + 1);
                        None
                    }
                }
            }
            Parent::Range(lo, hi) => {
                let c1 = b.const_index(1);
                let inits: Vec<Value> = scalar.into_iter().collect();
                let res = b.for_loop(lo, hi, c1, &inits, |b, jj, iter_args| {
                    let raw = b.load(crd, jj);
                    let coordv = b.to_index(raw);
                    self.coord[idx] = Some(coordv);
                    self.fire_hook(b, l, jj, coordv);
                    self.parent = Some(Parent::Single(jj));
                    if l + 1 == self.format.rank() {
                        self.leaf = Some(jj);
                    }
                    match self.inner(b, l, iter_args.first().copied()) {
                        Some(acc) => vec![acc],
                        None => vec![],
                    }
                });
                res.first().copied()
            }
        }
    }

    /// Fire the locate hook if this level's coordinate locates into any
    /// dense operand — the paper's injection point (Section 3.1).
    fn fire_hook(&mut self, b: &mut FuncBuilder, level: usize, iter: Value, coord: Value) {
        if self.locate_targets[level].is_empty() {
            return;
        }
        if let Some(h) = self.hook.as_mut() {
            let ctx = LocateCtx {
                level,
                crd: self.crd[level].expect("hook fires on crd-bearing levels"),
                iter,
                coord,
                targets: &self.locate_targets[level],
                size_chain: &self.size_chains[level],
            };
            h.on_locate(b, &ctx);
        }
    }

    /// Row-major flattened index for an operand map, from resolved coords.
    fn flat_index(&mut self, b: &mut FuncBuilder, map: &[usize]) -> Value {
        let mut it = map.iter();
        let first = *it.next().expect("operand has at least one dim");
        let mut idx = self.coord[first].expect("coordinate resolved before use");
        for &d in it {
            let dim = self.dims[d];
            idx = b.muli(idx, dim);
            let c = self.coord[d].expect("coordinate resolved before use");
            idx = b.addi(idx, c);
        }
        idx
    }

    fn semiring_mul(&self, b: &mut FuncBuilder, x: Value, y: Value) -> Value {
        match self.spec.value_kind {
            asap_tensor::ValueKind::F64 => b.mulf(x, y),
            asap_tensor::ValueKind::I8 => b.andi(x, y),
        }
    }

    fn semiring_add(&self, b: &mut FuncBuilder, x: Value, y: Value) -> Value {
        match self.spec.value_kind {
            asap_tensor::ValueKind::F64 => b.addf(x, y),
            asap_tensor::ValueKind::I8 => b.ori(x, y),
        }
    }

    /// The multiply-accumulate body. With `acc` the new accumulator value
    /// is returned; otherwise the output location is read-modify-written.
    fn emit_body(&mut self, b: &mut FuncBuilder, acc: Option<Value>) -> Option<Value> {
        let leaf = self.leaf.expect("leaf node resolved at the last level");
        let sv = b.load(self.vals, leaf);
        let mut prod = sv;
        let dense_maps: Vec<Vec<usize>> = self
            .spec
            .dense_inputs()
            .iter()
            .map(|d| d.map.clone())
            .collect();
        for (di, map) in dense_maps.iter().enumerate() {
            let idxv = self.flat_index(b, map);
            let dv = b.load(self.dense[di], idxv);
            prod = self.semiring_mul(b, prod, dv);
        }
        match acc {
            Some(a) => Some(self.semiring_add(b, a, prod)),
            None => {
                let omap = self.spec.output.map.clone();
                let oidx = self.flat_index(b, &omap);
                let cur = b.load(self.out, oidx);
                let sum = self.semiring_add(b, cur, prod);
                b.store(sum, self.out, oidx);
                None
            }
        }
    }
}
