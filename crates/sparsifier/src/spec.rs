//! Declarative kernel specifications — the `linalg.generic` level of the
//! paper's Figure 1a.
//!
//! A [`KernelSpec`] describes a tensor contraction: an iteration space of
//! named indices, affine maps binding each operand dimension to an index,
//! and iterator types. The computation body is the semiring
//! multiply-accumulate implied by the operand value kind (`mulf`/`addf`
//! for floats, `andi`/`ori` for binary matrices — paper Section 4.2).

use asap_tensor::ValueKind;

/// How a loop index behaves, as in `iterator_types` of `linalg.generic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IteratorType {
    /// Appears in the output: iterations are independent.
    Parallel,
    /// Reduced away: iterations accumulate.
    Reduction,
}

/// One operand's indexing: operand dimension `d` is indexed by loop index
/// `map[d]` (an `affine_map<(i, j) -> (...)>` restricted to projections,
/// which is all sparsification supports for sparse operands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandSpec {
    pub map: Vec<usize>,
}

impl OperandSpec {
    pub fn new(map: Vec<usize>) -> OperandSpec {
        OperandSpec { map }
    }

    pub fn rank(&self) -> usize {
        self.map.len()
    }
}

/// A declarative contraction kernel over one sparse input (operand 0) and
/// any number of dense inputs, producing a dense output:
///
/// `out[...] += in0[...] * in1[...] * ...` under the value kind's semiring.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    pub name: String,
    /// Number of loop indices in the iteration space.
    pub num_indices: usize,
    pub iterator_types: Vec<IteratorType>,
    /// Operand 0 is the sparse input; the rest are dense.
    pub inputs: Vec<OperandSpec>,
    pub output: OperandSpec,
    /// Element kind of all operands.
    pub value_kind: ValueKind,
    /// The `sorted = true` attribute: prohibits reordering the iteration
    /// space away from the coordinate hierarchy order (paper Fig. 1a l.7).
    pub sorted: bool,
}

impl KernelSpec {
    /// SpMV: `a(i) = B(i,j) * c(j)` (paper Figure 1a).
    pub fn spmv(value_kind: ValueKind) -> KernelSpec {
        KernelSpec {
            name: "spmv".into(),
            num_indices: 2,
            iterator_types: vec![IteratorType::Parallel, IteratorType::Reduction],
            inputs: vec![OperandSpec::new(vec![0, 1]), OperandSpec::new(vec![1])],
            output: OperandSpec::new(vec![0]),
            value_kind,
            sorted: true,
        }
    }

    /// SpMM: `A(i,k) = B(i,j) * C(j,k)` (paper Figure 9).
    pub fn spmm(value_kind: ValueKind) -> KernelSpec {
        KernelSpec {
            name: "spmm".into(),
            num_indices: 3,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Reduction,
                IteratorType::Parallel,
            ],
            inputs: vec![OperandSpec::new(vec![0, 1]), OperandSpec::new(vec![1, 2])],
            output: OperandSpec::new(vec![0, 2]),
            value_kind,
            sorted: true,
        }
    }

    /// Transposed SpMV: `a(j) = B(i,j) * c(i)` — the reduction index is
    /// OUTER under row-major storage, so the generated code accumulates
    /// through memory instead of a scalarized register (the dual of the
    /// plain SpMV codegen path).
    pub fn spmv_transposed(value_kind: ValueKind) -> KernelSpec {
        KernelSpec {
            name: "spmv_t".into(),
            num_indices: 2,
            iterator_types: vec![IteratorType::Reduction, IteratorType::Parallel],
            inputs: vec![OperandSpec::new(vec![0, 1]), OperandSpec::new(vec![0])],
            output: OperandSpec::new(vec![1]),
            value_kind,
            sorted: true,
        }
    }

    /// Sparse 3-tensor times two dense matrices (MTTKRP-like contraction):
    /// `A(i,l) = B(i,j,k) * C(j,l) * D(k,l)` over a CSF-format `B`.
    /// Exercises the general N-level bound recursion of Section 3.2.2.
    pub fn mttkrp(value_kind: ValueKind) -> KernelSpec {
        KernelSpec {
            name: "mttkrp".into(),
            num_indices: 4,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Reduction,
                IteratorType::Reduction,
                IteratorType::Parallel,
            ],
            inputs: vec![
                OperandSpec::new(vec![0, 1, 2]),
                OperandSpec::new(vec![1, 3]),
                OperandSpec::new(vec![2, 3]),
            ],
            output: OperandSpec::new(vec![0, 3]),
            value_kind,
            sorted: true,
        }
    }

    /// The sparse input's operand spec.
    pub fn sparse_input(&self) -> &OperandSpec {
        &self.inputs[0]
    }

    /// Dense inputs (operands 1..).
    pub fn dense_inputs(&self) -> &[OperandSpec] {
        &self.inputs[1..]
    }

    /// Whether a loop index appears in the output map.
    pub fn index_in_output(&self, idx: usize) -> bool {
        self.output.map.contains(&idx)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterator_types.len() != self.num_indices {
            return Err("iterator_types length != num_indices".into());
        }
        if self.inputs.is_empty() {
            return Err("at least one (sparse) input required".into());
        }
        for (oi, op) in self.inputs.iter().chain(Some(&self.output)).enumerate() {
            for &i in &op.map {
                if i >= self.num_indices {
                    return Err(format!("operand {oi} references index {i} out of range"));
                }
            }
        }
        for (i, &it) in self.iterator_types.iter().enumerate() {
            let in_out = self.index_in_output(i);
            match it {
                IteratorType::Parallel if !in_out => {
                    return Err(format!("parallel index {i} missing from output"));
                }
                IteratorType::Reduction if in_out => {
                    return Err(format!("reduction index {i} present in output"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_spec_is_valid() {
        let s = KernelSpec::spmv(ValueKind::F64);
        s.validate().unwrap();
        assert_eq!(s.num_indices, 2);
        assert!(s.index_in_output(0));
        assert!(!s.index_in_output(1));
    }

    #[test]
    fn spmm_spec_is_valid() {
        let s = KernelSpec::spmm(ValueKind::I8);
        s.validate().unwrap();
        assert_eq!(s.dense_inputs().len(), 1);
        assert_eq!(s.output.map, vec![0, 2]);
    }

    #[test]
    fn mttkrp_spec_is_valid() {
        KernelSpec::mttkrp(ValueKind::F64).validate().unwrap();
    }

    #[test]
    fn detects_reduction_in_output() {
        let mut s = KernelSpec::spmv(ValueKind::F64);
        s.output.map = vec![1];
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_out_of_range_index() {
        let mut s = KernelSpec::spmv(ValueKind::F64);
        s.inputs[1].map = vec![7];
        assert!(s.validate().is_err());
    }

    #[test]
    fn detects_parallel_missing_from_output() {
        let mut s = KernelSpec::spmm(ValueKind::F64);
        s.output.map = vec![0];
        assert!(s.validate().is_err());
    }
}
