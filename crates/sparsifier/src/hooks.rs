//! Hook infrastructure for prefetch injection *during* sparsification.
//!
//! The paper's key observation (Section 3.1) is that the indirect access
//! `c[Bj_crd[jj]]` materializes at a known point of the sparsification
//! transformation — when an iterate-and-locate coiteration strategy is
//! chosen — so a prefetching extension can be handed complete semantic
//! context instead of re-discovering it post-hoc. [`LocateHook`] is that
//! extension point; `asap-core` implements it with the three-step scheme
//! of Figure 5.

use asap_ir::{FuncBuilder, Value};

/// How a located coordinate scales into a dense operand's flat index.
#[derive(Debug, Clone, Copy)]
pub enum Stride {
    /// The coordinate indexes the operand directly (SpMV's `c[j]`).
    One,
    /// The coordinate selects a row of `stride` elements (SpMM's
    /// `C[j*N + k]`): prefetching `target[coord*stride]` covers the first
    /// cache line of the row, as in the paper's Figure 9.
    Elems(Value),
}

/// One dense operand located by the resolved coordinate.
#[derive(Debug, Clone)]
pub struct LocateTarget {
    /// The dense operand's buffer (function argument).
    pub buf: Value,
    pub stride: Stride,
    /// Operand position in the kernel spec (1-based; 0 is the sparse
    /// input), for diagnostics.
    pub operand: usize,
}

/// Recipe for computing, at runtime, the total size of a level's
/// coordinate buffer — the paper's recursive `crd_buf_sz` formula
/// (Section 3.2.2). Each step transforms the running node count of the
/// previous level.
#[derive(Debug, Clone)]
pub struct SizeChain {
    steps: Vec<SizeStep>,
}

#[derive(Debug, Clone, Copy)]
enum SizeStep {
    /// Dense level: node count multiplies by the dimension size argument.
    MulDim(Value),
    /// Compressed level: node count becomes `pos[count]` — a runtime load,
    /// because allocation sites are not visible to the pass.
    LoadPos(Value),
    /// Singleton level: node count unchanged.
    Keep,
}

impl SizeChain {
    pub fn new() -> SizeChain {
        SizeChain { steps: Vec::new() }
    }

    pub fn push_dense(&mut self, dim_arg: Value) {
        self.steps.push(SizeStep::MulDim(dim_arg));
    }

    pub fn push_compressed(&mut self, pos_buf: Value) {
        self.steps.push(SizeStep::LoadPos(pos_buf));
    }

    pub fn push_singleton(&mut self) {
        self.steps.push(SizeStep::Keep);
    }

    /// Number of levels described.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Emit the chain, returning the node count of the last level — which
    /// equals that level's coordinate-buffer size. Every emitted op is
    /// loop-invariant (loads are from read-only position buffers), so LICM
    /// hoists the chain out of the loop nest, exactly as the paper notes
    /// for Figure 5 lines 8–10.
    pub fn emit(&self, b: &mut FuncBuilder) -> Value {
        let mut count = b.const_index(1);
        for step in &self.steps {
            count = match *step {
                SizeStep::MulDim(dim) => b.muli(count, dim),
                SizeStep::LoadPos(pos) => {
                    let raw = b.load(pos, count);
                    b.to_index(raw)
                }
                SizeStep::Keep => count,
            };
        }
        count
    }
}

impl Default for SizeChain {
    fn default() -> Self {
        SizeChain::new()
    }
}

/// Context handed to a [`LocateHook`] at the moment sparsification
/// generates an indirect access: everything the three-step generation
/// scheme needs, derived from sparse tensor semantics.
pub struct LocateCtx<'a> {
    /// Storage level whose coordinate was just resolved.
    pub level: usize,
    /// The level's coordinate buffer (`Bj_crd`).
    pub crd: Value,
    /// The position iterator (`jj`) indexing `crd` in the current loop.
    pub iter: Value,
    /// The resolved coordinate, already cast to `index`.
    pub coord: Value,
    /// Dense operands located by `coord`.
    pub targets: &'a [LocateTarget],
    /// Recipe for the total size of `crd` (the ASaP bound).
    pub size_chain: &'a SizeChain,
}

/// Extension point fired once per iterate-and-locate site during
/// sparsification. Implementations inject IR at the current insertion
/// point (right after coordinate resolution, inside the level's loop).
pub trait LocateHook {
    fn on_locate(&mut self, b: &mut FuncBuilder, ctx: &LocateCtx<'_>);
}

/// A hook that records the sites it saw — used by tests to check the
/// sparsifier fires hooks at exactly the right places.
#[derive(Debug, Default)]
pub struct RecordingHook {
    /// (level, number of targets) per fired site.
    pub sites: Vec<(usize, usize)>,
}

impl LocateHook for RecordingHook {
    fn on_locate(&mut self, _b: &mut FuncBuilder, ctx: &LocateCtx<'_>) {
        self.sites.push((ctx.level, ctx.targets.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::{interpret, BufferData, Buffers, NullModel, Type, V};

    #[test]
    fn size_chain_emits_csr_bound() {
        // CSR: dense level (dim = nrows), then compressed level (pos).
        let mut b = FuncBuilder::new("sz");
        let pos = b.arg(Type::memref(Type::Index));
        let nrows = b.arg(Type::Index);
        let out = b.arg(Type::memref(Type::Index));
        let mut chain = SizeChain::new();
        chain.push_dense(nrows);
        chain.push_compressed(pos);
        let sz = chain.emit(&mut b);
        let c0 = b.const_index(0);
        b.store(sz, out, c0);
        let f = b.finish();

        let mut bufs = Buffers::new();
        let bpos = bufs.add(BufferData::Index(vec![0, 2, 2, 3]));
        let bout = bufs.add(BufferData::Index(vec![0]));
        interpret(
            &f,
            &[V::Mem(bpos), V::Index(3), V::Mem(bout)],
            &mut bufs,
            &mut NullModel,
        )
        .unwrap();
        match &bufs.get(bout).data {
            BufferData::Index(v) => assert_eq!(v[0], 3, "crd size = pos[nrows]"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn size_chain_emits_dcsr_recursion() {
        // DCSR: compressed, compressed — size(l1) = pos1[pos0[1]].
        let mut b = FuncBuilder::new("sz");
        let pos0 = b.arg(Type::memref(Type::Index));
        let pos1 = b.arg(Type::memref(Type::Index));
        let out = b.arg(Type::memref(Type::Index));
        let mut chain = SizeChain::new();
        chain.push_compressed(pos0);
        chain.push_compressed(pos1);
        let sz = chain.emit(&mut b);
        let c0 = b.const_index(0);
        b.store(sz, out, c0);
        let f = b.finish();

        let mut bufs = Buffers::new();
        let bpos0 = bufs.add(BufferData::Index(vec![0, 2]));
        let bpos1 = bufs.add(BufferData::Index(vec![0, 2, 3]));
        let bout = bufs.add(BufferData::Index(vec![0]));
        interpret(
            &f,
            &[V::Mem(bpos0), V::Mem(bpos1), V::Mem(bout)],
            &mut bufs,
            &mut NullModel,
        )
        .unwrap();
        match &bufs.get(bout).data {
            BufferData::Index(v) => assert_eq!(v[0], 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn size_chain_narrow_pos_gets_cast() {
        let mut b = FuncBuilder::new("sz");
        let pos = b.arg(Type::memref(Type::I32));
        let mut chain = SizeChain::new();
        chain.push_compressed(pos);
        let sz = chain.emit(&mut b);
        let f = b.finish();
        assert_eq!(*f.ty(sz), Type::Index);
    }

    #[test]
    fn singleton_keeps_count() {
        let mut b = FuncBuilder::new("sz");
        let pos = b.arg(Type::memref(Type::Index));
        let mut chain = SizeChain::new();
        chain.push_compressed(pos);
        chain.push_singleton();
        assert_eq!(chain.len(), 2);
        let sz = chain.emit(&mut b);
        let c0 = b.const_index(0);
        let out = pos; // reuse buffer for a store target
        b.store(sz, out, c0);
        let f = b.finish();
        let mut bufs = Buffers::new();
        let bpos = bufs.add(BufferData::Index(vec![0, 5]));
        interpret(&f, &[V::Mem(bpos)], &mut bufs, &mut NullModel).unwrap();
        match &bufs.get(bpos).data {
            BufferData::Index(v) => assert_eq!(v[0], 5, "COO singleton crd size = Bi_pos[1]"),
            _ => unreachable!(),
        }
    }
}
