//! Iteration graphs (paper Section 3.1, Figure 4).
//!
//! Nodes are loop indices; a directed edge `a -> b` records that `a`'s
//! loop must enclose `b`'s because some sparse operand stores the
//! dimension of `a` at an outer level of its coordinate hierarchy tree
//! than the dimension of `b`. A topological order of the graph is a legal
//! loop order; with `sorted = true` the storage order of the sparse
//! operand must be respected, which the level-derived edges encode.

use crate::spec::KernelSpec;
use asap_tensor::Format;

/// The iteration graph for a kernel with one sparse input.
#[derive(Debug, Clone)]
pub struct IterationGraph {
    num_indices: usize,
    /// Edges `a -> b` (a's loop outside b's).
    edges: Vec<(usize, usize)>,
}

impl IterationGraph {
    /// Build from the kernel spec and the sparse operand's format:
    /// consecutive levels of the sparse tensor constrain their indices.
    pub fn build(spec: &KernelSpec, sparse_format: &Format) -> IterationGraph {
        let smap = &spec.sparse_input().map;
        assert_eq!(
            smap.len(),
            sparse_format.rank(),
            "sparse operand rank must match its format"
        );
        let mut edges = Vec::new();
        // Level l is stored outside level l+1; each level encodes operand
        // dimension dim_of_level(l), which is bound to loop index
        // smap[dim_of_level(l)].
        for l in 0..sparse_format.rank().saturating_sub(1) {
            let outer = smap[sparse_format.dim_of_level(l)];
            let inner = smap[sparse_format.dim_of_level(l + 1)];
            edges.push((outer, inner));
        }
        IterationGraph {
            num_indices: spec.num_indices,
            edges,
        }
    }

    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Topological order of the indices. Ties are broken by index number
    /// (so dense-only indices come as late as their constraints allow,
    /// matching sparsification's preference for keeping dense loops
    /// innermost). Returns `Err` with a cycle description when the
    /// constraints are unsatisfiable.
    pub fn topo_order(&self) -> Result<Vec<usize>, String> {
        let n = self.num_indices;
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            for &b in &adj[next] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    let pos = ready.binary_search(&b).unwrap_or_else(|p| p);
                    ready.insert(pos, b);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<usize> = (0..n).filter(|&i| indeg[i] > 0).collect();
            return Err(format!(
                "iteration graph has a cycle involving indices {stuck:?}"
            ));
        }
        Ok(order)
    }

    /// Render the elaboration stages of the paper's Figure 4 as text, for
    /// inspection and golden tests: (a) raw constraint edges, (b) levels
    /// annotated with their types, (c) the coiteration decision per index.
    pub fn describe(&self, spec: &KernelSpec, fmt: &Format) -> String {
        let mut s = String::new();
        s.push_str("(a) iteration graph edges:\n");
        for &(a, b) in &self.edges {
            s.push_str(&format!("  i{a} -> i{b}\n"));
        }
        s.push_str("(b) sparse levels:\n");
        let smap = &spec.sparse_input().map;
        for l in 0..fmt.rank() {
            let idx = smap[fmt.dim_of_level(l)];
            s.push_str(&format!(
                "  level {l} ({}): resolves i{idx}\n",
                fmt.levels()[l].mlir_name()
            ));
        }
        s.push_str("(c) coiteration:\n");
        for l in 0..fmt.rank() {
            let idx = smap[fmt.dim_of_level(l)];
            let locates: Vec<usize> = spec
                .dense_inputs()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.map.contains(&idx))
                .map(|(i, _)| i + 1)
                .collect();
            if locates.is_empty() {
                s.push_str(&format!("  i{idx}: iterate (sparse only)\n"));
            } else {
                s.push_str(&format!(
                    "  i{idx}: iterate-and-locate into dense operand(s) {locates:?}\n"
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::KernelSpec;
    use asap_tensor::ValueKind;

    #[test]
    fn spmv_csr_orders_i_before_j() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let g = IterationGraph::build(&spec, &Format::csr());
        assert_eq!(g.edges(), &[(0, 1)]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1]);
    }

    #[test]
    fn spmv_csc_orders_j_before_i() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let g = IterationGraph::build(&spec, &Format::csc());
        assert_eq!(g.edges(), &[(1, 0)]);
        assert_eq!(g.topo_order().unwrap(), vec![1, 0]);
    }

    #[test]
    fn spmm_keeps_dense_index_innermost() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let g = IterationGraph::build(&spec, &Format::csr());
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn mttkrp_csf_order() {
        let spec = KernelSpec::mttkrp(ValueKind::F64);
        let g = IterationGraph::build(&spec, &Format::csf(3));
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_is_detected() {
        let g = IterationGraph {
            num_indices: 2,
            edges: vec![(0, 1), (1, 0)],
        };
        assert!(g.topo_order().unwrap_err().contains("cycle"));
    }

    #[test]
    fn describe_mentions_iterate_and_locate() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let g = IterationGraph::build(&spec, &Format::csr());
        let d = g.describe(&spec, &Format::csr());
        assert!(d.contains("i1: iterate-and-locate"));
        assert!(d.contains("i0: iterate (sparse only)"));
        assert!(d.contains("level 1 (compressed): resolves i1"));
    }
}
