//! Merge-based coiteration (the paper's Section 3.1 alternative to
//! iterate-and-locate): when *two* sparse operands share an index and
//! both are sorted, the compiler emits a two-pointer merge loop instead
//! of locate lookups.
//!
//! Implemented here for element-wise addition of two sparse vectors into
//! a dense output (`z = x ⊕ y`), the canonical merge kernel. The merge
//! loop's coordinate loads are streaming, but with *two* crd streams plus
//! two value streams the L1 IPP's two slots are again insufficient, so
//! optional ASaP-style software prefetching (bounded by the semantic
//! buffer sizes, as in Section 3.2.2) is supported for all four streams.

use asap_ir::{verify, AsapError, CmpPred, FuncBuilder, Function, Type, Value};
use asap_tensor::{DenseTensor, IndexWidth, SparseTensor, ValueKind};

/// Calling convention of a merge kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeArg {
    /// `pos` buffer of operand 0 / 1.
    Pos(usize),
    /// `crd` buffer of operand 0 / 1.
    Crd(usize),
    /// values of operand 0 / 1.
    Vals(usize),
    /// Dense output vector.
    Output,
}

/// A compiled sparse-vector-add kernel.
#[derive(Debug, Clone)]
pub struct MergeKernel {
    pub func: Function,
    pub args: Vec<MergeArg>,
    pub index_width: IndexWidth,
    pub value_kind: ValueKind,
}

/// Options for [`sparse_vector_add`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeOptions {
    /// Inject ASaP-style prefetches at this look-ahead distance for both
    /// coordinate streams (bounded by each buffer's runtime size).
    pub prefetch_distance: Option<usize>,
    /// Locality hint for injected prefetches.
    pub locality: u8,
}

/// Generate `z = x + y` over two sorted sparse vectors stored as single
/// compressed levels, writing into a dense output.
pub fn sparse_vector_add(
    index_width: IndexWidth,
    value_kind: ValueKind,
    opts: MergeOptions,
) -> Result<MergeKernel, AsapError> {
    let idx_elem = match index_width {
        IndexWidth::U32 => Type::I32,
        IndexWidth::U64 => Type::Index,
    };
    let val_ty = value_kind.ir_type();

    let mut b = FuncBuilder::new("sparse_add");
    let mut args = Vec::new();
    let pos_x = b.arg(Type::memref(idx_elem.clone()));
    args.push(MergeArg::Pos(0));
    let crd_x = b.arg(Type::memref(idx_elem.clone()));
    args.push(MergeArg::Crd(0));
    let vals_x = b.arg(Type::memref(val_ty.clone()));
    args.push(MergeArg::Vals(0));
    let pos_y = b.arg(Type::memref(idx_elem.clone()));
    args.push(MergeArg::Pos(1));
    let crd_y = b.arg(Type::memref(idx_elem.clone()));
    args.push(MergeArg::Crd(1));
    let vals_y = b.arg(Type::memref(val_ty.clone()));
    args.push(MergeArg::Vals(1));
    let out = b.arg(Type::memref(val_ty.clone()));
    args.push(MergeArg::Output);

    let c0 = b.const_index(0);
    let c1 = b.const_index(1);
    let lo_x_raw = b.load(pos_x, c0);
    let lo_x = b.to_index(lo_x_raw);
    let hi_x_raw = b.load(pos_x, c1);
    let hi_x = b.to_index(hi_x_raw);
    let lo_y_raw = b.load(pos_y, c0);
    let lo_y = b.to_index(lo_y_raw);
    let hi_y_raw = b.load(pos_y, c1);
    let hi_y = b.to_index(hi_y_raw);

    // Optional ASaP-style stream prefetching: the buffer size bound is
    // pos[1] (the crd_buf_sz recursion for a single compressed level).
    let prefetch = |b: &mut FuncBuilder, iter: Value, crd: Value, vals: Value, hi: Value| {
        let Some(d) = opts.prefetch_distance else {
            return;
        };
        let cd = b.const_index(d);
        let jd = b.addi(iter, cd);
        let c1 = b.const_index(1);
        let bound = b.subi(hi, c1);
        let in_range = b.cmpi(CmpPred::Ult, jd, bound);
        let clamped = b.select(in_range, jd, bound);
        // Streams are regular: prefetch both crd and vals at distance d.
        b.prefetch_read(crd, clamped, opts.locality);
        b.prefetch_read(vals, clamped, opts.locality);
    };

    let write = |b: &mut FuncBuilder, coord: Value, v: Value| {
        let cur = b.load(out, coord);
        let s = match value_kind {
            ValueKind::F64 => b.addf(cur, v),
            ValueKind::I8 => b.ori(cur, v),
        };
        b.store(s, out, coord);
    };

    // Main merge loop while both operands have entries.
    let res = b.while_loop(
        &[lo_x, lo_y],
        |b, a| {
            let cx = b.cmpi(CmpPred::Ult, a[0], hi_x);
            let cy = b.cmpi(CmpPred::Ult, a[1], hi_y);
            (b.andi(cx, cy), vec![a[0], a[1]])
        },
        |b, a| {
            let (ix, iy) = (a[0], a[1]);
            prefetch(b, ix, crd_x, vals_x, hi_x);
            prefetch(b, iy, crd_y, vals_y, hi_y);
            let cx_raw = b.load(crd_x, ix);
            let cx = b.to_index(cx_raw);
            let cy_raw = b.load(crd_y, iy);
            let cy = b.to_index(cy_raw);
            let eq = b.cmpi(CmpPred::Eq, cx, cy);
            let next = b.if_else(
                eq,
                &[Type::Index, Type::Index],
                |b| {
                    let xv = b.load(vals_x, ix);
                    let yv = b.load(vals_y, iy);
                    let s = match value_kind {
                        ValueKind::F64 => b.addf(xv, yv),
                        ValueKind::I8 => b.ori(xv, yv),
                    };
                    write(b, cx, s);
                    let nix = b.addi(ix, c1);
                    let niy = b.addi(iy, c1);
                    vec![nix, niy]
                },
                |b| {
                    let lt = b.cmpi(CmpPred::Ult, cx, cy);
                    let inner = b.if_else(
                        lt,
                        &[Type::Index, Type::Index],
                        |b| {
                            let xv = b.load(vals_x, ix);
                            write(b, cx, xv);
                            let nix = b.addi(ix, c1);
                            vec![nix, iy]
                        },
                        |b| {
                            let yv = b.load(vals_y, iy);
                            write(b, cy, yv);
                            let niy = b.addi(iy, c1);
                            vec![ix, niy]
                        },
                    );
                    vec![inner[0], inner[1]]
                },
            );
            vec![next[0], next[1]]
        },
    );

    // Tail loops: drain whichever operand still has entries.
    let tail = |b: &mut FuncBuilder, start: Value, hi: Value, crd: Value, vals: Value| {
        b.while_loop(
            &[start],
            |b, a| (b.cmpi(CmpPred::Ult, a[0], hi), vec![a[0]]),
            |b, a| {
                let i = a[0];
                prefetch(b, i, crd, vals, hi);
                let c_raw = b.load(crd, i);
                let c = b.to_index(c_raw);
                let v = b.load(vals, i);
                write(b, c, v);
                vec![b.addi(i, c1)]
            },
        );
    };
    tail(&mut b, res[0], hi_x, crd_x, vals_x);
    tail(&mut b, res[1], hi_y, crd_y, vals_y);

    let func = b.finish();
    verify(&func)?;
    Ok(MergeKernel {
        func,
        args,
        index_width,
        value_kind,
    })
}

/// Run a merge kernel over two rank-1 sparse tensors stored as a single
/// compressed level (`Format::csf(1)`), writing into (and returning) a
/// dense output of length `n`.
pub fn run_sparse_add(
    kernel: &MergeKernel,
    x: &SparseTensor,
    y: &SparseTensor,
    out: &mut DenseTensor,
    model: &mut dyn asap_ir::MemoryModel,
) -> Result<(), AsapError> {
    use asap_ir::{interpret, Buffers, V};
    for (name, t) in [("x", x), ("y", y)] {
        if t.format().rank() != 1 || !t.format().levels()[0].has_pos() {
            return Err(AsapError::binding(format!(
                "{name} must be a single compressed level"
            )));
        }
        if t.index_width() != kernel.index_width {
            return Err(AsapError::binding(format!("{name}: index width mismatch")));
        }
        if t.value_kind() != kernel.value_kind {
            return Err(AsapError::binding(format!("{name}: value kind mismatch")));
        }
    }
    let mut bufs = Buffers::new();
    let tx = x.install(&mut bufs);
    let ty = y.install(&mut bufs);
    let out_id = out.install(&mut bufs);
    let mut argv = Vec::with_capacity(kernel.args.len());
    for &a in &kernel.args {
        let (t, tb) = (a, [&tx, &ty]);
        argv.push(match t {
            MergeArg::Pos(k) => {
                V::Mem(tb[k].pos[0].ok_or_else(|| AsapError::binding("missing pos"))?)
            }
            MergeArg::Crd(k) => {
                V::Mem(tb[k].crd[0].ok_or_else(|| AsapError::binding("missing crd"))?)
            }
            MergeArg::Vals(k) => V::Mem(tb[k].vals),
            MergeArg::Output => V::Mem(out_id),
        });
    }
    interpret(&kernel.func, &argv, &mut bufs, model)?;
    out.values = match &bufs.get(out_id).data {
        asap_ir::BufferData::F64(v) => asap_tensor::Values::F64(v.clone()),
        asap_ir::BufferData::I8(v) => asap_tensor::Values::I8(v.clone()),
        other => {
            return Err(AsapError::binding(format!(
                "unexpected output type {other:?}"
            )))
        }
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::{NullModel, OpKind};
    use asap_tensor::{CooTensor, Format, Values};

    fn vec_tensor(n: usize, entries: &[(usize, f64)], width: IndexWidth) -> SparseTensor {
        let coords: Vec<usize> = entries.iter().map(|&(i, _)| i).collect();
        let vals: Vec<f64> = entries.iter().map(|&(_, v)| v).collect();
        let coo = CooTensor::new(vec![n], coords, Values::F64(vals));
        let mut t = SparseTensor::from_coo(&coo, Format::csf(1));
        t.set_index_width(width);
        t
    }

    fn run_add(
        n: usize,
        xs: &[(usize, f64)],
        ys: &[(usize, f64)],
        opts: MergeOptions,
        width: IndexWidth,
    ) -> Vec<f64> {
        let k = sparse_vector_add(width, ValueKind::F64, opts).unwrap();
        let x = vec_tensor(n, xs, width);
        let y = vec_tensor(n, ys, width);
        let mut out = DenseTensor::zeros(ValueKind::F64, vec![n]);
        run_sparse_add(&k, &x, &y, &mut out, &mut NullModel).unwrap();
        out.as_f64().to_vec()
    }

    fn reference(n: usize, xs: &[(usize, f64)], ys: &[(usize, f64)]) -> Vec<f64> {
        let mut z = vec![0.0; n];
        for &(i, v) in xs.iter().chain(ys) {
            z[i] += v;
        }
        z
    }

    #[test]
    fn merges_disjoint_and_overlapping_coordinates() {
        let xs = [(0, 1.0), (3, 2.0), (7, 3.0)];
        let ys = [(1, 10.0), (3, 20.0), (9, 30.0)];
        let got = run_add(10, &xs, &ys, MergeOptions::default(), IndexWidth::U64);
        assert_eq!(got, reference(10, &xs, &ys));
    }

    #[test]
    fn handles_empty_operands() {
        let xs = [(2, 5.0)];
        assert_eq!(
            run_add(4, &xs, &[], MergeOptions::default(), IndexWidth::U64),
            reference(4, &xs, &[])
        );
        assert_eq!(
            run_add(4, &[], &xs, MergeOptions::default(), IndexWidth::U64),
            reference(4, &xs, &[])
        );
        assert_eq!(
            run_add(4, &[], &[], MergeOptions::default(), IndexWidth::U64),
            vec![0.0; 4]
        );
    }

    #[test]
    fn narrow_indices_work() {
        let xs = [(0, 1.0), (5, 2.0)];
        let ys = [(5, 4.0), (6, 8.0)];
        let got = run_add(8, &xs, &ys, MergeOptions::default(), IndexWidth::U32);
        assert_eq!(got, reference(8, &xs, &ys));
    }

    #[test]
    fn prefetching_variant_matches_plain() {
        let xs: Vec<(usize, f64)> = (0..50).map(|i| (i * 3, i as f64)).collect();
        let ys: Vec<(usize, f64)> = (0..50).map(|i| (i * 2 + 1, 2.0 * i as f64)).collect();
        let plain = run_add(200, &xs, &ys, MergeOptions::default(), IndexWidth::U64);
        let pf = run_add(
            200,
            &xs,
            &ys,
            MergeOptions {
                prefetch_distance: Some(8),
                locality: 2,
            },
            IndexWidth::U64,
        );
        assert_eq!(plain, pf);
    }

    #[test]
    fn prefetching_emits_four_stream_prefetches() {
        let k = sparse_vector_add(
            IndexWidth::U64,
            ValueKind::F64,
            MergeOptions {
                prefetch_distance: Some(16),
                locality: 2,
            },
        )
        .unwrap();
        // 2 streams x (crd+vals) in the merge loop + 1 stream x 2 per tail.
        assert_eq!(k.func.prefetch_count(), 8);
    }

    #[test]
    fn merge_loop_shape() {
        let k =
            sparse_vector_add(IndexWidth::U64, ValueKind::F64, MergeOptions::default()).unwrap();
        let mut whiles = 0;
        k.func.walk(&mut |op| {
            if matches!(op.kind, OpKind::While { .. }) {
                whiles += 1;
            }
        });
        assert_eq!(whiles, 3, "merge + two tails");
    }

    #[test]
    fn boolean_semiring_add() {
        let k = sparse_vector_add(IndexWidth::U32, ValueKind::I8, MergeOptions::default()).unwrap();
        let mk = |entries: &[usize]| {
            let coo = CooTensor::new(
                vec![6],
                entries.to_vec(),
                Values::I8(vec![1; entries.len()]),
            );
            SparseTensor::from_coo(&coo, Format::csf(1))
        };
        let x = mk(&[0, 2]);
        let y = mk(&[2, 4]);
        let mut out = DenseTensor::zeros(ValueKind::I8, vec![6]);
        run_sparse_add(&k, &x, &y, &mut out, &mut NullModel).unwrap();
        assert_eq!(out.as_i8(), &[1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn rejects_rank2_operand() {
        let k =
            sparse_vector_add(IndexWidth::U32, ValueKind::F64, MergeOptions::default()).unwrap();
        let coo = CooTensor::new(vec![2, 2], vec![0, 0], Values::F64(vec![1.0]));
        let m = SparseTensor::from_coo(&coo, Format::csr());
        let mut out = DenseTensor::zeros(ValueKind::F64, vec![2]);
        let err = run_sparse_add(&k, &m, &m, &mut out, &mut NullModel).unwrap_err();
        assert!(err.to_string().contains("single compressed level"));
        assert_eq!(err.kind(), "binding");
    }
}
