//! Print the ASaP CSR SpMV kernel twice: as region-structured IR and as
//! the lowered bytecode listing. The quickest way to see what the fusion
//! peepholes did — e.g. whether the inner loop collapsed into a single
//! `SpmvLoop` superinstruction — when working on the lowering pass.
//!
//! Usage: `cargo run -p asap-bench --example dump_ir`

fn main() {
    let spec = asap_sparsifier::KernelSpec::spmv(asap_tensor::ValueKind::F64);
    let ck = asap_core::compile_with_width(
        &spec,
        &asap_tensor::Format::csr(),
        asap_tensor::IndexWidth::U32,
        &asap_core::PrefetchStrategy::asap(45),
    )
    .expect("the paper's reference kernel always compiles");
    println!("{}", asap_ir::print_function(&ck.kernel.func));
    let prog = ck.program.as_ref().expect("spmv lowers to bytecode");
    for (i, ins) in prog.instrs.iter().enumerate() {
        println!("{i:3}: {ins:?}");
    }
}
